//! [`ByteBuf`]: a growable byte buffer with `put_*` write helpers.
//!
//! The write-side surface the RESP codec, the value codec, and the AOF
//! need from `bytes::BytesMut`, over a plain `Vec<u8>`. Reads go through
//! `Deref<Target = [u8]>`, so a `&ByteBuf` is a `&[u8]` wherever one is
//! expected; `split_to` supports the streaming-decode pattern of consuming
//! a parsed frame off the front of a TCP read buffer.

/// A growable, appendable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ByteBuf {
    data: Vec<u8>,
}

impl ByteBuf {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    /// Appends a byte slice.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` little-endian.
    pub fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` little-endian.
    pub fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a byte slice (alias matching `Vec`/`BytesMut`).
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Number of buffered bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes and returns the first `at` bytes, keeping the rest.
    ///
    /// Panics if `at > len()`, like `BytesMut::split_to`.
    pub fn split_to(&mut self, at: usize) -> ByteBuf {
        assert!(
            at <= self.data.len(),
            "split_to out of bounds: {at} > {}",
            self.data.len()
        );
        let rest = self.data.split_off(at);
        let front = std::mem::replace(&mut self.data, rest);
        ByteBuf { data: front }
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Consumes the buffer into its backing `Vec<u8>`.
    pub fn freeze(self) -> Vec<u8> {
        self.data
    }

    /// The buffered bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for ByteBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for ByteBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for ByteBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for ByteBuf {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<ByteBuf> for Vec<u8> {
    fn from(buf: ByteBuf) -> Self {
        buf.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_helpers_append_in_order() {
        let mut b = ByteBuf::with_capacity(32);
        b.put_u8(0xAB);
        b.put_slice(b"xy");
        b.put_u32_le(1);
        b.put_i64_le(-2);
        b.put_f64_le(0.5);
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(&b[..3], &[0xAB, b'x', b'y']);
        assert_eq!(&b[3..7], &1u32.to_le_bytes());
        assert_eq!(&b[7..15], &(-2i64).to_le_bytes());
        assert_eq!(&b[15..23], &0.5f64.to_le_bytes());
    }

    #[test]
    fn split_to_consumes_front() {
        let mut b = ByteBuf::new();
        b.put_slice(b"hello world");
        let front = b.split_to(6);
        assert_eq!(&front[..], b"hello ");
        assert_eq!(&b[..], b"world");
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn split_to_zero_and_full() {
        let mut b = ByteBuf::new();
        b.put_slice(b"abc");
        assert!(b.split_to(0).is_empty());
        assert_eq!(&b.split_to(3)[..], b"abc");
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_to_past_end_panics() {
        let mut b = ByteBuf::new();
        b.put_u8(1);
        let _ = b.split_to(2);
    }

    #[test]
    fn deref_supports_slicing() {
        let mut b = ByteBuf::new();
        b.put_slice(b"0123456789");
        assert_eq!(&b[2..5], b"234");
        fn takes_slice(s: &[u8]) -> usize {
            s.len()
        }
        assert_eq!(takes_slice(&b), 10);
    }

    #[test]
    fn freeze_roundtrips_vec() {
        let mut b = ByteBuf::from(vec![1, 2, 3]);
        b.put_u8(4);
        assert_eq!(b.freeze(), vec![1, 2, 3, 4]);
    }
}
