//! [`ByteBuf`]: a growable byte buffer with `put_*` write helpers, and
//! [`SharedBuf`]: an immutable, cheaply cloneable slice of shared bytes.
//!
//! `ByteBuf` is the write-side surface the RESP codec, the value codec,
//! and the AOF need from `bytes::BytesMut`, over a plain `Vec<u8>`. Reads
//! go through `Deref<Target = [u8]>`, so a `&ByteBuf` is a `&[u8]`
//! wherever one is expected; `split_to` supports the streaming-decode
//! pattern of consuming a parsed frame off the front of a TCP read buffer.
//!
//! `SharedBuf` is the read-side counterpart of `bytes::Bytes`: an
//! `Arc<Vec<u8>>` plus a window, so many values (command arguments, stored
//! stream payloads, reply frames) can alias one network read without
//! copying — cloning bumps a refcount, [`SharedBuf::slice`] narrows the
//! window. This is what lets the redis-lite server carry a stream payload
//! from the socket read buffer into the store and back out into a reply
//! with exactly one copy at each socket boundary.

use std::sync::Arc;

/// A growable, appendable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ByteBuf {
    data: Vec<u8>,
}

impl ByteBuf {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    /// Appends a byte slice.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` little-endian.
    pub fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` little-endian.
    pub fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a byte slice (alias matching `Vec`/`BytesMut`).
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Number of buffered bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes and returns the first `at` bytes, keeping the rest.
    ///
    /// Panics if `at > len()`, like `BytesMut::split_to`.
    pub fn split_to(&mut self, at: usize) -> ByteBuf {
        assert!(
            at <= self.data.len(),
            "split_to out of bounds: {at} > {}",
            self.data.len()
        );
        let rest = self.data.split_off(at);
        let front = std::mem::replace(&mut self.data, rest);
        ByteBuf { data: front }
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Consumes the buffer into its backing `Vec<u8>`.
    pub fn freeze(self) -> Vec<u8> {
        self.data
    }

    /// Consumes the buffer into an immutable [`SharedBuf`] without copying
    /// the bytes (the backing `Vec` moves into the shared allocation).
    pub fn into_shared(self) -> SharedBuf {
        SharedBuf::from(self.data)
    }

    /// The buffered bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for ByteBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for ByteBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for ByteBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for ByteBuf {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<ByteBuf> for Vec<u8> {
    fn from(buf: ByteBuf) -> Self {
        buf.data
    }
}

/// An immutable, cheaply cloneable byte slice over shared storage.
///
/// The read-side dual of [`ByteBuf`]: one `Arc<Vec<u8>>` allocation plus a
/// `[start, end)` window. `clone` bumps the refcount; [`slice`] narrows
/// the window; `Deref<Target = [u8]>` makes it usable wherever a `&[u8]`
/// is expected. Equality/ordering/hashing are over the *visible bytes*,
/// so two windows with identical content compare equal regardless of
/// which allocation backs them.
///
/// [`slice`]: SharedBuf::slice
#[derive(Clone, Default)]
pub struct SharedBuf {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl SharedBuf {
    /// An empty slice (no allocation is shared until bytes exist).
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `bytes` into a fresh shared allocation.
    pub fn copy_from(bytes: &[u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window of this slice (relative to the visible bytes), sharing
    /// the same backing allocation.
    ///
    /// Panics if the range is out of bounds, like `&bytes[range]` would.
    pub fn slice(&self, range: std::ops::Range<usize>) -> SharedBuf {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds: {}..{} of {}",
            range.start,
            range.end,
            self.len()
        );
        SharedBuf {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The visible bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the visible bytes into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl std::ops::Deref for SharedBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for SharedBuf {
    /// Moves the vector into shared storage without copying the bytes.
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for SharedBuf {
    fn from(bytes: &[u8]) -> Self {
        Self::copy_from(bytes)
    }
}

impl<const N: usize> From<&[u8; N]> for SharedBuf {
    fn from(bytes: &[u8; N]) -> Self {
        Self::copy_from(bytes)
    }
}

impl From<&str> for SharedBuf {
    fn from(s: &str) -> Self {
        Self::copy_from(s.as_bytes())
    }
}

impl From<String> for SharedBuf {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<ByteBuf> for SharedBuf {
    fn from(buf: ByteBuf) -> Self {
        buf.into_shared()
    }
}

impl PartialEq for SharedBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBuf {}

impl PartialEq<[u8]> for SharedBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for SharedBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for SharedBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for SharedBuf {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SharedBuf {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for SharedBuf {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for SharedBuf {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for SharedBuf {
    /// Lossy-text rendering, matching the RESP frame convention: payloads
    /// are overwhelmingly textual and byte-list dumps make failures
    /// unreadable.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedBuf({:?})", String::from_utf8_lossy(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_helpers_append_in_order() {
        let mut b = ByteBuf::with_capacity(32);
        b.put_u8(0xAB);
        b.put_slice(b"xy");
        b.put_u32_le(1);
        b.put_i64_le(-2);
        b.put_f64_le(0.5);
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(&b[..3], &[0xAB, b'x', b'y']);
        assert_eq!(&b[3..7], &1u32.to_le_bytes());
        assert_eq!(&b[7..15], &(-2i64).to_le_bytes());
        assert_eq!(&b[15..23], &0.5f64.to_le_bytes());
    }

    #[test]
    fn split_to_consumes_front() {
        let mut b = ByteBuf::new();
        b.put_slice(b"hello world");
        let front = b.split_to(6);
        assert_eq!(&front[..], b"hello ");
        assert_eq!(&b[..], b"world");
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn split_to_zero_and_full() {
        let mut b = ByteBuf::new();
        b.put_slice(b"abc");
        assert!(b.split_to(0).is_empty());
        assert_eq!(&b.split_to(3)[..], b"abc");
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_to_past_end_panics() {
        let mut b = ByteBuf::new();
        b.put_u8(1);
        let _ = b.split_to(2);
    }

    #[test]
    fn deref_supports_slicing() {
        let mut b = ByteBuf::new();
        b.put_slice(b"0123456789");
        assert_eq!(&b[2..5], b"234");
        fn takes_slice(s: &[u8]) -> usize {
            s.len()
        }
        assert_eq!(takes_slice(&b), 10);
    }

    #[test]
    fn freeze_roundtrips_vec() {
        let mut b = ByteBuf::from(vec![1, 2, 3]);
        b.put_u8(4);
        assert_eq!(b.freeze(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn shared_slices_alias_one_allocation() {
        let buf = SharedBuf::from(b"hello shared world".to_vec());
        let hello = buf.slice(0..5);
        let world = buf.slice(13..18);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&world[..], b"world");
        // Three handles, one backing allocation.
        assert_eq!(Arc::strong_count(&buf.data), 3);
        drop(buf);
        assert_eq!(&world[..], b"world", "slices outlive the parent handle");
    }

    #[test]
    fn shared_slice_of_slice_composes() {
        let buf = SharedBuf::from(b"0123456789".to_vec());
        let mid = buf.slice(2..8); // "234567"
        let inner = mid.slice(1..3); // "34"
        assert_eq!(&inner[..], b"34");
        assert_eq!(inner.to_vec(), b"34".to_vec());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn shared_slice_past_end_panics() {
        let buf = SharedBuf::from(b"abc".to_vec());
        let _ = buf.slice(1..5);
    }

    #[test]
    fn shared_equality_is_content_based() {
        let a = SharedBuf::from(b"xxpayloadxx".to_vec()).slice(2..9);
        let b = SharedBuf::copy_from(b"payload");
        assert_eq!(a, b);
        assert_eq!(a, b"payload".to_vec());
        assert_eq!(a, &b"payload"[..]);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |s: &SharedBuf| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b), "equal content must hash equally");
    }

    #[test]
    fn bytebuf_into_shared_is_move_not_copy() {
        let mut b = ByteBuf::new();
        b.put_slice(b"frozen");
        let ptr = b.as_slice().as_ptr();
        let shared = b.into_shared();
        assert_eq!(&shared[..], b"frozen");
        assert_eq!(
            shared.as_slice().as_ptr(),
            ptr,
            "backing bytes must not be reallocated"
        );
    }

    #[test]
    fn shared_default_is_empty() {
        let s = SharedBuf::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(&s[..], b"");
    }
}
