//! A segmented lock-free MPMC queue — the channel's fast-path core.
//!
//! Unbounded FIFO storage built from fixed-size blocks strung into a
//! singly-linked list. Each block holds [`BLOCK_CAP`] slots; the `head` and
//! `tail` cursors are atomic packed indexes, and every slot carries a small
//! atomic state word, so producers and consumers synchronize per-slot
//! instead of per-queue. An uncontended [`push`](SegQueue::push) or
//! [`pop`](SegQueue::pop) is a handful of atomic operations — no mutex, no
//! syscall — and [`len`](SegQueue::len) is two atomic loads. Blocking
//! behaviour (the empty-queue slow path) lives one layer up in
//! [`crate::channel`], which parks on a condvar only after the lock-free
//! fast path reports empty.
//!
//! The algorithm is the well-understood segmented design used by
//! `crossbeam`'s `SegQueue` (in the LCRQ lineage of Morrison & Afek):
//!
//! * A producer claims a slot by CAS-bumping the tail index, writes the
//!   value, then sets the slot's `WRITE` bit. A consumer claims a slot by
//!   CAS-bumping the head index, spins briefly until `WRITE` appears (the
//!   producer that claimed it may still be mid-write), then takes the value.
//! * The producer that claims the *last* slot of a block pre-allocates and
//!   installs the successor block; the index parks on a sentinel offset
//!   meanwhile so other threads wait out the hand-off without locking.
//! * Blocks are freed cooperatively: the consumer that advances `head` past
//!   a block starts destruction, and any consumer still reading a slot in
//!   it (marked via the `READ`/`DESTROY` bits) finishes the job.
//!
//! All synchronization goes through [`crate::facade`], so a
//! `--cfg d4py_model` build checks this exact source under the
//! [`crate::model`] checker (which also shrinks [`LAP`] so block-boundary
//! hand-off and reclamation are reached within a few operations).

use crate::facade::{
    fence, free_tracked, into_raw_tracked, retake_tracked, spin_loop, yield_now, AtomicPtr,
    AtomicUsize, Ordering,
};
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::ptr;

/// Slots per block. One index position per lap is reserved as the
/// "successor being installed" sentinel, so a block stores `LAP - 1` items.
#[cfg(not(d4py_model))]
const LAP: usize = 32;
/// Model-checked builds use tiny blocks so the explorer reaches block
/// installation, boundary hand-off, and cooperative destruction within its
/// preemption budget.
#[cfg(d4py_model)]
const LAP: usize = 4;
/// Usable slots per block.
const BLOCK_CAP: usize = LAP - 1;
/// The low bit of a packed index is the `HAS_NEXT` flag; slot numbers start
/// at the next bit.
const SHIFT: usize = 1;
/// Set in `head`'s packed index when the tail has already moved to a later
/// block, so the consumer crossing the boundary knows a successor exists.
const HAS_NEXT: usize = 1;

/// Slot state bit: the producer has finished writing the value.
const WRITE: usize = 1;
/// Slot state bit: the consumer has finished reading the value.
const READ: usize = 2;
/// Slot state bit: block destruction reached this slot while a consumer was
/// still reading it; that consumer continues the destruction.
const DESTROY: usize = 4;

/// Exponential spin/yield backoff for the short per-slot waits.
struct Backoff {
    step: u32,
}

const SPIN_LIMIT: u32 = 6;

impl Backoff {
    fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Busy-spin (bounded); for CAS retry loops that are about to succeed.
    fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(SPIN_LIMIT) {
            spin_loop();
        }
        if self.step <= SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Spin first, then yield the timeslice; for waits on another thread's
    /// in-flight operation (mid-write slot, block being installed).
    fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                spin_loop();
            }
            self.step += 1;
        } else {
            yield_now();
        }
    }
}

struct Slot<T> {
    value: UnsafeCell<MaybeUninit<T>>,
    state: AtomicUsize,
}

impl<T> Slot<T> {
    // Interior mutability in a `const` is exactly what we want here: this is
    // a template for fresh, independent slots inside `Block::new`.
    #[allow(clippy::declare_interior_mutable_const)]
    const UNINIT: Slot<T> = Slot {
        value: UnsafeCell::new(MaybeUninit::uninit()),
        state: AtomicUsize::new(0),
    };

    fn wait_write(&self, backoff: &mut Backoff) {
        while self.state.load(Ordering::Acquire) & WRITE == 0 {
            backoff.snooze();
        }
    }
}

struct Block<T> {
    next: AtomicPtr<Block<T>>,
    slots: [Slot<T>; BLOCK_CAP],
}

impl<T> Block<T> {
    fn new() -> Box<Block<T>> {
        Box::new(Block {
            next: AtomicPtr::new(ptr::null_mut()),
            slots: [Slot::UNINIT; BLOCK_CAP],
        })
    }

    /// Waits until the successor block is installed and returns it.
    fn wait_next(&self, backoff: &mut Backoff) -> *mut Block<T> {
        loop {
            let next = self.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            backoff.snooze();
        }
    }

    /// Marks slots `start..` as ready-to-free and drops the block once no
    /// consumer is still reading any of them. The consumer that finds a
    /// slot mid-read hands the remaining work to that reader via `DESTROY`.
    ///
    /// # Safety
    /// `this` must point to a block that has been fully consumed past
    /// `start` (head already advanced beyond it) and on which destruction
    /// for `start..` has not already completed.
    unsafe fn destroy(this: *mut Block<T>, start: usize) {
        // The last slot does not need marking: the thread that moved `head`
        // past the block boundary is the one calling `destroy(.., 0)`.
        for i in start..BLOCK_CAP - 1 {
            // SAFETY: the caller guarantees `this` is still live (no free
            // happens until the handoff walk below completes), and
            // `i < BLOCK_CAP` bounds the slot index.
            let slot = unsafe { (*this).slots.get_unchecked(i) };
            if slot.state.load(Ordering::Acquire) & READ == 0
                && slot.state.fetch_or(DESTROY, Ordering::AcqRel) & READ == 0
            {
                // A consumer is still reading this slot; it sees DESTROY
                // when it finishes and continues from `i + 1`.
                #[cfg(d4py_model)]
                if crate::model::fault("segqueue-double-destroy") {
                    // Injected bug for the model checker: ignore the
                    // hand-off and keep walking, so this thread *and* the
                    // in-progress reader both free the block.
                    continue;
                }
                return;
            }
        }
        // SAFETY: every slot in `start..BLOCK_CAP - 1` is READ (or had its
        // destruction handed off to us), the boundary-crossing consumer is
        // past the block, and `this` came from `into_raw_tracked` in
        // `push`; this is the single point that frees it.
        unsafe { free_tracked(this) };
    }
}

/// One cursor (packed index + current block), padded to its own cache line
/// so producers bumping `tail` never false-share with consumers on `head`.
#[repr(align(128))]
struct Position<T> {
    index: AtomicUsize,
    block: AtomicPtr<Block<T>>,
}

/// An unbounded lock-free multi-producer multi-consumer FIFO queue.
///
/// Values are stored in fixed-size heap blocks linked into a list; see the
/// module docs for the algorithm. All operations are safe to call from any
/// number of threads concurrently.
pub struct SegQueue<T> {
    head: Position<T>,
    tail: Position<T>,
    _marker: PhantomData<T>,
}

// SAFETY: the queue moves owned `T` values between threads (push on one,
// pop on another), which is exactly the `T: Send` bound; the queue's own
// cursors and slot states are atomics.
unsafe impl<T: Send> Send for SegQueue<T> {}
// SAFETY: shared access is mediated entirely by the atomic slot protocol —
// a slot's value is written before WRITE is released and read at most once
// by the consumer that claimed it — so `&SegQueue<T>` hands out no shared
// `&T`; `T: Send` suffices (same bound crossbeam's SegQueue uses).
unsafe impl<T: Send> Sync for SegQueue<T> {}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SegQueue<T> {
    /// Creates an empty queue. The first block is allocated lazily by the
    /// first push.
    pub const fn new() -> Self {
        SegQueue {
            head: Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(ptr::null_mut()),
            },
            tail: Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(ptr::null_mut()),
            },
            _marker: PhantomData,
        }
    }

    /// Enqueues `value` at the tail. Never blocks; allocates only when a
    /// block fills (amortized one allocation per [`BLOCK_CAP`] pushes).
    pub fn push(&self, value: T) {
        let mut backoff = Backoff::new();
        let mut tail = self.tail.index.load(Ordering::Acquire);
        let mut block = self.tail.block.load(Ordering::Acquire);
        let mut next_block = None;

        loop {
            let offset = (tail >> SHIFT) % LAP;

            // Another producer claimed the last slot and is installing the
            // next block; wait for the hand-off.
            if offset == BLOCK_CAP {
                backoff.snooze();
                tail = self.tail.index.load(Ordering::Acquire);
                block = self.tail.block.load(Ordering::Acquire);
                continue;
            }

            // About to claim the last slot: pre-allocate the successor so
            // the install after the claim is quick.
            if offset + 1 == BLOCK_CAP && next_block.is_none() {
                next_block = Some(Block::<T>::new());
            }

            // Very first push: install the initial block.
            if block.is_null() {
                let new = into_raw_tracked(Block::<T>::new());
                // relaxed: the failure value is discarded — the retry path
                // below re-loads tail.index/tail.block with Acquire before
                // acting on them.
                if self
                    .tail
                    .block
                    .compare_exchange(block, new, Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    self.head.block.store(new, Ordering::Release);
                    block = new;
                } else {
                    // SAFETY: `new` came from `into_raw_tracked` two lines
                    // up and, having lost the install race, was never
                    // published — this thread still exclusively owns it.
                    next_block = unsafe { Some(retake_tracked(new)) };
                    tail = self.tail.index.load(Ordering::Acquire);
                    block = self.tail.block.load(Ordering::Acquire);
                    continue;
                }
            }

            let new_tail = tail + (1 << SHIFT);

            match self.tail.index.compare_exchange_weak(
                tail,
                new_tail,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                // SAFETY: winning the CAS makes this thread the unique
                // owner of slot `offset` in `block` (every other producer
                // observed the bumped index), and of the successor install
                // when the claimed slot is the last one. `block` is live:
                // blocks are only destroyed after head crosses them, and
                // head can't pass an unwritten slot.
                Ok(_) => unsafe {
                    // Claimed the last slot: install the pre-allocated
                    // successor and advance the index past the sentinel.
                    if offset + 1 == BLOCK_CAP {
                        let next =
                            into_raw_tracked(next_block.take().expect("pre-allocated above"));
                        let next_index = new_tail.wrapping_add(1 << SHIFT);
                        self.tail.block.store(next, Ordering::Release);
                        self.tail.index.store(next_index, Ordering::Release);
                        (*block).next.store(next, Ordering::Release);
                    }

                    let slot = (*block).slots.get_unchecked(offset);
                    slot.value.get().write(MaybeUninit::new(value));
                    slot.state.fetch_or(WRITE, Ordering::Release);
                    return;
                },
                Err(current) => {
                    tail = current;
                    block = self.tail.block.load(Ordering::Acquire);
                    backoff.spin();
                }
            }
        }
    }

    /// Dequeues from the head, or returns `None` when the queue is empty.
    /// Never blocks on other consumers; spins only for a producer that
    /// claimed the head slot but has not finished writing it.
    pub fn pop(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        let mut head = self.head.index.load(Ordering::Acquire);
        let mut block = self.head.block.load(Ordering::Acquire);

        loop {
            let offset = (head >> SHIFT) % LAP;

            // A consumer crossing the block boundary is mid-hand-off.
            if offset == BLOCK_CAP {
                backoff.snooze();
                head = self.head.index.load(Ordering::Acquire);
                block = self.head.block.load(Ordering::Acquire);
                continue;
            }

            let mut new_head = head + (1 << SHIFT);

            if new_head & HAS_NEXT == 0 {
                fence(Ordering::SeqCst);
                // relaxed: the SeqCst fence above pairs with the producers'
                // SeqCst index CAS; the value is only compared against
                // `head` to detect emptiness and block distance, never
                // dereferenced through.
                let tail = self.tail.index.load(Ordering::Relaxed);

                // Head caught up with tail: empty.
                if head >> SHIFT == tail >> SHIFT {
                    return None;
                }

                // Tail is already in a later block, so a successor exists;
                // record that for the boundary hand-off below.
                if (head >> SHIFT) / LAP != (tail >> SHIFT) / LAP {
                    new_head |= HAS_NEXT;
                }
            }

            // Non-empty but the first block is still being installed.
            if block.is_null() {
                backoff.snooze();
                head = self.head.index.load(Ordering::Acquire);
                block = self.head.block.load(Ordering::Acquire);
                continue;
            }

            match self.head.index.compare_exchange_weak(
                head,
                new_head,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                // SAFETY: winning the CAS makes this thread the unique
                // consumer of slot `offset` in `block`; the block stays
                // live until destruction, which cannot complete before this
                // slot is marked READ (or is the boundary slot, whose
                // reader runs the destruction itself).
                Ok(_) => unsafe {
                    // Claimed the last slot: move `head` to the successor.
                    if offset + 1 == BLOCK_CAP {
                        let next = (*block).wait_next(&mut backoff);
                        let mut next_index = (new_head & !HAS_NEXT).wrapping_add(1 << SHIFT);
                        // relaxed: non-null is sticky once published; a
                        // stale null only omits the HAS_NEXT hint, which
                        // the next pop recomputes from the tail index.
                        if !(*next).next.load(Ordering::Relaxed).is_null() {
                            next_index |= HAS_NEXT;
                        }
                        self.head.block.store(next, Ordering::Release);
                        self.head.index.store(next_index, Ordering::Release);
                    }

                    let slot = (*block).slots.get_unchecked(offset);
                    slot.wait_write(&mut backoff);
                    let value = slot.value.get().read().assume_init();

                    // Free the block once every slot in it has been read.
                    if offset + 1 == BLOCK_CAP {
                        Block::destroy(block, 0);
                    } else if slot.state.fetch_or(READ, Ordering::AcqRel) & DESTROY != 0 {
                        Block::destroy(block, offset + 1);
                    }

                    return Some(value);
                },
                Err(current) => {
                    head = current;
                    block = self.head.block.load(Ordering::Acquire);
                    backoff.spin();
                }
            }
        }
    }

    /// Number of queued items — two atomic loads, no lock. The value is a
    /// consistent snapshot (the tail index is re-checked), exactly what the
    /// auto-scaler's monitor tick wants.
    pub fn len(&self) -> usize {
        loop {
            let mut tail = self.tail.index.load(Ordering::SeqCst);
            let mut head = self.head.index.load(Ordering::SeqCst);

            // Re-load to make sure head was not read across a tail move.
            if self.tail.index.load(Ordering::SeqCst) == tail {
                // Strip the HAS_NEXT flag bits.
                tail &= !((1 << SHIFT) - 1);
                head &= !((1 << SHIFT) - 1);

                // An index parked on the install sentinel counts as the
                // start of the next lap.
                if (tail >> SHIFT) & (LAP - 1) == LAP - 1 {
                    tail = tail.wrapping_add(1 << SHIFT);
                }
                if (head >> SHIFT) & (LAP - 1) == LAP - 1 {
                    head = head.wrapping_add(1 << SHIFT);
                }

                // Rebase both indexes to head's lap, then subtract one
                // sentinel position per full lap between them.
                let lap = (head >> SHIFT) / LAP;
                tail = tail.wrapping_sub((lap * LAP) << SHIFT);
                head = head.wrapping_sub((lap * LAP) << SHIFT);
                tail >>= SHIFT;
                head >>= SHIFT;
                return tail - head - tail / LAP;
            }
        }
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        let head = self.head.index.load(Ordering::SeqCst);
        let tail = self.tail.index.load(Ordering::SeqCst);
        head >> SHIFT == tail >> SHIFT
    }
}

impl<T> Drop for SegQueue<T> {
    fn drop(&mut self) {
        let mut head = *self.head.index.get_mut();
        let tail = *self.tail.index.get_mut();
        let mut block = *self.head.block.get_mut();

        head &= !((1 << SHIFT) - 1);
        let tail = tail & !((1 << SHIFT) - 1);

        // SAFETY: `&mut self` means no concurrent producer or consumer
        // exists; every slot in `head..tail` holds an initialized,
        // never-read value, and every block between the head and tail
        // cursors is live and owned by the queue (freed exactly once as
        // the walk crosses it).
        unsafe {
            // Walk head→tail dropping unpopped values, freeing each block
            // as its boundary sentinel position is crossed.
            while head != tail {
                let offset = (head >> SHIFT) % LAP;
                if offset < BLOCK_CAP {
                    let slot = (*block).slots.get_unchecked(offset);
                    (*slot.value.get()).assume_init_drop();
                } else {
                    let next = *(*block).next.get_mut();
                    free_tracked(block);
                    block = next;
                }
                head = head.wrapping_add(1 << SHIFT);
            }
            if !block.is_null() {
                free_tracked(block);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop;
    use std::collections::VecDeque;
    use std::sync::Arc;

    #[test]
    fn fifo_across_block_boundaries() {
        let q = SegQueue::new();
        // 4+ blocks worth, so the boundary hand-off path runs many times.
        for i in 0..(BLOCK_CAP * 4 + 7) {
            q.push(i);
        }
        for i in 0..(BLOCK_CAP * 4 + 7) {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn len_is_exact_across_blocks() {
        let q = SegQueue::new();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        for i in 0..100 {
            q.push(i);
            assert_eq!(q.len(), i + 1);
        }
        for i in (0..100).rev() {
            q.pop().unwrap();
            assert_eq!(q.len(), i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drop_releases_unpopped_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q = SegQueue::new();
            for _ in 0..(BLOCK_CAP * 2 + 5) {
                q.push(Counted(drops.clone()));
            }
            for _ in 0..3 {
                drop(q.pop().unwrap());
            }
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            BLOCK_CAP * 2 + 5,
            "queue drop must run every remaining destructor"
        );
    }

    #[test]
    fn mpmc_stress_no_loss_no_duplication() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 2_000;
        let q = Arc::new(SegQueue::new());
        let popped = Arc::new(AtomicUsize::new(0));

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = q.clone();
                let popped = popped.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while popped.load(Ordering::SeqCst) < PRODUCERS * PER_PRODUCER {
                        if let Some(v) = q.pop() {
                            popped.fetch_add(1, Ordering::SeqCst);
                            got.push(v);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();

        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expected);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn prop_matches_vecdeque_model() {
        prop::for_all(|g| {
            let q = SegQueue::new();
            let mut model = VecDeque::new();
            for _ in 0..g.usize_in(0..200) {
                if g.any::<bool>() {
                    let v = g.any_i64();
                    q.push(v);
                    model.push_back(v);
                } else {
                    assert_eq!(q.pop(), model.pop_front());
                }
                assert_eq!(q.len(), model.len());
                assert_eq!(q.is_empty(), model.is_empty());
            }
            while let Some(expected) = model.pop_front() {
                assert_eq!(q.pop(), Some(expected));
            }
            assert_eq!(q.pop(), None);
        });
    }
}
