//! Versioned machine-readable benchmark results (`BENCH_<name>.json`).
//!
//! The timing harness persists every run as JSON so regressions are
//! diffable across runs, machines, and commits: per-bench raw samples,
//! the [`Summary`] the stats engine computed, and an environment stamp.
//! The workspace is serde-free by design (DESIGN.md §7), so both the
//! serializer and the parser are hand-rolled here — a strict subset of
//! JSON is emitted, full JSON is accepted.
//!
//! Format contract (`format_version` = [`FORMAT_VERSION`]):
//!
//! ```json
//! {
//!   "format_version": 1,
//!   "name": "ablation_queue",
//!   "smoke": false,
//!   "env": {"os": "linux", "arch": "x86_64", "cpus": 16, "unix_time_s": 0},
//!   "benches": [
//!     {
//!       "id": "ablation_queue/lockfree/w8",
//!       "unit": "msg/s",
//!       "better": "higher",
//!       "samples": [1.0e7, ...],
//!       "summary": {"n_total": 5, "n_used": 5, "min": ..., "max": ...,
//!                   "mean": ..., "median": ..., "stddev": ..., "mad": ...,
//!                   "ci_lo": ..., "ci_hi": ..., "confidence": 0.95}
//!     }
//!   ]
//! }
//! ```
//!
//! Unknown keys are ignored on read (additive evolution); a
//! `format_version` above ours is rejected with
//! [`ReportError::UnsupportedVersion`] so a comparator never silently
//! misreads a future layout. `smoke: true` marks quick-mode runs whose
//! sample counts are below statistical validity — gating tools must
//! refuse to fail on them.

use crate::stats::Summary;
use std::fmt;
use std::path::Path;

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// Which direction of a metric is an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Smaller is better (e.g. seconds per iteration).
    Lower,
    /// Larger is better (e.g. messages per second).
    Higher,
}

impl Better {
    fn as_str(self) -> &'static str {
        match self {
            Better::Lower => "lower",
            Better::Higher => "higher",
        }
    }
}

/// Host fingerprint stamped into every report. Comparing reports from
/// different stamps is allowed but warned about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvStamp {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism at run time.
    pub cpus: usize,
    /// Seconds since the unix epoch when the run finished.
    pub unix_time_s: u64,
}

impl EnvStamp {
    /// Stamp for the current host, timestamped now.
    pub fn current() -> Self {
        EnvStamp {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            unix_time_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
        }
    }

    /// True when the hardware-relevant fields match (timestamp ignored).
    pub fn same_machine_shape(&self, other: &EnvStamp) -> bool {
        self.os == other.os && self.arch == other.arch && self.cpus == other.cpus
    }
}

/// One benchmark's samples and summary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stable identifier, `group/bench` shaped.
    pub id: String,
    /// Unit of every sample, e.g. `"s/iter"` or `"msg/s"`.
    pub unit: String,
    /// Improvement direction of the metric.
    pub better: Better,
    /// Raw samples (post-measurement, pre-rejection).
    pub samples: Vec<f64>,
    /// Distribution summary the stats engine computed from `samples`.
    pub summary: Summary,
    /// Optional per-entry noise floor in percent. When set, the comparator
    /// treats deltas under this magnitude as within noise even if the CIs
    /// are disjoint — for metrics whose honest cross-process repeatability
    /// is wider than the default floor (e.g. fault-overhead ratios of
    /// millisecond-scale chaos cells). `None` uses the global default.
    pub noise_pct: Option<f64>,
}

/// A whole run: every bench the binary executed, plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// On-disk format version ([`FORMAT_VERSION`] when written by us).
    pub format_version: u32,
    /// Bench-target name (the `<name>` of `BENCH_<name>.json`).
    pub name: String,
    /// True for quick-mode runs — statistically invalid, never gate on it.
    pub smoke: bool,
    /// Host fingerprint.
    pub env: EnvStamp,
    /// Every benchmark in execution order.
    pub benches: Vec<BenchEntry>,
}

/// Everything that can go wrong reading a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The file could not be read.
    Io(String),
    /// The bytes are not valid JSON (offset, message).
    Syntax(usize, String),
    /// JSON is valid but the shape is not a bench report.
    Shape(String),
    /// `format_version` is newer than this build understands.
    UnsupportedVersion(u32),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Io(e) => write!(f, "cannot read report: {e}"),
            ReportError::Syntax(at, e) => write!(f, "bad JSON at byte {at}: {e}"),
            ReportError::Shape(e) => write!(f, "not a bench report: {e}"),
            ReportError::UnsupportedVersion(v) => write!(
                f,
                "report format_version {v} is newer than this binary's {FORMAT_VERSION}; \
                 rebuild or regenerate the report"
            ),
        }
    }
}

impl std::error::Error for ReportError {}

// ---------------------------------------------------------------- writing

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `f64` → JSON number. Rust's shortest-roundtrip `Display` keeps full
/// fidelity; JSON has no NaN/∞ so those become `null` (read back as NaN).
fn push_json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // "5" would read back as an integer-looking float; that's fine —
        // the parser treats every number as f64.
    } else {
        out.push_str("null");
    }
}

impl BenchReport {
    /// Builds a v[`FORMAT_VERSION`] report stamped for the current host.
    pub fn new(name: impl Into<String>, smoke: bool) -> Self {
        BenchReport {
            format_version: FORMAT_VERSION,
            name: name.into(),
            smoke,
            env: EnvStamp::current(),
            benches: Vec::new(),
        }
    }

    /// Serializes to the canonical JSON layout (pretty, stable key order).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1024);
        o.push_str("{\n");
        o.push_str(&format!("  \"format_version\": {},\n", self.format_version));
        o.push_str("  \"name\": ");
        push_json_str(&mut o, &self.name);
        o.push_str(",\n");
        o.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        o.push_str("  \"env\": {\"os\": ");
        push_json_str(&mut o, &self.env.os);
        o.push_str(", \"arch\": ");
        push_json_str(&mut o, &self.env.arch);
        o.push_str(&format!(
            ", \"cpus\": {}, \"unix_time_s\": {}}},\n",
            self.env.cpus, self.env.unix_time_s
        ));
        o.push_str("  \"benches\": [");
        for (i, b) in self.benches.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"id\": ");
            push_json_str(&mut o, &b.id);
            o.push_str(", \"unit\": ");
            push_json_str(&mut o, &b.unit);
            o.push_str(&format!(", \"better\": \"{}\",\n", b.better.as_str()));
            if let Some(noise) = b.noise_pct {
                o.push_str("     \"noise_pct\": ");
                push_json_f64(&mut o, noise);
                o.push_str(",\n");
            }
            o.push_str("     \"samples\": [");
            for (j, s) in b.samples.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                push_json_f64(&mut o, *s);
            }
            o.push_str("],\n     \"summary\": {");
            let s = &b.summary;
            o.push_str(&format!(
                "\"n_total\": {}, \"n_used\": {}, ",
                s.n_total, s.n_used
            ));
            for (key, v) in [
                ("min", s.min),
                ("max", s.max),
                ("mean", s.mean),
                ("median", s.median),
                ("stddev", s.stddev),
                ("mad", s.mad),
                ("ci_lo", s.ci_lo),
                ("ci_hi", s.ci_hi),
                ("confidence", s.confidence),
            ] {
                o.push_str(&format!("\"{key}\": "));
                push_json_f64(&mut o, v);
                if key != "confidence" {
                    o.push_str(", ");
                }
            }
            o.push_str("}}");
        }
        o.push_str("\n  ]\n}\n");
        o
    }

    /// Writes the canonical JSON to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a report from `path`.
    pub fn load(path: &Path) -> Result<Self, ReportError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ReportError::Io(format!("{}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Parses a report from JSON text.
    pub fn parse(text: &str) -> Result<Self, ReportError> {
        let v = Json::parse(text)?;
        let obj = v.as_obj("report")?;
        let format_version = obj.num("format_version")? as u32;
        if format_version > FORMAT_VERSION {
            return Err(ReportError::UnsupportedVersion(format_version));
        }
        let env_obj = obj.get("env").ok_or_else(|| miss("env"))?.as_obj("env")?;
        let env = EnvStamp {
            os: env_obj.str("os")?,
            arch: env_obj.str("arch")?,
            cpus: env_obj.num("cpus")? as usize,
            unix_time_s: env_obj.num("unix_time_s")? as u64,
        };
        let mut benches = Vec::new();
        for (i, item) in obj
            .get("benches")
            .ok_or_else(|| miss("benches"))?
            .as_arr("benches")?
            .iter()
            .enumerate()
        {
            let b = item.as_obj(&format!("benches[{i}]"))?;
            let better = match b.str("better")?.as_str() {
                "lower" => Better::Lower,
                "higher" => Better::Higher,
                other => {
                    return Err(ReportError::Shape(format!(
                        "benches[{i}].better must be \"lower\" or \"higher\", got {other:?}"
                    )))
                }
            };
            let samples = b
                .get("samples")
                .ok_or_else(|| miss("samples"))?
                .as_arr("samples")?
                .iter()
                .map(|s| s.as_f64("sample"))
                .collect::<Result<Vec<f64>, _>>()?;
            let sm = b
                .get("summary")
                .ok_or_else(|| miss("summary"))?
                .as_obj("summary")?;
            let summary = Summary {
                n_total: sm.num("n_total")? as usize,
                n_used: sm.num("n_used")? as usize,
                min: sm.num("min")?,
                max: sm.num("max")?,
                mean: sm.num("mean")?,
                median: sm.num("median")?,
                stddev: sm.num("stddev")?,
                mad: sm.num("mad")?,
                ci_lo: sm.num("ci_lo")?,
                ci_hi: sm.num("ci_hi")?,
                confidence: sm.num("confidence")?,
            };
            let noise_pct = match b.get("noise_pct") {
                Some(v) => Some(v.as_f64("noise_pct")?),
                None => None,
            };
            benches.push(BenchEntry {
                id: b.str("id")?,
                unit: b.str("unit")?,
                better,
                samples,
                summary,
                noise_pct,
            });
        }
        Ok(BenchReport {
            format_version,
            name: obj.str("name")?,
            smoke: obj.bool("smoke")?,
            env,
            benches,
        })
    }
}

fn miss(key: &str) -> ReportError {
    ReportError::Shape(format!("missing key {key:?}"))
}

// ------------------------------------------------------------- JSON core

/// A parsed JSON value — the minimal dynamic tree the report reader needs.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Object accessor with typed, named errors.
struct ObjView<'a>(&'a [(String, Json)]);

impl ObjView<'_> {
    fn get(&self, key: &str) -> Option<&Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn num(&self, key: &str) -> Result<f64, ReportError> {
        self.get(key).ok_or_else(|| miss(key))?.as_f64(key)
    }

    fn str(&self, key: &str) -> Result<String, ReportError> {
        match self.get(key).ok_or_else(|| miss(key))? {
            Json::Str(s) => Ok(s.clone()),
            other => Err(ReportError::Shape(format!(
                "{key} must be a string, got {other:?}"
            ))),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, ReportError> {
        match self.get(key).ok_or_else(|| miss(key))? {
            Json::Bool(b) => Ok(*b),
            other => Err(ReportError::Shape(format!(
                "{key} must be a bool, got {other:?}"
            ))),
        }
    }
}

impl Json {
    fn as_obj(&self, what: &str) -> Result<ObjView<'_>, ReportError> {
        match self {
            Json::Obj(kv) => Ok(ObjView(kv)),
            other => Err(ReportError::Shape(format!(
                "{what} must be an object, got {other:?}"
            ))),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], ReportError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(ReportError::Shape(format!(
                "{what} must be an array, got {other:?}"
            ))),
        }
    }

    /// Numbers pass through; `null` reads as NaN (how we encode non-finite).
    fn as_f64(&self, what: &str) -> Result<f64, ReportError> {
        match self {
            Json::Num(x) => Ok(*x),
            Json::Null => Ok(f64::NAN),
            other => Err(ReportError::Shape(format!(
                "{what} must be a number, got {other:?}"
            ))),
        }
    }

    fn parse(text: &str) -> Result<Json, ReportError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ReportError::Syntax(p.pos, "trailing characters".into()));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ReportError> {
        Err(ReportError::Syntax(self.pos, msg.into()))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ReportError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ReportError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(format!("expected {word}"))
        }
    }

    fn value(&mut self) -> Result<Json, ReportError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<Json, ReportError> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            kv.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ReportError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, ReportError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or_else(|| {
                                    ReportError::Syntax(self.pos, "short \\u escape".into())
                                })?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| {
                                    ReportError::Syntax(self.pos, "bad \\u escape".into())
                                })?,
                                16,
                            )
                            .map_err(|_| ReportError::Syntax(self.pos, "bad \\u escape".into()))?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to U+FFFD on read.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| ReportError::Syntax(self.pos, "invalid UTF-8".into()))?;
                    let c = text.chars().next().expect("peeked non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ReportError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ReportError::Syntax(start, "invalid number bytes".into()))?;
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::Num(x)),
            Err(_) => Err(ReportError::Syntax(start, format!("bad number {text:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{summarize, StatsConfig};

    fn entry(id: &str, samples: &[f64], better: Better) -> BenchEntry {
        BenchEntry {
            id: id.into(),
            unit: if better == Better::Lower {
                "s/iter".into()
            } else {
                "msg/s".into()
            },
            better,
            samples: samples.to_vec(),
            summary: summarize(samples, &StatsConfig::default()),
            noise_pct: None,
        }
    }

    fn sample_report() -> BenchReport {
        let mut r = BenchReport::new("unit_test", false);
        r.env = EnvStamp {
            os: "linux".into(),
            arch: "x86_64".into(),
            cpus: 8,
            unix_time_s: 1_700_000_000,
        };
        r.benches.push(entry(
            "group/a",
            &[1.25e-6, 1.5e-6, 1.75e-6, 1.3e-6],
            Better::Lower,
        ));
        r.benches
            .push(entry("group/b", &[3.0e6, 3.1e6, 2.9e6], Better::Higher));
        r
    }

    #[test]
    fn roundtrips_bit_exact() {
        let r = sample_report();
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn noise_floor_roundtrips_and_defaults_to_none() {
        let mut r = sample_report();
        r.benches[0].noise_pct = Some(35.0);
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed.benches[0].noise_pct, Some(35.0));
        assert_eq!(parsed.benches[1].noise_pct, None);
    }

    #[test]
    fn smoke_flag_roundtrips() {
        let mut r = sample_report();
        r.smoke = true;
        assert!(BenchReport::parse(&r.to_json()).unwrap().smoke);
    }

    #[test]
    fn future_version_is_rejected() {
        let text = sample_report()
            .to_json()
            .replace("\"format_version\": 1", "\"format_version\": 99");
        assert_eq!(
            BenchReport::parse(&text),
            Err(ReportError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let text = sample_report().to_json().replace(
            "\"smoke\": false",
            "\"smoke\": false, \"flux_capacitance\": [1, {\"x\": null}]",
        );
        assert_eq!(BenchReport::parse(&text).unwrap(), sample_report());
    }

    #[test]
    fn missing_key_is_a_shape_error() {
        let text = sample_report().to_json().replace("\"name\"", "\"nom\"");
        assert!(matches!(
            BenchReport::parse(&text),
            Err(ReportError::Shape(_))
        ));
    }

    #[test]
    fn garbage_is_a_syntax_error() {
        assert!(matches!(
            BenchReport::parse("{\"format_version\": 1,,}"),
            Err(ReportError::Syntax(..))
        ));
        assert!(matches!(
            BenchReport::parse(""),
            Err(ReportError::Syntax(..))
        ));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut r = sample_report();
        r.name = "we\"ird\\na—me\n\twith λ控制".into();
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed.name, r.name);
    }

    #[test]
    fn non_finite_samples_become_null_then_nan() {
        let mut r = sample_report();
        r.benches[0].samples.push(f64::INFINITY);
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert!(parsed.benches[0].samples.last().unwrap().is_nan());
    }

    #[test]
    fn save_and_load_via_tempfile() {
        let dir = std::env::temp_dir().join("d4py_report_test");
        let path = dir.join("BENCH_unit_test.json");
        let r = sample_report();
        r.save(&path).unwrap();
        assert_eq!(BenchReport::load(&path).unwrap(), r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn env_stamp_shape_comparison_ignores_time() {
        let a = EnvStamp {
            os: "linux".into(),
            arch: "x86_64".into(),
            cpus: 4,
            unix_time_s: 1,
        };
        let mut b = a.clone();
        b.unix_time_s = 999;
        assert!(a.same_machine_shape(&b));
        b.cpus = 8;
        assert!(!a.same_machine_shape(&b));
    }
}
