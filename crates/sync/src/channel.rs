//! An MPMC channel with timed receive — the in-process global queue
//! substrate.
//!
//! This is the channel behind the paper's Figure 2 "Global Queue" on the
//! multiprocessing path (`dyn_multi`, `multi`): multiple producers, multiple
//! consumers, unbounded FIFO, `recv_timeout` for the polling worker loops,
//! and a live `len()` so the depth monitoring signal is two atomic reads —
//! not a lock acquisition — away.
//!
//! Implementation: the storage core is the segmented lock-free queue in
//! [`crate::segqueue`], so an uncontended send or receive is a few atomic
//! operations with **no lock on the fast path** — this is what removes the
//! global-queue mutex handoff that degraded `dyn_multi` at high worker
//! counts. Blocking receives fall back to a thin parking layer: a condvar
//! guarded by a small mutex, used *only* on the empty-queue slow path.
//! Lost notifications are impossible by construction —
//!
//! * a receiver registers itself in `waiters` (SeqCst) and then re-polls
//!   the queue *before* sleeping, so a sender that missed the registration
//!   must have pushed early enough for that re-poll to see the item;
//! * a sender that does observe `waiters > 0` bumps the wakeup generation
//!   and notifies while holding the parking mutex, so the wakeup cannot
//!   fire between the receiver's re-poll and its wait;
//! * a woken receiver compares the generation it slept on against the
//!   current one to tell real wakeups from spurious ones;
//! * a timed-out receiver whose final-check `pop` succeeds re-issues one
//!   wakeup, because the item it took may have carried a notification
//!   aimed at a different, still-parked receiver (see `recv_core`).
//!
//! Depth (`len`) reads delegate straight to the core queue's snapshot
//! counter — there is exactly one count of queued items, so monitors can
//! never observe a phantom backlog from duplicated accounting.
//!
//! Batched operations ([`Sender::send_batch`], [`Receiver::recv_batch`])
//! amortize the parking-layer costs across tuples: a batch send takes the
//! parking lock and notifies once for the whole batch, and a batch receive
//! blocks only for its first item, then drains greedily with plain
//! lock-free pops. Draining cannot lose wakeups: a parked peer whose
//! notification raced with the drain wakes, finds the queue empty, and
//! re-parks through the registration + re-poll protocol above.

use crate::facade::{spin_loop, AtomicBool, AtomicUsize, Condvar, Mutex, Ordering};
use crate::segqueue::SegQueue;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fast-path spin count before a receiver falls back to parking.
#[cfg(not(d4py_model))]
const SPINS: u32 = 32;
/// Model-checked builds park immediately: the spin fast path only re-runs
/// `pop`, which is already covered by the segqueue scenarios, while
/// skipping it puts the explorer's whole preemption budget on the
/// interesting part — the park/wakeup-generation protocol.
#[cfg(d4py_model)]
const SPINS: u32 = 0;

/// Error returned by [`Sender::send`] when every receiver is gone. The
/// unsent value is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a closed channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, closed channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The channel stayed empty for the whole timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

struct Shared<T> {
    /// Lock-free storage; the only count of queued items lives in here.
    queue: SegQueue<T>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    /// Set by [`Sender::close`]/[`Receiver::close`]: no further sends.
    closed: AtomicBool,
    /// Receivers parked (or re-polling just before parking) on `ready`.
    /// Senders skip the parking lock entirely while this is zero.
    waiters: AtomicUsize,
    /// Wakeup generation, bumped under `park` for every notification so a
    /// woken receiver can tell a real wakeup from a spurious one.
    park: Mutex<u64>,
    ready: Condvar,
}

impl<T> Shared<T> {
    fn is_send_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst) || self.receivers.load(Ordering::SeqCst) == 0
    }

    fn is_recv_disconnected(&self) -> bool {
        self.closed.load(Ordering::SeqCst) || self.senders.load(Ordering::SeqCst) == 0
    }

    /// Wakes one parked receiver (post-send). Cheap no-op while nobody
    /// waits: one atomic load, no lock, no syscall.
    fn wake_one(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let mut generation = self.park.lock();
            *generation += 1;
            self.ready.notify_one();
        }
    }

    /// Wakes parked receivers after a batch of `n` sends with a single
    /// generation bump: one lock round-trip per batch instead of per item.
    /// `notify_all` (rather than `n` times `notify_one`) because up to `n`
    /// receivers can now make progress and extra wakeups are absorbed by
    /// the generation re-check.
    fn wake_many(&self, n: usize) {
        if n > 0 && self.waiters.load(Ordering::SeqCst) > 0 {
            let mut generation = self.park.lock();
            *generation += 1;
            if n == 1 {
                self.ready.notify_one();
            } else {
                self.ready.notify_all();
            }
        }
    }

    /// Wakes every parked receiver (close / last sender gone).
    fn wake_all(&self) {
        let mut generation = self.park.lock();
        *generation += 1;
        self.ready.notify_all();
    }
}

/// The sending half. Cloneable: every clone is another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half. Cloneable: every clone is another consumer draining
/// the same FIFO.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: SegQueue::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        closed: AtomicBool::new(false),
        waiters: AtomicUsize::new(0),
        park: Mutex::new(0),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last producer gone: wake blocked receivers so they observe
            // the disconnect.
            self.shared.wake_all();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues `value`, failing if the channel is closed or every receiver
    /// is gone.
    ///
    /// A send racing a concurrent [`close`](Sender::close) may still land
    /// in the queue (it linearizes before the close); queued items stay
    /// receivable after close, so nothing is lost either way.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.is_send_closed() {
            return Err(SendError(value));
        }
        self.shared.queue.push(value);
        self.shared.wake_one();
        Ok(())
    }

    /// Enqueues a whole batch with one wakeup: every item is pushed on the
    /// lock-free core first, then the parking layer is notified once. This
    /// amortizes the waiter check and (when receivers are parked) the lock
    /// round-trip across the batch — the hot-PE fan-out path.
    ///
    /// Fails without enqueuing anything if the channel is closed; the
    /// whole batch is handed back. As with [`send`](Sender::send), a batch
    /// racing a concurrent close linearizes before it: queued items stay
    /// receivable.
    pub fn send_batch(&self, values: Vec<T>) -> Result<(), SendError<Vec<T>>> {
        if values.is_empty() {
            return Ok(());
        }
        if self.shared.is_send_closed() {
            return Err(SendError(values));
        }
        let n = values.len();
        for value in values {
            self.shared.queue.push(value);
        }
        self.shared.wake_many(n);
        Ok(())
    }

    /// Number of queued items — a lock-free snapshot of the single depth
    /// counter inside the queue core.
    pub fn len(&self) -> usize {
        self.shared.queue.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.shared.queue.is_empty()
    }

    /// Closes the channel: subsequent sends fail, queued items stay
    /// receivable, blocked receivers wake.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.wake_all();
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> Receiver<T> {
    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        if let Some(item) = self.shared.queue.pop() {
            return Ok(item);
        }
        if self.shared.is_recv_disconnected() {
            // Drain race: a final send may have landed between the pop and
            // the disconnect check. After the flag is set no new sends
            // start, so one more pop is conclusive.
            return match self.shared.queue.pop() {
                Some(item) => Ok(item),
                None => Err(TryRecvError::Disconnected),
            };
        }
        Err(TryRecvError::Empty)
    }

    /// Dequeues, blocking until an item arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        match self.recv_core(None) {
            Ok(item) => Ok(item),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError),
            Err(RecvTimeoutError::Timeout) => unreachable!("untimed recv cannot time out"),
        }
    }

    /// Dequeues, blocking up to `timeout`.
    ///
    /// Oversized timeouts (e.g. `Duration::MAX` as "block indefinitely")
    /// saturate to an untimed wait instead of panicking on deadline
    /// arithmetic.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.recv_core(Instant::now().checked_add(timeout))
    }

    /// Dequeues up to `max` items, blocking (up to `timeout`) only for the
    /// first. After the first item the drain is greedy and lock-free — no
    /// further parking-layer traffic — so a busy consumer pays one wakeup
    /// per batch instead of one per tuple.
    ///
    /// Returns at least one item on `Ok`; errors exactly like
    /// [`recv_timeout`](Receiver::recv_timeout) when no first item arrives.
    /// `max == 0` returns an empty batch immediately.
    pub fn recv_batch(&self, max: usize, timeout: Duration) -> Result<Vec<T>, RecvTimeoutError> {
        if max == 0 {
            return Ok(Vec::new());
        }
        let first = self.recv_timeout(timeout)?;
        let mut batch = Vec::with_capacity(max.min(64));
        batch.push(first);
        while batch.len() < max {
            match self.shared.queue.pop() {
                Some(item) => batch.push(item),
                None => break,
            }
        }
        Ok(batch)
    }

    /// The shared blocking receive loop. `deadline: None` waits forever.
    fn recv_core(&self, deadline: Option<Instant>) -> Result<T, RecvTimeoutError> {
        let shared = &*self.shared;
        // Fast path: lock-free pop, short bounded spin before parking —
        // on a busy queue a producer is usually mid-push.
        let mut spins = 0u32;
        loop {
            if let Some(item) = shared.queue.pop() {
                return Ok(item);
            }
            if shared.is_recv_disconnected() {
                return match shared.queue.pop() {
                    Some(item) => Ok(item),
                    None => Err(RecvTimeoutError::Disconnected),
                };
            }
            if spins < SPINS {
                spins += 1;
                spin_loop();
                continue;
            }

            // Slow path: park. Register as a waiter *before* the final
            // re-poll so any sender pushing after our last pop either sees
            // waiters > 0 (and will notify under the lock) or pushed early
            // enough for the re-poll below to find the item.
            let mut generation = shared.park.lock();
            shared.waiters.fetch_add(1, Ordering::SeqCst);
            // Injected bug for the model checker: skipping this re-poll
            // opens the classic lost-wakeup window (a send landing between
            // our last pop and the waiter registration is never seen).
            #[cfg(d4py_model)]
            let repoll = !crate::model::fault("channel-skip-park-repoll");
            #[cfg(not(d4py_model))]
            let repoll = true;
            if repoll {
                if let Some(item) = shared.queue.pop() {
                    shared.waiters.fetch_sub(1, Ordering::SeqCst);
                    return Ok(item);
                }
            }
            if shared.is_recv_disconnected() {
                shared.waiters.fetch_sub(1, Ordering::SeqCst);
                drop(generation);
                return match shared.queue.pop() {
                    Some(item) => Ok(item),
                    None => Err(RecvTimeoutError::Disconnected),
                };
            }
            let slept_on = *generation;
            let mut timed_out = false;
            // Wait out spurious wakeups: only a generation bump (or the
            // deadline) ends the nap.
            while *generation == slept_on && !timed_out {
                match deadline {
                    None => shared.ready.wait(&mut generation),
                    Some(deadline) => {
                        timed_out = shared
                            .ready
                            .wait_until(&mut generation, deadline)
                            .timed_out();
                    }
                }
            }
            shared.waiters.fetch_sub(1, Ordering::SeqCst);
            drop(generation);
            if timed_out {
                // Final check: a send may have landed as the wait expired.
                return match shared.queue.pop() {
                    Some(item) => {
                        // This pop can consume an item whose notification
                        // was aimed at a different, still-parked receiver
                        // (we woke by deadline, not by that wakeup). If
                        // another item is queued for that receiver, nobody
                        // will re-notify it until the next send — so pass
                        // the wakeup along. Harmless when no one waits
                        // (one atomic load) or nothing is queued (the
                        // woken receiver re-parks via the re-poll
                        // protocol).
                        #[cfg(d4py_model)]
                        let rewake = !crate::model::fault("channel-timeout-steal-no-wake");
                        #[cfg(not(d4py_model))]
                        let rewake = true;
                        if rewake {
                            shared.wake_one();
                        }
                        Ok(item)
                    }
                    None => Err(RecvTimeoutError::Timeout),
                };
            }
            spins = 0;
        }
    }

    /// Number of queued items — a lock-free snapshot of the single depth
    /// counter inside the queue core.
    pub fn len(&self) -> usize {
        self.shared.queue.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.shared.queue.is_empty()
    }

    /// Closes the channel from the consumer side: subsequent sends fail.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.wake_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_timeout_times_out_on_empty() {
        let (_tx, rx) = unbounded::<i32>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn recv_timeout_duration_max_blocks_until_send() {
        // Regression: `Instant::now() + Duration::MAX` used to panic; the
        // saturated deadline must fall back to an untimed wait instead.
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv_timeout(Duration::MAX));
        std::thread::sleep(Duration::from_millis(20));
        tx.send(7).unwrap();
        assert_eq!(t.join().unwrap(), Ok(7));
    }

    #[test]
    fn recv_timeout_duration_max_observes_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let t = std::thread::spawn(move || rx.recv_timeout(Duration::MAX));
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn recv_wakes_on_send_from_other_thread() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(2)));
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42).unwrap();
        assert_eq!(t.join().unwrap(), Ok(42));
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1), "queued items drain after disconnect");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn dropping_all_receivers_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn close_fails_later_sends_but_drains_queue() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        rx.close();
        assert_eq!(tx.send(2), Err(SendError(2)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn len_tracks_send_and_recv() {
        let (tx, rx) = unbounded();
        assert!(tx.is_empty());
        tx.send('a').unwrap();
        tx.send('b').unwrap();
        assert_eq!(rx.len(), 2);
        rx.try_recv().unwrap();
        assert_eq!(tx.len(), 1);
    }

    #[test]
    fn blocked_receiver_wakes_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..500).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn try_recv_empty_vs_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn many_parked_receivers_all_wake() {
        // One parked receiver per item, items sent one at a time: every
        // notification must land (no lost wakeups on the parking layer).
        let (tx, rx) = unbounded();
        let receivers: Vec<_> = (0..8)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(10)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..8 {
            tx.send(i).unwrap();
        }
        let mut got: Vec<i32> = receivers
            .into_iter()
            .map(|r| r.join().unwrap().expect("every receiver gets an item"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn send_batch_preserves_fifo_and_recv_batch_caps_at_max() {
        let (tx, rx) = unbounded();
        tx.send_batch((0..10).collect()).unwrap();
        assert_eq!(tx.len(), 10);
        let first = rx.recv_batch(4, Duration::from_millis(100)).unwrap();
        assert_eq!(first, vec![0, 1, 2, 3], "batch pop must stay FIFO");
        assert_eq!(rx.len(), 6, "undrained items stay queued");
        let rest = rx
            .recv_batch(usize::MAX, Duration::from_millis(100))
            .unwrap();
        assert_eq!(rest, (4..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_batch_on_closed_channel_returns_whole_batch() {
        let (tx, rx) = unbounded();
        rx.close();
        assert_eq!(tx.send_batch(vec![1, 2, 3]), Err(SendError(vec![1, 2, 3])));
        assert_eq!(tx.len(), 0, "failed batch must not enqueue anything");
        assert_eq!(tx.send_batch(Vec::new()), Ok(()), "empty batch is a no-op");
    }

    #[test]
    fn recv_batch_times_out_like_recv_timeout() {
        let (_tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_batch(8, Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert_eq!(rx.recv_batch(0, Duration::from_millis(20)), Ok(Vec::new()));
    }

    #[test]
    fn recv_batch_wakes_parked_receiver_on_batch_send() {
        // The single batched wakeup must reach a parked receiver, and the
        // receiver must drain the whole batch in one blocking call.
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv_batch(8, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        tx.send_batch(vec![1, 2, 3]).unwrap();
        assert_eq!(t.join().unwrap(), Ok(vec![1, 2, 3]));
    }

    #[test]
    fn batch_send_wakes_every_parked_receiver() {
        // One notify_all for the batch: all parked receivers must make
        // progress (each receives at least its own item).
        let (tx, rx) = unbounded();
        let receivers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(10)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        tx.send_batch((0..4).collect()).unwrap();
        let mut got: Vec<i32> = receivers
            .into_iter()
            .map(|r| r.join().unwrap().expect("every receiver gets an item"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..4).collect::<Vec<_>>());
    }

    /// Seeded property hammer: random producer/consumer/item counts, random
    /// shutdown mode (drop vs close), asserting exactly-once delivery and
    /// per-producer FIFO order. Replay any failure with
    /// `D4PY_PROP_SEED=<seed> cargo test prop_mpmc_hammer`.
    #[test]
    fn prop_mpmc_hammer_exactly_once_and_producer_fifo() {
        prop::for_all_cases(12, |g| {
            let producers = g.usize_in(1..4);
            let consumers = g.usize_in(1..4);
            let per_producer = g.usize_in(1..300);
            let close_instead_of_drop = g.any::<bool>();

            let (tx, rx) = unbounded::<(usize, usize)>();
            let producer_handles: Vec<_> = (0..producers)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..per_producer {
                            tx.send((p, i)).unwrap();
                        }
                    })
                })
                .collect();
            for h in producer_handles {
                h.join().unwrap();
            }
            if close_instead_of_drop {
                tx.close();
            }
            drop(tx);

            let consumer_handles: Vec<_> = (0..consumers)
                .map(|c| {
                    let rx = rx.clone();
                    // Exercise both receive entry points.
                    let timed = c % 2 == 0;
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            let item = if timed {
                                match rx.recv_timeout(Duration::from_millis(50)) {
                                    Ok(v) => v,
                                    Err(RecvTimeoutError::Disconnected) => break,
                                    Err(RecvTimeoutError::Timeout) => continue,
                                }
                            } else {
                                match rx.recv() {
                                    Ok(v) => v,
                                    Err(RecvError) => break,
                                }
                            };
                            got.push(item);
                        }
                        got
                    })
                })
                .collect();

            let per_consumer: Vec<Vec<(usize, usize)>> = consumer_handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect();

            // Per-producer order: any one consumer sees a producer's items
            // in strictly increasing sequence.
            for got in &per_consumer {
                let mut last = vec![None::<usize>; producers];
                for &(p, i) in got {
                    if let Some(prev) = last[p] {
                        assert!(prev < i, "producer {p} reordered: {prev} then {i}");
                    }
                    last[p] = Some(i);
                }
            }

            // Exactly-once: the union of all consumers is the exact multiset
            // of sent items.
            let mut all: Vec<(usize, usize)> = per_consumer.into_iter().flatten().collect();
            all.sort_unstable();
            let expected: Vec<(usize, usize)> = (0..producers)
                .flat_map(|p| (0..per_producer).map(move |i| (p, i)))
                .collect();
            assert_eq!(all, expected, "items lost or duplicated");
        });
    }
}
