//! An MPMC channel with timed receive — the in-process global queue
//! substrate.
//!
//! This is the channel behind the paper's Figure 2 "Global Queue" on the
//! multiprocessing path (`dyn_multi`, `multi`): multiple producers, multiple
//! consumers, unbounded FIFO, `recv_timeout` for the polling worker loops,
//! and a live `len()` so the depth monitoring signal is one atomic read —
//! not a lock acquisition — away.
//!
//! Implementation: a `Mutex<VecDeque>` ring with a `Condvar` for waiters and
//! atomic sender/receiver reference counts for disconnect detection. The
//! depth counter is redundant with `queue.len()` but readable without the
//! lock, which is what the auto-scaler's monitor tick wants.

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone. The
/// unsent value is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a closed channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, closed channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The channel stayed empty for the whole timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    /// Live element count, readable without the queue lock.
    depth: AtomicUsize,
    /// Set by [`Sender::close`]/[`Receiver::close`]: no further sends.
    closed: AtomicUsize,
}

impl<T> Shared<T> {
    fn is_send_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst) != 0 || self.receivers.load(Ordering::SeqCst) == 0
    }

    fn is_recv_disconnected(&self) -> bool {
        self.closed.load(Ordering::SeqCst) != 0 || self.senders.load(Ordering::SeqCst) == 0
    }
}

/// The sending half. Cloneable: every clone is another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half. Cloneable: every clone is another consumer draining
/// the same FIFO.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        depth: AtomicUsize::new(0),
        closed: AtomicUsize::new(0),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last producer gone: wake blocked receivers so they observe
            // the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues `value`, failing if the channel is closed or every receiver
    /// is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.is_send_closed() {
            return Err(SendError(value));
        }
        {
            let mut q = self.shared.queue.lock();
            // Re-check under the lock so a racing close() can't strand an
            // item behind a receiver that already gave up.
            if self.shared.is_send_closed() {
                return Err(SendError(value));
            }
            q.push_back(value);
            self.shared.depth.fetch_add(1, Ordering::SeqCst);
        }
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.shared.depth.load(Ordering::SeqCst)
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the channel: subsequent sends fail, queued items stay
    /// receivable, blocked receivers wake.
    pub fn close(&self) {
        self.shared.closed.store(1, Ordering::SeqCst);
        self.shared.ready.notify_all();
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> Receiver<T> {
    fn pop_locked(&self, q: &mut VecDeque<T>) -> Option<T> {
        let item = q.pop_front();
        if item.is_some() {
            self.shared.depth.fetch_sub(1, Ordering::SeqCst);
        }
        item
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock();
        match self.pop_locked(&mut q) {
            Some(item) => Ok(item),
            None if self.shared.is_recv_disconnected() => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Dequeues, blocking until an item arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock();
        loop {
            if let Some(item) = self.pop_locked(&mut q) {
                return Ok(item);
            }
            if self.shared.is_recv_disconnected() {
                return Err(RecvError);
            }
            self.shared.ready.wait(&mut q);
        }
    }

    /// Dequeues, blocking up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock();
        loop {
            if let Some(item) = self.pop_locked(&mut q) {
                return Ok(item);
            }
            if self.shared.is_recv_disconnected() {
                return Err(RecvTimeoutError::Disconnected);
            }
            if self.shared.ready.wait_until(&mut q, deadline).timed_out() {
                // Final check: a send may have landed as the wait expired.
                return match self.pop_locked(&mut q) {
                    Some(item) => Ok(item),
                    None => Err(RecvTimeoutError::Timeout),
                };
            }
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.shared.depth.load(Ordering::SeqCst)
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the channel from the consumer side: subsequent sends fail.
    pub fn close(&self) {
        self.shared.closed.store(1, Ordering::SeqCst);
        self.shared.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_timeout_times_out_on_empty() {
        let (_tx, rx) = unbounded::<i32>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn recv_wakes_on_send_from_other_thread() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(2)));
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42).unwrap();
        assert_eq!(t.join().unwrap(), Ok(42));
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1), "queued items drain after disconnect");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn dropping_all_receivers_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn close_fails_later_sends_but_drains_queue() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        rx.close();
        assert_eq!(tx.send(2), Err(SendError(2)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn len_tracks_send_and_recv() {
        let (tx, rx) = unbounded();
        assert!(tx.is_empty());
        tx.send('a').unwrap();
        tx.send('b').unwrap();
        assert_eq!(rx.len(), 2);
        rx.try_recv().unwrap();
        assert_eq!(tx.len(), 1);
    }

    #[test]
    fn blocked_receiver_wakes_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..500).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn try_recv_empty_vs_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
