//! Per-worker work-stealing queue — the dispatch topology that breaks the
//! single-global-queue scaling wall.
//!
//! The [`channel`](crate::channel) global queue funnels every producer and
//! consumer through one MPMC core: at high worker counts its head/tail
//! cursors become the contention point and throughput plateaus (see
//! `BENCH_ablation_queue`). [`StealQueue`] splits the storage per worker:
//!
//! * one lock-free [`SegQueue`] **local** per worker — a worker pushes its
//!   own fan-out there and pops it first, so the hot path is effectively
//!   single-producer/single-consumer and cursor contention disappears;
//! * one shared **injector** queue for producers without a worker identity
//!   (workflow seeding, poison pills, external feeds);
//! * **stealing**: a worker whose local and the injector are both empty
//!   sweeps its peers' locals, starting from a victim chosen by the seeded
//!   PCG32 (`seed` ⊕ worker, streamed by a sweep counter) so contending
//!   thieves scatter instead of convoying on worker 0. A single pop steals
//!   exactly one item per sweep; a **batched** pop whose first item came
//!   from a peer keeps draining that same victim (up to the batch cap), so
//!   one O(workers) sweep amortizes over the whole batch instead of being
//!   paid per stolen item.
//!
//! A worker parks only after a **full** sweep (own local, injector, every
//! peer) comes up empty. The park protocol is the channel's, verbatim:
//! register in `waiters`, re-sweep before sleeping, wakeup-generation
//! re-check on wake, and a timed-out popper that takes an item re-issues
//! one wakeup (see `channel::recv_core` for the invariant argument). The
//! model suite (`crates/sync/tests/model.rs`) explores steal-vs-pop
//! exactly-once and the no-lost-wakeup property across interleavings, with
//! an injected `steal-skip-park-repoll` fault proving the checker would
//! catch a regression.
//!
//! Batched operations mirror the channel's: [`StealQueue::push_batch`]
//! notifies once per batch, [`StealQueue::pop_batch`] blocks only for its
//! first item and then drains greedily with plain lock-free pops.

use crate::channel::{RecvTimeoutError, SendError};
use crate::facade::{spin_loop, AtomicBool, AtomicUsize, Condvar, Mutex, Ordering};
use crate::rng::{Pcg32, Rng};
use crate::segqueue::SegQueue;
use std::time::{Duration, Instant};

/// Fast-path spin count before a popper falls back to parking.
#[cfg(not(d4py_model))]
const SPINS: u32 = 32;
/// Model-checked builds park immediately: spinning only re-runs the sweep,
/// already covered by the non-blocking scenarios, while the explorer's
/// preemption budget belongs on the park/wakeup-generation protocol.
#[cfg(d4py_model)]
const SPINS: u32 = 0;

/// Mixing constant (the 64-bit golden ratio) separating per-worker RNG
/// seeds; workers sharing one seed would pick identical victim sequences
/// and convoy on the same peer.
const WORKER_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Where a sweep found its item; lets [`StealQueue::pop_batch`] keep
/// draining the same victim instead of paying a fresh sweep per item.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Src {
    Own,
    Injector,
    Peer(usize),
}

/// A per-worker queue set with work stealing and a shared injector.
///
/// Shared by `Arc` between all producers and workers; workers are
/// identified by index (`0..workers`). Out-of-range worker indexes are
/// mapped into range (`index % workers`) rather than rejected, matching
/// the channel queue's tolerance of late-joining consumers.
pub struct StealQueue<T> {
    /// One SPMC-ish deque per worker: its owner pushes and pops the front;
    /// thieves pop the same end (the segqueue is FIFO-only), which keeps
    /// per-producer FIFO observable through steals.
    locals: Vec<SegQueue<T>>,
    /// Overflow/external lane for producers with no worker identity.
    injector: SegQueue<T>,
    /// Set by [`StealQueue::close`]: no further pushes.
    closed: AtomicBool,
    /// Workers parked (or re-sweeping just before parking) on `ready`.
    waiters: AtomicUsize,
    /// Wakeup generation, bumped under the lock for every notification.
    park: Mutex<u64>,
    ready: Condvar,
    /// Base seed for victim selection.
    seed: u64,
    /// Sweep tick, streamed into the PCG32 so consecutive sweeps by one
    /// worker start from different victims.
    sweeps: AtomicUsize,
    /// Items obtained from a peer's local (not injector, not own local).
    steals: AtomicUsize,
}

impl<T> StealQueue<T> {
    /// Creates a queue set for `workers` workers (at least one local is
    /// always allocated) with a deterministic victim-selection seed.
    pub fn new(workers: usize, seed: u64) -> Self {
        let locals = (0..workers.max(1)).map(|_| SegQueue::new()).collect();
        StealQueue {
            locals,
            injector: SegQueue::new(),
            closed: AtomicBool::new(false),
            waiters: AtomicUsize::new(0),
            park: Mutex::new(0),
            ready: Condvar::new(),
            seed,
            sweeps: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        }
    }

    /// Number of per-worker locals.
    pub fn workers(&self) -> usize {
        self.locals.len()
    }

    /// Items obtained by stealing from a peer's local so far.
    pub fn steals(&self) -> usize {
        // relaxed: monotonic stat counter, read for reporting only — no
        // ordering is derived from it.
        self.steals.load(Ordering::Relaxed)
    }

    /// Total queued items across every local and the injector. Each
    /// summand is a lock-free snapshot, so a concurrent monitor may see a
    /// momentarily stale mix but never a phantom negative.
    pub fn len(&self) -> usize {
        let mut total = self.injector.len();
        for local in &self.locals {
            total += local.len();
        }
        total
    }

    /// True when no items are queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: subsequent pushes fail, queued items stay
    /// poppable, parked workers wake and observe the disconnect.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    fn wake_one(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let mut generation = self.park.lock();
            *generation += 1;
            self.ready.notify_one();
        }
    }

    /// One generation bump for a batch of `n` pushes; `notify_all` when
    /// more than one worker could make progress (extra wakeups are
    /// absorbed by the generation re-check).
    fn wake_many(&self, n: usize) {
        if n > 0 && self.waiters.load(Ordering::SeqCst) > 0 {
            let mut generation = self.park.lock();
            *generation += 1;
            if n == 1 {
                self.ready.notify_one();
            } else {
                self.ready.notify_all();
            }
        }
    }

    fn wake_all(&self) {
        let mut generation = self.park.lock();
        *generation += 1;
        self.ready.notify_all();
    }

    /// Enqueues on the injector (no worker identity), failing if closed.
    pub fn push(&self, value: T) -> Result<(), SendError<T>> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(SendError(value));
        }
        self.injector.push(value);
        self.wake_one();
        Ok(())
    }

    /// Enqueues on `worker`'s own local — the fan-out fast path: the
    /// owner usually pops it back without touching any shared cursor.
    pub fn push_local(&self, worker: usize, value: T) -> Result<(), SendError<T>> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(SendError(value));
        }
        self.locals[worker % self.locals.len()].push(value);
        self.wake_one();
        Ok(())
    }

    /// Enqueues a whole batch with one wakeup: `producer: Some(w)` lands
    /// the batch on `w`'s local (preserving its order), `None` on the
    /// injector. Fails without enqueuing anything if the queue is closed;
    /// the whole batch is handed back.
    pub fn push_batch(
        &self,
        producer: Option<usize>,
        values: Vec<T>,
    ) -> Result<(), SendError<Vec<T>>> {
        if values.is_empty() {
            return Ok(());
        }
        if self.closed.load(Ordering::SeqCst) {
            return Err(SendError(values));
        }
        let n = values.len();
        match producer {
            Some(worker) => {
                let local = &self.locals[worker % self.locals.len()];
                for value in values {
                    local.push(value);
                }
            }
            None => {
                for value in values {
                    self.injector.push(value);
                }
            }
        }
        self.wake_many(n);
        Ok(())
    }

    /// One full non-blocking sweep: own local, injector, then every peer
    /// local starting from a PCG32-chosen victim. Reports where the item
    /// came from so a batched pop can keep draining the same source.
    fn sweep_src(&self, worker: usize) -> Option<(T, Src)> {
        if let Some(item) = self.locals[worker].pop() {
            return Some((item, Src::Own));
        }
        if let Some(item) = self.injector.pop() {
            return Some((item, Src::Injector));
        }
        let n = self.locals.len();
        if n > 1 {
            // relaxed: the sweep tick only decorrelates victim choice
            // between concurrent thieves; correctness never depends on
            // its ordering — any interleaving of ticks is a valid stream.
            let tick = self.sweeps.fetch_add(1, Ordering::Relaxed) as u64;
            let mut rng = Pcg32::new(self.seed ^ (worker as u64).wrapping_mul(WORKER_MIX), tick);
            let start = rng.gen_range(0..n);
            for k in 0..n {
                let victim = (start + k) % n;
                if victim == worker {
                    continue;
                }
                if let Some(item) = self.locals[victim].pop() {
                    // relaxed: stat counter (see `steals`).
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some((item, Src::Peer(victim)));
                }
            }
        }
        None
    }

    fn sweep(&self, worker: usize) -> Option<T> {
        self.sweep_src(worker).map(|(item, _)| item)
    }

    /// Non-blocking pop: one full sweep as `worker`.
    pub fn try_pop(&self, worker: usize) -> Option<T> {
        self.sweep(worker % self.locals.len())
    }

    /// Pops as `worker`, parking until an item arrives or the queue is
    /// closed and drained.
    pub fn pop_wait(&self, worker: usize) -> Result<T, RecvTimeoutError> {
        self.pop_core(worker % self.locals.len(), None)
            .map(|(item, _)| item)
    }

    /// Pops as `worker`, parking up to `timeout`. Oversized timeouts
    /// saturate to an untimed wait (same contract as the channel).
    pub fn pop_timeout(&self, worker: usize, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.pop_core(
            worker % self.locals.len(),
            Instant::now().checked_add(timeout),
        )
        .map(|(item, _)| item)
    }

    /// Pops up to `max` items as `worker`, blocking (up to `timeout`)
    /// only for the first. The greedy tail drains the worker's own local,
    /// the injector, and — when the first item was stolen — the same
    /// victim's local, so a thief pays one O(workers) sweep per batch
    /// rather than per item. Peers other than that victim are never
    /// touched by the tail. Returns at least one item on `Ok`; `max == 0`
    /// returns an empty batch immediately.
    pub fn pop_batch(
        &self,
        worker: usize,
        max: usize,
        timeout: Duration,
    ) -> Result<Vec<T>, RecvTimeoutError> {
        if max == 0 {
            return Ok(Vec::new());
        }
        let worker = worker % self.locals.len();
        let (first, src) = self.pop_core(worker, Instant::now().checked_add(timeout))?;
        let mut batch = Vec::with_capacity(max.min(64));
        batch.push(first);
        while batch.len() < max {
            if let Some(item) = self.locals[worker].pop() {
                batch.push(item);
            } else if let Some(item) = self.injector.pop() {
                batch.push(item);
            } else if let Src::Peer(victim) = src {
                match self.locals[victim].pop() {
                    Some(item) => {
                        // relaxed: stat counter (see `steals`).
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        batch.push(item);
                    }
                    None => break,
                }
            } else {
                break;
            }
        }
        Ok(batch)
    }

    /// The blocking pop loop — structurally `channel::recv_core` with the
    /// single `pop` replaced by the full steal sweep. `deadline: None`
    /// waits forever.
    fn pop_core(
        &self,
        worker: usize,
        deadline: Option<Instant>,
    ) -> Result<(T, Src), RecvTimeoutError> {
        let mut spins = 0u32;
        loop {
            if let Some(found) = self.sweep_src(worker) {
                return Ok(found);
            }
            if self.closed.load(Ordering::SeqCst) {
                // Drain race: a final push may have landed between the
                // sweep and the closed check; after the flag no new pushes
                // start, so one more sweep is conclusive.
                return match self.sweep_src(worker) {
                    Some(found) => Ok(found),
                    None => Err(RecvTimeoutError::Disconnected),
                };
            }
            if spins < SPINS {
                spins += 1;
                spin_loop();
                continue;
            }

            // Park only after the full sweep failed. Register as a waiter
            // *before* the final re-sweep so a producer pushing after our
            // sweep either sees waiters > 0 (and notifies under the lock)
            // or pushed early enough for the re-sweep to find the item.
            let mut generation = self.park.lock();
            self.waiters.fetch_add(1, Ordering::SeqCst);
            // Injected bug for the model checker: skipping the re-sweep
            // opens the lost-wakeup window (a push landing between our
            // failed sweep and the waiter registration is never seen).
            #[cfg(d4py_model)]
            let repoll = !crate::model::fault("steal-skip-park-repoll");
            #[cfg(not(d4py_model))]
            let repoll = true;
            if repoll {
                if let Some(found) = self.sweep_src(worker) {
                    self.waiters.fetch_sub(1, Ordering::SeqCst);
                    return Ok(found);
                }
            }
            if self.closed.load(Ordering::SeqCst) {
                self.waiters.fetch_sub(1, Ordering::SeqCst);
                drop(generation);
                return match self.sweep_src(worker) {
                    Some(found) => Ok(found),
                    None => Err(RecvTimeoutError::Disconnected),
                };
            }
            let slept_on = *generation;
            let mut timed_out = false;
            while *generation == slept_on && !timed_out {
                match deadline {
                    None => self.ready.wait(&mut generation),
                    Some(deadline) => {
                        timed_out = self.ready.wait_until(&mut generation, deadline).timed_out();
                    }
                }
            }
            self.waiters.fetch_sub(1, Ordering::SeqCst);
            drop(generation);
            if timed_out {
                // Final check — and, when it takes an item, pass the
                // possibly-consumed notification along to a still-parked
                // peer (same rationale as `channel::recv_core`).
                return match self.sweep_src(worker) {
                    Some(found) => {
                        self.wake_one();
                        Ok(found)
                    }
                    None => Err(RecvTimeoutError::Timeout),
                };
            }
            spins = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn own_local_pops_before_injector_and_peers() {
        let q = StealQueue::new(2, 7);
        q.push(10).unwrap(); // injector
        q.push_local(1, 20).unwrap(); // peer local
        q.push_local(0, 30).unwrap(); // own local
        assert_eq!(q.try_pop(0), Some(30), "own local first");
        assert_eq!(q.try_pop(0), Some(10), "injector before stealing");
        assert_eq!(q.try_pop(0), Some(20), "steal last");
        assert_eq!(q.steals(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn injector_is_fifo_per_producer() {
        let q = StealQueue::new(1, 0);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.try_pop(0), Some(i));
        }
    }

    #[test]
    fn pop_timeout_times_out_on_empty() {
        let q = StealQueue::<u8>::new(2, 0);
        let start = Instant::now();
        assert_eq!(
            q.pop_timeout(0, Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn parked_worker_is_woken_by_peer_local_push() {
        // The no-lost-wakeup property across locals: worker 0 parks after
        // a failed sweep, a push to worker 1's local must wake it to steal.
        let q = Arc::new(StealQueue::new(2, 3));
        let popper = {
            let q = q.clone();
            std::thread::spawn(move || q.pop_timeout(0, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push_local(1, 42u32).unwrap();
        assert_eq!(popper.join().unwrap(), Ok(42));
        assert_eq!(q.steals(), 1);
    }

    #[test]
    fn close_fails_pushes_and_drains_then_disconnects() {
        let q = StealQueue::new(2, 0);
        q.push_local(0, 1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(SendError(2)));
        assert_eq!(q.push_local(0, 3), Err(SendError(3)));
        assert_eq!(q.push_batch(None, vec![4]), Err(SendError(vec![4])));
        assert_eq!(q.pop_timeout(1, Duration::from_millis(50)), Ok(1));
        assert_eq!(
            q.pop_timeout(1, Duration::from_millis(50)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn parked_worker_wakes_on_close() {
        let q = Arc::new(StealQueue::<u8>::new(1, 0));
        let popper = {
            let q = q.clone();
            std::thread::spawn(move || q.pop_wait(0))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn batch_push_batch_pop_round_trip() {
        let q = StealQueue::new(2, 0);
        q.push_batch(Some(0), (0..6).collect()).unwrap();
        q.push_batch(None, (6..8).collect()).unwrap();
        assert_eq!(q.len(), 8);
        let batch = q.pop_batch(0, 4, Duration::from_millis(50)).unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3], "local batch stays FIFO");
        assert_eq!(q.len(), 4);
        let rest = q
            .pop_batch(0, usize::MAX, Duration::from_millis(50))
            .unwrap();
        assert_eq!(rest, vec![4, 5, 6, 7], "drain covers local then injector");
        assert_eq!(
            q.pop_batch(0, 4, Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        assert_eq!(q.pop_batch(0, 0, Duration::from_millis(10)), Ok(Vec::new()));
    }

    #[test]
    fn batch_pop_drains_peers_only_through_its_own_victim() {
        // Own items present: the tail stays on own local + injector and
        // leaves every peer untouched.
        let q = StealQueue::new(2, 0);
        q.push_local(0, 1).unwrap();
        q.push_local(1, 2).unwrap();
        let batch = q.pop_batch(0, 8, Duration::from_millis(50)).unwrap();
        assert_eq!(batch, vec![1], "tail must not steal while own items fed it");
        assert_eq!(q.len(), 1);

        // Nothing local: the first pop steals, and the tail keeps draining
        // that same victim (one sweep amortized over the batch).
        let q = StealQueue::new(3, 0);
        q.push_batch(Some(1), vec![10, 11, 12]).unwrap();
        let batch = q.pop_batch(0, 2, Duration::from_millis(50)).unwrap();
        assert_eq!(batch, vec![10, 11], "victim drains FIFO, capped at max");
        assert_eq!(q.steals(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn out_of_range_worker_indexes_wrap() {
        let q = StealQueue::new(2, 0);
        q.push_local(5, 9).unwrap(); // 5 % 2 == 1
        assert_eq!(q.try_pop(3), Some(9), "3 % 2 == 1 pops its own local");
        assert_eq!(q.steals(), 0);
    }

    #[test]
    fn mpmc_steal_hammer_loses_nothing() {
        const WORKERS: usize = 4;
        const PER_WORKER: usize = 500;
        let q = Arc::new(StealQueue::new(WORKERS, 0xfeed));
        let producers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_WORKER {
                        q.push_local(w, w * PER_WORKER + i).unwrap();
                    }
                })
            })
            .collect();
        // Consumers deliberately offset from producers so steals happen.
        let popped = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let consumers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let q = q.clone();
                let popped = popped.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while popped.load(std::sync::atomic::Ordering::SeqCst) < WORKERS * PER_WORKER {
                        if let Ok(v) = q.pop_timeout((w + 1) % WORKERS, Duration::from_millis(5)) {
                            popped.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..WORKERS * PER_WORKER).collect::<Vec<_>>());
        assert_eq!(q.len(), 0);
    }
}
