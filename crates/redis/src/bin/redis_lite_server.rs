//! Standalone redis-lite server.
//!
//! ```sh
//! cargo run -p redis-lite --release --bin redis_lite_server -- 6379
//! cargo run -p redis-lite --release --bin redis_lite_server -- 6379 --aof data.aof
//! redis-cli -p 6379 ping        # works with real Redis clients too
//! ```

use redis_lite::server::Server;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let port: u16 = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map(|p| p.parse().expect("port must be a number"))
        .unwrap_or(6379);
    let aof_path = args
        .iter()
        .position(|a| a == "--aof")
        .and_then(|i| args.get(i + 1).cloned());

    let server = match aof_path {
        Some(path) => {
            println!("append-only file: {path}");
            Server::start_with_aof(port, &path).expect("bind with aof")
        }
        None => Server::start(port).expect("bind"),
    };
    println!("redis-lite listening on {}", server.addr());
    println!("Ctrl-C to stop.");
    loop {
        // sleep: parks the CLI main thread forever; the listener threads
        // do all the work and Ctrl-C is the only exit.
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
