//! The command engine: shared keyspace, dispatch, and blocking semantics.
//!
//! [`Shared`] is the server's heart: the keyspace behind a mutex plus a
//! condvar that write commands pulse so blocking reads (`BLPOP`, `XREAD
//! BLOCK`, `XREADGROUP ... BLOCK`) can wake without polling — the same
//! wait-for-data shape real Redis gives its blocked clients. Both the TCP
//! server and the in-process transport dispatch through [`Shared::dispatch`],
//! so every transport sees identical semantics.
//!
//! For the reactor server there is a second, non-parking surface:
//! [`Shared::dispatch_nonblocking`] returns [`Dispatch::Blocked`] instead of
//! parking the calling thread, and [`Shared::poll_blocked`] retries a parked
//! command. Lost wakeups are prevented by a monotonically increasing *write
//! epoch*: every write bumps it (after mutating, before notifying), and a
//! blocked command records the epoch it last attempted under — if the epoch
//! moved since, something was written and the command is worth retrying.

use crate::aof::{Aof, FsyncPolicy};
use crate::commands;
use crate::resp::Frame;
use crate::store::Db;
use d4py_sync::{Condvar, Mutex, SharedBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared server state: one keyspace + wakeup machinery.
pub struct Shared {
    db: Mutex<Db>,
    wakeup: Condvar,
    /// Bumped on every completed write; blocked commands compare it to the
    /// value they last attempted under.
    write_epoch: AtomicU64,
    epoch: Instant,
    aof: Option<Aof>,
}

impl Default for Shared {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of a non-blocking dispatch.
pub enum Dispatch {
    /// The command completed; reply with this frame.
    Ready(Frame),
    /// A blocking command found no data: park the connection and retry via
    /// [`Shared::poll_blocked`].
    Blocked(BlockedCmd),
}

/// A blocking command parked until data arrives or its deadline passes.
pub struct BlockedCmd {
    kind: BlockedKind,
    /// `None` = wait forever.
    deadline: Option<Instant>,
    /// Write epoch observed before the last (failed) attempt.
    epoch_seen: u64,
}

enum BlockedKind {
    List {
        keys: Vec<SharedBuf>,
        left: bool,
    },
    Stream {
        is_group: bool,
        parsed: commands::StreamReadCmd,
    },
}

impl BlockedCmd {
    /// The absolute deadline, if the command has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

impl Shared {
    /// Creates an empty server state.
    pub fn new() -> Self {
        Self {
            db: Mutex::new(Db::new()),
            wakeup: Condvar::new(),
            write_epoch: AtomicU64::new(0),
            epoch: Instant::now(),
            aof: None,
        }
    }

    /// Creates server state persisted through an append-only file: the
    /// existing log at `path` is replayed into the keyspace, then every
    /// subsequent successful write command is appended.
    ///
    /// Scope: the explicit write-command subset (see
    /// [`commands::is_write`]) plus the effects of blocking pops.
    /// Consumer-group cursors/PELs are runtime-transient and not persisted
    /// — matching how the workflow mappings rebuild their groups per run.
    pub fn with_aof(
        path: impl AsRef<std::path::Path>,
        policy: FsyncPolicy,
    ) -> std::io::Result<Self> {
        let mut shared = Self::new();
        for args in Aof::load(&path)? {
            // Replay moves each arg into a SharedBuf (no payload copy).
            let args: Vec<SharedBuf> = args.into_iter().map(SharedBuf::from).collect();
            let Some(cmd) = args.first() else { continue };
            let name = String::from_utf8_lossy(cmd).to_ascii_uppercase();
            let mut db = shared.db.lock();
            let _ = commands::execute(&mut db, shared.now_ms(), &name, &args[1..]);
        }
        shared.aof = Some(Aof::open(path, policy)?);
        Ok(shared)
    }

    fn log_write(&self, name: &str, args: &[SharedBuf], reply: &Frame) {
        if let Some(aof) = &self.aof {
            if commands::is_write(name) && !reply.is_error() {
                let mut entry: Vec<SharedBuf> = Vec::with_capacity(args.len() + 1);
                entry.push(SharedBuf::from(name.as_bytes()));
                entry.extend(args.iter().cloned());
                let _ = aof.append(&entry);
            }
        }
    }

    /// Milliseconds since server start — the clock for auto stream ids.
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Runs `f` with the keyspace locked.
    pub fn with_db<T>(&self, f: impl FnOnce(&mut Db) -> T) -> T {
        f(&mut self.db.lock())
    }

    /// The current write epoch. Moves exactly when a write completes, so a
    /// stable value across two reads means no data arrived in between.
    pub fn write_epoch(&self) -> u64 {
        self.write_epoch.load(Ordering::Acquire)
    }

    /// Marks a completed write: bump the epoch (the keyspace mutation is
    /// already unlocked, so any epoch observer also observes the data),
    /// then pulse parked threads.
    fn mark_write(&self) {
        self.write_epoch.fetch_add(1, Ordering::Release);
        self.wakeup.notify_all();
    }

    /// Executes one client command, parking the calling thread for blocking
    /// commands (the in-process and thread-per-connection surface).
    pub fn dispatch(&self, args: &[SharedBuf]) -> Frame {
        let Some(cmd) = args.first() else {
            return Frame::error("empty command");
        };
        let name = String::from_utf8_lossy(cmd).to_ascii_uppercase();

        // Blocking commands get the retry-until-deadline treatment; all
        // others execute once under the lock.
        match name.as_str() {
            "BLPOP" | "BRPOP" => self.dispatch_blocking_list(&name, &args[1..]),
            "XREAD" | "XREADGROUP" => self.dispatch_stream_read(&name, &args[1..]),
            _ => self.execute_plain(&name, &args[1..]),
        }
    }

    /// Executes one client command without ever parking: blocking commands
    /// that find no data return [`Dispatch::Blocked`] for the caller (the
    /// reactor) to hold as connection state and retry with
    /// [`Shared::poll_blocked`].
    pub fn dispatch_nonblocking(&self, args: &[SharedBuf]) -> Dispatch {
        let Some(cmd) = args.first() else {
            return Dispatch::Ready(Frame::error("empty command"));
        };
        let name = String::from_utf8_lossy(cmd).to_ascii_uppercase();
        match name.as_str() {
            "BLPOP" | "BRPOP" => self.start_blocking_list(&name, &args[1..]),
            "XREAD" | "XREADGROUP" => self.start_stream_read(&name, &args[1..]),
            _ => Dispatch::Ready(self.execute_plain(&name, &args[1..])),
        }
    }

    /// One non-blocking attempt at a parked command.
    ///
    /// Cheap when idle: if the write epoch hasn't moved and the deadline
    /// hasn't passed, returns `None` without touching the keyspace lock.
    pub fn poll_blocked(&self, blocked: &mut BlockedCmd) -> Option<Frame> {
        let epoch_now = self.write_epoch();
        let expired = blocked
            .deadline
            .map(|d| Instant::now() >= d)
            .unwrap_or(false);
        if epoch_now == blocked.epoch_seen && !expired {
            return None;
        }
        // Record the epoch *before* retrying: a write completing after this
        // load moves the epoch again, so missing it here still retries later.
        blocked.epoch_seen = epoch_now;
        match &blocked.kind {
            BlockedKind::List { keys, left } => {
                let frame = {
                    let mut db = self.db.lock();
                    commands::try_pop_any(&mut db, keys, *left)
                };
                if let Some(frame) = frame {
                    self.log_list_pop(*left, &frame);
                    self.mark_write(); // the pop mutated a list
                    return Some(frame);
                }
                expired.then_some(Frame::NullArray)
            }
            BlockedKind::Stream { is_group, parsed } => {
                let result = {
                    let mut db = self.db.lock();
                    commands::execute_stream_read(&mut db, self.now_ms(), parsed)
                };
                match result {
                    Ok(Some(frame)) => {
                        if *is_group {
                            self.mark_write(); // group cursor/PEL moved
                        }
                        Some(frame)
                    }
                    Ok(None) => expired.then_some(Frame::NullArray),
                    Err(f) => Some(f),
                }
            }
        }
    }

    /// Non-blocking command under the lock + AOF + wakeup pulse.
    fn execute_plain(&self, name: &str, args: &[SharedBuf]) -> Frame {
        let reply = {
            let mut db = self.db.lock();
            commands::execute(&mut db, self.now_ms(), name, args)
        };
        self.log_write(name, args, &reply);
        if commands::is_write(name) {
            self.mark_write();
        }
        reply
    }

    /// Persists a successful blocking pop as its non-blocking equivalent.
    fn log_list_pop(&self, left: bool, frame: &Frame) {
        if let Some(Frame::Bulk(k)) = frame.as_array().and_then(|a| a.first()) {
            let effect = if left { "LPOP" } else { "RPOP" };
            self.log_write(effect, std::slice::from_ref(k), frame);
        }
    }

    /// Validates BLPOP/BRPOP arguments into (keys, deadline, left).
    #[allow(clippy::type_complexity)]
    fn parse_blocking_list(
        name: &str,
        args: &[SharedBuf],
    ) -> Result<(Vec<SharedBuf>, Option<Instant>, bool), Frame> {
        if args.len() < 2 {
            return Err(Frame::error(format!(
                "wrong number of arguments for '{name}'"
            )));
        }
        let timeout = match parse_secs(args.last().expect("arity checked above")) {
            Some(t) => t,
            None => return Err(Frame::error("timeout is not a float or out of range")),
        };
        let keys = args[..args.len() - 1].to_vec();
        let deadline = (timeout > Duration::ZERO).then(|| Instant::now() + timeout);
        Ok((keys, deadline, name == "BLPOP"))
    }

    /// BLPOP/BRPOP, non-parking: one attempt, then `Blocked`.
    fn start_blocking_list(&self, name: &str, args: &[SharedBuf]) -> Dispatch {
        let (keys, deadline, left) = match Self::parse_blocking_list(name, args) {
            Ok(p) => p,
            Err(f) => return Dispatch::Ready(f),
        };
        // Read the epoch *before* the attempt: a concurrent push either
        // lands before the try (we find it) or bumps the epoch after this
        // load (poll_blocked sees the change). No window for a lost wakeup.
        let epoch_seen = self.write_epoch();
        let frame = {
            let mut db = self.db.lock();
            commands::try_pop_any(&mut db, &keys, left)
        };
        if let Some(frame) = frame {
            self.log_list_pop(left, &frame);
            self.mark_write();
            return Dispatch::Ready(frame);
        }
        Dispatch::Blocked(BlockedCmd {
            kind: BlockedKind::List { keys, left },
            deadline,
            epoch_seen,
        })
    }

    /// XREAD/XREADGROUP, non-parking: one attempt, then `Blocked` if the
    /// command asked to BLOCK.
    fn start_stream_read(&self, name: &str, args: &[SharedBuf]) -> Dispatch {
        let mut parsed = match commands::parse_stream_read(name, args) {
            Ok(p) => p,
            Err(f) => return Dispatch::Ready(f),
        };
        let deadline = match parsed.block {
            None => None,                   // non-blocking form
            Some(d) if d.is_zero() => None, // BLOCK 0 = wait forever
            Some(d) => Some(Instant::now() + d),
        };
        let epoch_seen = self.write_epoch();
        let result = {
            let mut db = self.db.lock();
            // `$` snapshots the stream's last id once, before any waiting.
            commands::resolve_stream_ids(&mut db, &mut parsed);
            commands::execute_stream_read(&mut db, self.now_ms(), &parsed)
        };
        match result {
            Ok(Some(frame)) => {
                if name == "XREADGROUP" {
                    self.mark_write();
                }
                Dispatch::Ready(frame)
            }
            Ok(None) => {
                if parsed.block.is_none() {
                    return Dispatch::Ready(Frame::NullArray);
                }
                Dispatch::Blocked(BlockedCmd {
                    kind: BlockedKind::Stream {
                        is_group: name == "XREADGROUP",
                        parsed,
                    },
                    deadline,
                    epoch_seen,
                })
            }
            Err(f) => Dispatch::Ready(f),
        }
    }

    /// BLPOP/BRPOP: retry the non-blocking pop until data arrives or the
    /// timeout elapses (timeout `0` = wait forever).
    fn dispatch_blocking_list(&self, name: &str, args: &[SharedBuf]) -> Frame {
        let (keys, deadline, left) = match Self::parse_blocking_list(name, args) {
            Ok(p) => p,
            Err(f) => return f,
        };
        let mut db = self.db.lock();
        loop {
            if let Some(frame) = commands::try_pop_any(&mut db, &keys, left) {
                drop(db);
                self.log_list_pop(left, &frame);
                self.mark_write(); // the pop mutated a list
                return frame;
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d || self.wakeup.wait_until(&mut db, d).timed_out() {
                        // Final attempt after timing out, then give up.
                        if let Some(frame) = commands::try_pop_any(&mut db, &keys, left) {
                            drop(db);
                            self.log_list_pop(left, &frame);
                            self.mark_write();
                            return frame;
                        }
                        return Frame::NullArray;
                    }
                }
                None => self.wakeup.wait(&mut db),
            }
        }
    }

    /// XREAD / XREADGROUP with optional BLOCK.
    fn dispatch_stream_read(&self, name: &str, args: &[SharedBuf]) -> Frame {
        let mut parsed = match commands::parse_stream_read(name, args) {
            Ok(p) => p,
            Err(f) => return f,
        };
        let deadline = parsed.block.map(|d| {
            if d.is_zero() {
                None // block forever
            } else {
                Some(Instant::now() + d)
            }
        });

        let mut db = self.db.lock();
        // `$` snapshots the stream's last id once, before any waiting.
        commands::resolve_stream_ids(&mut db, &mut parsed);
        loop {
            match commands::execute_stream_read(&mut db, self.now_ms(), &parsed) {
                Ok(Some(frame)) => {
                    // XREADGROUP mutates group state; wake idlers just in case.
                    drop(db);
                    if name == "XREADGROUP" {
                        self.mark_write();
                    }
                    return frame;
                }
                Ok(None) => match deadline {
                    None => return Frame::NullArray, // non-blocking, no data
                    Some(None) => self.wakeup.wait(&mut db),
                    Some(Some(d)) => {
                        if Instant::now() >= d || self.wakeup.wait_until(&mut db, d).timed_out() {
                            // One last look before reporting a timeout.
                            if let Ok(Some(frame)) =
                                commands::execute_stream_read(&mut db, self.now_ms(), &parsed)
                            {
                                return frame;
                            }
                            return Frame::NullArray;
                        }
                    }
                },
                Err(f) => return f,
            }
        }
    }
}

/// Parses Redis's float-seconds timeout ("0" = infinite → Duration::ZERO).
fn parse_secs(raw: &[u8]) -> Option<Duration> {
    let s = std::str::from_utf8(raw).ok()?;
    let secs: f64 = s.parse().ok()?;
    if secs < 0.0 || !secs.is_finite() {
        return None;
    }
    Some(Duration::from_secs_f64(secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cmd(shared: &Shared, parts: &[&str]) -> Frame {
        let args: Vec<SharedBuf> = parts
            .iter()
            .map(|p| SharedBuf::from(p.as_bytes()))
            .collect();
        shared.dispatch(&args)
    }

    fn cmd_nb(shared: &Shared, parts: &[&str]) -> Dispatch {
        let args: Vec<SharedBuf> = parts
            .iter()
            .map(|p| SharedBuf::from(p.as_bytes()))
            .collect();
        shared.dispatch_nonblocking(&args)
    }

    #[test]
    fn ping_set_get() {
        let s = Shared::new();
        assert_eq!(cmd(&s, &["PING"]), Frame::Simple("PONG".into()));
        assert_eq!(cmd(&s, &["SET", "k", "v"]), Frame::ok());
        assert_eq!(cmd(&s, &["GET", "k"]), Frame::bulk("v"));
        assert_eq!(cmd(&s, &["GET", "missing"]), Frame::Null);
    }

    #[test]
    fn empty_command_is_error() {
        let s = Shared::new();
        assert!(s.dispatch(&[]).is_error());
        assert!(matches!(
            s.dispatch_nonblocking(&[]),
            Dispatch::Ready(f) if f.is_error()
        ));
    }

    #[test]
    fn blpop_returns_immediately_when_data_exists() {
        let s = Shared::new();
        cmd(&s, &["RPUSH", "q", "a"]);
        let reply = cmd(&s, &["BLPOP", "q", "1"]);
        assert_eq!(
            reply,
            Frame::Array(vec![Frame::bulk("q"), Frame::bulk("a")])
        );
    }

    #[test]
    fn blpop_times_out_with_null_array() {
        let s = Shared::new();
        let start = Instant::now();
        assert_eq!(cmd(&s, &["BLPOP", "empty", "0.05"]), Frame::NullArray);
        assert!(start.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn blpop_wakes_on_concurrent_push() {
        let s = Arc::new(Shared::new());
        let s2 = s.clone();
        let waiter = std::thread::spawn(move || cmd(&s2, &["BLPOP", "q", "2"]));
        std::thread::sleep(Duration::from_millis(30));
        cmd(&s, &["LPUSH", "q", "x"]);
        let reply = waiter.join().unwrap();
        assert_eq!(
            reply,
            Frame::Array(vec![Frame::bulk("q"), Frame::bulk("x")])
        );
    }

    #[test]
    fn xread_block_wakes_on_xadd() {
        let s = Arc::new(Shared::new());
        cmd(&s, &["XADD", "st", "*", "f", "seed"]);
        let s2 = s.clone();
        let waiter =
            std::thread::spawn(move || cmd(&s2, &["XREAD", "BLOCK", "2000", "STREAMS", "st", "$"]));
        std::thread::sleep(Duration::from_millis(30));
        cmd(&s, &["XADD", "st", "*", "f", "fresh"]);
        let reply = waiter.join().unwrap();
        let text = format!("{reply:?}");
        assert!(
            text.contains("fresh"),
            "blocked XREAD must deliver the new entry: {text}"
        );
        assert!(
            !text.contains("seed"),
            "XREAD from $ must not replay history"
        );
    }

    #[test]
    fn parse_secs_accepts_fractions_rejects_garbage() {
        assert_eq!(parse_secs(b"0.5"), Some(Duration::from_millis(500)));
        assert_eq!(parse_secs(b"0"), Some(Duration::ZERO));
        assert_eq!(parse_secs(b"nope"), None);
        assert_eq!(parse_secs(b"-1"), None);
    }

    // ---- non-parking dispatch surface (reactor path) ----

    #[test]
    fn nonblocking_blpop_parks_and_polls() {
        let s = Shared::new();
        let Dispatch::Blocked(mut blocked) = cmd_nb(&s, &["BLPOP", "q", "0"]) else {
            panic!("empty queue must park");
        };
        assert_eq!(blocked.deadline(), None, "timeout 0 waits forever");
        // No data, no writes: polling is a cheap no-op.
        assert!(s.poll_blocked(&mut blocked).is_none());
        // A write moves the epoch; the next poll finds the value.
        cmd(&s, &["RPUSH", "q", "x"]);
        let frame = s.poll_blocked(&mut blocked).expect("data arrived");
        assert_eq!(
            frame,
            Frame::Array(vec![Frame::bulk("q"), Frame::bulk("x")])
        );
    }

    #[test]
    fn nonblocking_blpop_ready_when_data_exists() {
        let s = Shared::new();
        cmd(&s, &["RPUSH", "q", "a"]);
        let Dispatch::Ready(frame) = cmd_nb(&s, &["BLPOP", "q", "1"]) else {
            panic!("data present must not park");
        };
        assert_eq!(
            frame,
            Frame::Array(vec![Frame::bulk("q"), Frame::bulk("a")])
        );
    }

    #[test]
    fn nonblocking_blpop_deadline_expires() {
        let s = Shared::new();
        let Dispatch::Blocked(mut blocked) = cmd_nb(&s, &["BLPOP", "q", "0.02"]) else {
            panic!("must park");
        };
        assert!(blocked.deadline().is_some());
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(s.poll_blocked(&mut blocked), Some(Frame::NullArray));
    }

    #[test]
    fn nonblocking_xread_parks_until_xadd() {
        let s = Shared::new();
        cmd(&s, &["XADD", "st", "*", "f", "seed"]);
        let Dispatch::Blocked(mut blocked) =
            cmd_nb(&s, &["XREAD", "BLOCK", "0", "STREAMS", "st", "$"])
        else {
            panic!("XREAD BLOCK $ with no new data must park");
        };
        assert!(s.poll_blocked(&mut blocked).is_none());
        cmd(&s, &["XADD", "st", "*", "f", "fresh"]);
        let frame = s.poll_blocked(&mut blocked).expect("new entry must wake");
        let text = format!("{frame:?}");
        assert!(text.contains("fresh") && !text.contains("seed"));
    }

    #[test]
    fn nonblocking_xread_without_block_is_ready() {
        let s = Shared::new();
        let Dispatch::Ready(frame) = cmd_nb(&s, &["XREAD", "STREAMS", "missing", "0-0"]) else {
            panic!("non-BLOCK XREAD never parks");
        };
        assert_eq!(frame, Frame::NullArray);
    }

    #[test]
    fn epoch_moves_only_on_writes() {
        let s = Shared::new();
        let e0 = s.write_epoch();
        cmd(&s, &["GET", "k"]);
        assert_eq!(s.write_epoch(), e0, "reads leave the epoch alone");
        cmd(&s, &["SET", "k", "v"]);
        assert!(s.write_epoch() > e0, "writes move the epoch");
    }

    #[test]
    fn blocked_poll_consumes_at_most_once() {
        // Two parked BLPOPs, one push: exactly one wins, the other stays
        // parked (no duplicated delivery through the epoch path).
        let s = Shared::new();
        let Dispatch::Blocked(mut a) = cmd_nb(&s, &["BLPOP", "q", "0"]) else {
            panic!()
        };
        let Dispatch::Blocked(mut b) = cmd_nb(&s, &["BLPOP", "q", "0"]) else {
            panic!()
        };
        cmd(&s, &["RPUSH", "q", "only"]);
        let first = s.poll_blocked(&mut a);
        let second = s.poll_blocked(&mut b);
        assert!(first.is_some() && second.is_none());
    }
}
