//! The command engine: shared keyspace, dispatch, and blocking semantics.
//!
//! [`Shared`] is the server's heart: the keyspace behind a mutex plus a
//! condvar that write commands pulse so blocking reads (`BLPOP`, `XREAD
//! BLOCK`, `XREADGROUP ... BLOCK`) can wake without polling — the same
//! wait-for-data shape real Redis gives its blocked clients. Both the TCP
//! server and the in-process transport dispatch through [`Shared::dispatch`],
//! so every transport sees identical semantics.

use crate::aof::{Aof, FsyncPolicy};
use crate::commands;
use crate::resp::Frame;
use crate::store::Db;
use d4py_sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Shared server state: one keyspace + wakeup machinery.
pub struct Shared {
    db: Mutex<Db>,
    wakeup: Condvar,
    epoch: Instant,
    aof: Option<Aof>,
}

impl Default for Shared {
    fn default() -> Self {
        Self::new()
    }
}

impl Shared {
    /// Creates an empty server state.
    pub fn new() -> Self {
        Self {
            db: Mutex::new(Db::new()),
            wakeup: Condvar::new(),
            epoch: Instant::now(),
            aof: None,
        }
    }

    /// Creates server state persisted through an append-only file: the
    /// existing log at `path` is replayed into the keyspace, then every
    /// subsequent successful write command is appended.
    ///
    /// Scope: the explicit write-command subset (see
    /// [`commands::is_write`]) plus the effects of blocking pops.
    /// Consumer-group cursors/PELs are runtime-transient and not persisted
    /// — matching how the workflow mappings rebuild their groups per run.
    pub fn with_aof(
        path: impl AsRef<std::path::Path>,
        policy: FsyncPolicy,
    ) -> std::io::Result<Self> {
        let mut shared = Self::new();
        for args in Aof::load(&path)? {
            let Some(cmd) = args.first() else { continue };
            let name = String::from_utf8_lossy(cmd).to_ascii_uppercase();
            let mut db = shared.db.lock();
            let _ = commands::execute(&mut db, shared.now_ms(), &name, &args[1..]);
        }
        shared.aof = Some(Aof::open(path, policy)?);
        Ok(shared)
    }

    fn log_write(&self, name: &str, args: &[Vec<u8>], reply: &Frame) {
        if let Some(aof) = &self.aof {
            if commands::is_write(name) && !reply.is_error() {
                let mut entry = Vec::with_capacity(args.len());
                entry.push(name.as_bytes().to_vec());
                entry.extend(args.iter().cloned());
                let _ = aof.append(&entry);
            }
        }
    }

    /// Milliseconds since server start — the clock for auto stream ids.
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Runs `f` with the keyspace locked.
    pub fn with_db<T>(&self, f: impl FnOnce(&mut Db) -> T) -> T {
        f(&mut self.db.lock())
    }

    /// Executes one client command.
    pub fn dispatch(&self, args: &[Vec<u8>]) -> Frame {
        let Some(cmd) = args.first() else {
            return Frame::error("empty command");
        };
        let name = String::from_utf8_lossy(cmd).to_ascii_uppercase();

        // Blocking commands get the retry-until-deadline treatment; all
        // others execute once under the lock.
        match name.as_str() {
            "BLPOP" | "BRPOP" => self.dispatch_blocking_list(&name, &args[1..]),
            "XREAD" | "XREADGROUP" => self.dispatch_stream_read(&name, &args[1..]),
            _ => {
                let reply = {
                    let mut db = self.db.lock();
                    commands::execute(&mut db, self.now_ms(), &name, &args[1..])
                };
                self.log_write(&name, &args[1..], &reply);
                if commands::is_write(&name) {
                    self.wakeup.notify_all();
                }
                reply
            }
        }
    }

    /// BLPOP/BRPOP: retry the non-blocking pop until data arrives or the
    /// timeout elapses (timeout `0` = wait forever).
    fn dispatch_blocking_list(&self, name: &str, args: &[Vec<u8>]) -> Frame {
        if args.len() < 2 {
            return Frame::error(format!("wrong number of arguments for '{name}'"));
        }
        let timeout = match parse_secs(args.last().expect("arity checked above")) {
            Some(t) => t,
            None => return Frame::error("timeout is not a float or out of range"),
        };
        let keys = &args[..args.len() - 1];
        let deadline = (timeout > Duration::ZERO).then(|| Instant::now() + timeout);
        let left = name == "BLPOP";

        let mut db = self.db.lock();
        loop {
            if let Some(frame) = commands::try_pop_any(&mut db, keys, left) {
                drop(db);
                // Persist the pop's effect as its non-blocking equivalent.
                if let Some(crate::resp::Frame::Bulk(k)) = frame.as_array().and_then(|a| a.first())
                {
                    let effect = if left { "LPOP" } else { "RPOP" };
                    self.log_write(effect, std::slice::from_ref(k), &frame);
                }
                self.wakeup.notify_all(); // the pop mutated a list
                return frame;
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d || self.wakeup.wait_until(&mut db, d).timed_out() {
                        // Final attempt after timing out, then give up.
                        if let Some(frame) = commands::try_pop_any(&mut db, keys, left) {
                            drop(db);
                            self.wakeup.notify_all();
                            return frame;
                        }
                        return Frame::NullArray;
                    }
                }
                None => self.wakeup.wait(&mut db),
            }
        }
    }

    /// XREAD / XREADGROUP with optional BLOCK.
    fn dispatch_stream_read(&self, name: &str, args: &[Vec<u8>]) -> Frame {
        let mut parsed = match commands::parse_stream_read(name, args) {
            Ok(p) => p,
            Err(f) => return f,
        };
        let deadline = parsed.block.map(|d| {
            if d.is_zero() {
                None // block forever
            } else {
                Some(Instant::now() + d)
            }
        });

        let mut db = self.db.lock();
        // `$` snapshots the stream's last id once, before any waiting.
        commands::resolve_stream_ids(&mut db, &mut parsed);
        loop {
            match commands::execute_stream_read(&mut db, self.now_ms(), &parsed) {
                Ok(Some(frame)) => {
                    // XREADGROUP mutates group state; wake idlers just in case.
                    drop(db);
                    if name == "XREADGROUP" {
                        self.wakeup.notify_all();
                    }
                    return frame;
                }
                Ok(None) => match deadline {
                    None => return Frame::NullArray, // non-blocking, no data
                    Some(None) => self.wakeup.wait(&mut db),
                    Some(Some(d)) => {
                        if Instant::now() >= d || self.wakeup.wait_until(&mut db, d).timed_out() {
                            // One last look before reporting a timeout.
                            if let Ok(Some(frame)) =
                                commands::execute_stream_read(&mut db, self.now_ms(), &parsed)
                            {
                                return frame;
                            }
                            return Frame::NullArray;
                        }
                    }
                },
                Err(f) => return f,
            }
        }
    }
}

/// Parses Redis's float-seconds timeout ("0" = infinite → Duration::ZERO).
fn parse_secs(raw: &[u8]) -> Option<Duration> {
    let s = std::str::from_utf8(raw).ok()?;
    let secs: f64 = s.parse().ok()?;
    if secs < 0.0 || !secs.is_finite() {
        return None;
    }
    Some(Duration::from_secs_f64(secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cmd(shared: &Shared, parts: &[&str]) -> Frame {
        let args: Vec<Vec<u8>> = parts.iter().map(|p| p.as_bytes().to_vec()).collect();
        shared.dispatch(&args)
    }

    #[test]
    fn ping_set_get() {
        let s = Shared::new();
        assert_eq!(cmd(&s, &["PING"]), Frame::Simple("PONG".into()));
        assert_eq!(cmd(&s, &["SET", "k", "v"]), Frame::ok());
        assert_eq!(cmd(&s, &["GET", "k"]), Frame::bulk("v"));
        assert_eq!(cmd(&s, &["GET", "missing"]), Frame::Null);
    }

    #[test]
    fn empty_command_is_error() {
        let s = Shared::new();
        assert!(s.dispatch(&[]).is_error());
    }

    #[test]
    fn blpop_returns_immediately_when_data_exists() {
        let s = Shared::new();
        cmd(&s, &["RPUSH", "q", "a"]);
        let reply = cmd(&s, &["BLPOP", "q", "1"]);
        assert_eq!(
            reply,
            Frame::Array(vec![Frame::bulk("q"), Frame::bulk("a")])
        );
    }

    #[test]
    fn blpop_times_out_with_null_array() {
        let s = Shared::new();
        let start = Instant::now();
        assert_eq!(cmd(&s, &["BLPOP", "empty", "0.05"]), Frame::NullArray);
        assert!(start.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn blpop_wakes_on_concurrent_push() {
        let s = Arc::new(Shared::new());
        let s2 = s.clone();
        let waiter = std::thread::spawn(move || cmd(&s2, &["BLPOP", "q", "2"]));
        std::thread::sleep(Duration::from_millis(30));
        cmd(&s, &["LPUSH", "q", "x"]);
        let reply = waiter.join().unwrap();
        assert_eq!(
            reply,
            Frame::Array(vec![Frame::bulk("q"), Frame::bulk("x")])
        );
    }

    #[test]
    fn xread_block_wakes_on_xadd() {
        let s = Arc::new(Shared::new());
        cmd(&s, &["XADD", "st", "*", "f", "seed"]);
        let s2 = s.clone();
        let waiter =
            std::thread::spawn(move || cmd(&s2, &["XREAD", "BLOCK", "2000", "STREAMS", "st", "$"]));
        std::thread::sleep(Duration::from_millis(30));
        cmd(&s, &["XADD", "st", "*", "f", "fresh"]);
        let reply = waiter.join().unwrap();
        let text = format!("{reply:?}");
        assert!(
            text.contains("fresh"),
            "blocked XREAD must deliver the new entry: {text}"
        );
        assert!(
            !text.contains("seed"),
            "XREAD from $ must not replay history"
        );
    }

    #[test]
    fn parse_secs_accepts_fractions_rejects_garbage() {
        assert_eq!(parse_secs(b"0.5"), Some(Duration::from_millis(500)));
        assert_eq!(parse_secs(b"0"), Some(Duration::ZERO));
        assert_eq!(parse_secs(b"nope"), None);
        assert_eq!(parse_secs(b"-1"), None);
    }
}
