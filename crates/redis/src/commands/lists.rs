//! List commands, including the non-blocking core of BLPOP/BRPOP.

use super::{now, parse_int, wrong_args, wrong_type};
use crate::resp::Frame;
use crate::store::{Db, RValue};
use d4py_sync::SharedBuf;
use std::collections::VecDeque;

pub(crate) fn push(db: &mut Db, args: &[SharedBuf], left: bool) -> Frame {
    if args.len() < 2 {
        return wrong_args(if left { "LPUSH" } else { "RPUSH" });
    }
    match db.get_or_create(&args[0], now(), || RValue::List(VecDeque::new())) {
        RValue::List(list) => {
            for v in &args[1..] {
                if left {
                    list.push_front(v.to_vec());
                } else {
                    list.push_back(v.to_vec());
                }
            }
            Frame::Integer(list.len() as i64)
        }
        _ => wrong_type(),
    }
}

pub(crate) fn pop(db: &mut Db, args: &[SharedBuf], left: bool) -> Frame {
    if args.len() != 1 {
        return wrong_args(if left { "LPOP" } else { "RPOP" });
    }
    let reply = match db.get_mut(&args[0], now()) {
        None => return Frame::Null,
        Some(RValue::List(list)) => {
            let popped = if left {
                list.pop_front()
            } else {
                list.pop_back()
            };
            match popped {
                Some(v) => {
                    let emptied = list.is_empty();
                    (Frame::Bulk(v.into()), emptied)
                }
                None => (Frame::Null, true),
            }
        }
        Some(_) => return wrong_type(),
    };
    if reply.1 {
        db.del(&args[0], now()); // Redis removes empty lists
    }
    reply.0
}

pub(crate) fn llen(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("LLEN");
    }
    match db.get(&args[0], now()) {
        None => Frame::Integer(0),
        Some(RValue::List(list)) => Frame::Integer(list.len() as i64),
        Some(_) => wrong_type(),
    }
}

pub(crate) fn lrange(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 3 {
        return wrong_args("LRANGE");
    }
    let (Some(start), Some(stop)) = (parse_int(&args[1]), parse_int(&args[2])) else {
        return Frame::error("value is not an integer or out of range");
    };
    match db.get(&args[0], now()) {
        None => Frame::Array(vec![]),
        Some(RValue::List(list)) => {
            let len = list.len() as i64;
            let norm = |i: i64| if i < 0 { (len + i).max(0) } else { i.min(len) };
            let (a, b) = (norm(start), norm(stop));
            if a > b || a >= len {
                return Frame::Array(vec![]);
            }
            Frame::Array(
                list.iter()
                    .skip(a as usize)
                    .take((b - a + 1) as usize)
                    .map(|v| Frame::bulk(v.clone()))
                    .collect(),
            )
        }
        Some(_) => wrong_type(),
    }
}

/// The non-blocking core of BLPOP/BRPOP: tries each key in order; on
/// success replies `[key, value]`.
pub fn try_pop_any(db: &mut Db, keys: &[SharedBuf], left: bool) -> Option<Frame> {
    for key in keys {
        let popped = match db.get_mut(key, now()) {
            Some(RValue::List(list)) => {
                let v = if left {
                    list.pop_front()
                } else {
                    list.pop_back()
                };
                v.map(|v| (v, list.is_empty()))
            }
            _ => None,
        };
        if let Some((value, emptied)) = popped {
            if emptied {
                db.del(key, now());
            }
            return Some(Frame::Array(vec![
                Frame::Bulk(key.clone()),
                Frame::Bulk(value.into()),
            ]));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(parts: &[&str]) -> Vec<SharedBuf> {
        parts
            .iter()
            .map(|p| SharedBuf::from(p.as_bytes()))
            .collect()
    }

    #[test]
    fn push_pop_both_ends() {
        let mut db = Db::new();
        assert_eq!(
            push(&mut db, &f(&["q", "a", "b"]), false),
            Frame::Integer(2)
        ); // RPUSH
        assert_eq!(push(&mut db, &f(&["q", "z"]), true), Frame::Integer(3)); // LPUSH
        assert_eq!(pop(&mut db, &f(&["q"]), true), Frame::bulk("z")); // LPOP
        assert_eq!(pop(&mut db, &f(&["q"]), false), Frame::bulk("b")); // RPOP
        assert_eq!(llen(&mut db, &f(&["q"])), Frame::Integer(1));
    }

    #[test]
    fn pop_on_missing_is_null() {
        let mut db = Db::new();
        assert_eq!(pop(&mut db, &f(&["nope"]), true), Frame::Null);
    }

    #[test]
    fn empty_list_is_removed() {
        let mut db = Db::new();
        push(&mut db, &f(&["q", "only"]), false);
        pop(&mut db, &f(&["q"]), true);
        assert!(db.get(b"q", now()).is_none(), "empty list key must vanish");
    }

    #[test]
    fn lrange_window_and_negatives() {
        let mut db = Db::new();
        push(&mut db, &f(&["q", "a", "b", "c", "d"]), false);
        assert_eq!(
            lrange(&mut db, &f(&["q", "1", "2"])),
            Frame::Array(vec![Frame::bulk("b"), Frame::bulk("c")])
        );
        assert_eq!(
            lrange(&mut db, &f(&["q", "0", "-1"])),
            Frame::Array(vec![
                Frame::bulk("a"),
                Frame::bulk("b"),
                Frame::bulk("c"),
                Frame::bulk("d")
            ])
        );
        assert_eq!(
            lrange(&mut db, &f(&["q", "-2", "-1"])),
            Frame::Array(vec![Frame::bulk("c"), Frame::bulk("d")])
        );
        assert_eq!(lrange(&mut db, &f(&["q", "5", "9"])), Frame::Array(vec![]));
        assert_eq!(lrange(&mut db, &f(&["q", "3", "1"])), Frame::Array(vec![]));
    }

    #[test]
    fn try_pop_any_scans_keys_in_order() {
        let mut db = Db::new();
        push(&mut db, &f(&["q2", "x"]), false);
        let reply = try_pop_any(&mut db, &f(&["q1", "q2"]), true).unwrap();
        assert_eq!(
            reply,
            Frame::Array(vec![Frame::bulk("q2"), Frame::bulk("x")])
        );
        assert!(try_pop_any(&mut db, &f(&["q1", "q2"]), true).is_none());
    }

    #[test]
    fn wrong_type_detected() {
        let mut db = Db::new();
        db.set(b"s".to_vec(), RValue::Str(b"v".to_vec()));
        assert!(push(&mut db, &f(&["s", "x"]), true).is_error());
        assert!(pop(&mut db, &f(&["s"]), true).is_error());
        assert!(llen(&mut db, &f(&["s"])).is_error());
        assert!(lrange(&mut db, &f(&["s", "0", "1"])).is_error());
        assert!(try_pop_any(&mut db, &f(&["s"]), true).is_none());
    }
}
