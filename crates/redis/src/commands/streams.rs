//! Stream commands: XADD/XRANGE/XLEN/XDEL/XTRIM, consumer groups
//! (XGROUP/XACK/XPENDING/XINFO), and the parse/execute halves of
//! XREAD/XREADGROUP that [`crate::engine`] drives for blocking reads.

use super::{bad_id, ms, now, parse_uint, parse_xadd_id, stream_of, wrong_args};
use crate::resp::Frame;
use crate::store::stream::{Stream, StreamError, StreamId};
use crate::store::{Db, RValue};
use d4py_sync::SharedBuf;
use std::time::Duration;

fn no_group(key: &[u8], group: &str) -> Frame {
    Frame::Error(format!(
        "NOGROUP No such consumer group '{group}' for key name '{}'",
        String::from_utf8_lossy(key)
    ))
}

fn entry_frame(id: StreamId, body: &[(SharedBuf, SharedBuf)]) -> Frame {
    Frame::Array(vec![
        Frame::bulk(id.to_string()),
        Frame::Array(
            body.iter()
                .flat_map(|(f, v)| [Frame::Bulk(f.clone()), Frame::Bulk(v.clone())])
                .collect(),
        ),
    ])
}

pub(crate) fn xadd(db: &mut Db, now_ms: u64, args: &[SharedBuf]) -> Frame {
    if args.len() < 4 {
        return wrong_args("XADD");
    }
    let key = &args[0];
    let mut i = 1;
    let mut maxlen: Option<usize> = None;
    if args[i].eq_ignore_ascii_case(b"MAXLEN") {
        // Optional "~" approximation marker is accepted and ignored.
        i += 1;
        if args.get(i).map(|a| a.as_slice()) == Some(b"~") {
            i += 1;
        }
        let Some(n) = args.get(i).and_then(|a| parse_uint(a)) else {
            return Frame::error("value is not an integer or out of range");
        };
        maxlen = Some(n as usize);
        i += 1;
    }
    let id = match parse_xadd_id(&args[i]) {
        Ok(id) => id,
        Err(f) => return f,
    };
    i += 1;
    let rest = &args[i..];
    if rest.is_empty() || !rest.len().is_multiple_of(2) {
        return wrong_args("XADD");
    }
    // Zero-copy: each field/value aliases the network read buffer.
    let body: Vec<(SharedBuf, SharedBuf)> = rest
        .chunks(2)
        .map(|p| (p[0].clone(), p[1].clone()))
        .collect();

    let value = db.get_or_create(key, now(), || RValue::Stream(Stream::new()));
    let RValue::Stream(stream) = value else {
        return super::wrong_type();
    };
    match stream.add(id, now_ms, body) {
        Ok(assigned) => {
            if let Some(n) = maxlen {
                stream.trim_maxlen(n);
            }
            Frame::bulk(assigned.to_string())
        }
        Err(StreamError::IdTooSmall) => Frame::Error(
            "ERR The ID specified in XADD is equal or smaller than the target stream top item"
                .into(),
        ),
        Err(_) => Frame::error("XADD failed"),
    }
}

pub(crate) fn xlen(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("XLEN");
    }
    match stream_of(db, &args[0]) {
        Err(f) => f,
        Ok(None) => Frame::Integer(0),
        Ok(Some(s)) => Frame::Integer(s.len() as i64),
    }
}

fn parse_range_bound(raw: &[u8], default_seq: u64) -> Option<StreamId> {
    match raw {
        b"-" => Some(StreamId::MIN),
        b"+" => Some(StreamId::MAX),
        other => StreamId::parse(std::str::from_utf8(other).ok()?, default_seq),
    }
}

pub(crate) fn xrange(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 3 && args.len() != 5 {
        return wrong_args("XRANGE");
    }
    let (Some(start), Some(end)) = (
        parse_range_bound(&args[1], 0),
        parse_range_bound(&args[2], u64::MAX),
    ) else {
        return bad_id();
    };
    let count = if args.len() == 5 {
        if !args[3].eq_ignore_ascii_case(b"COUNT") {
            return Frame::error("syntax error");
        }
        match parse_uint(&args[4]) {
            Some(n) => Some(n as usize),
            None => return Frame::error("value is not an integer or out of range"),
        }
    } else {
        None
    };
    match stream_of(db, &args[0]) {
        Err(f) => f,
        Ok(None) => Frame::Array(vec![]),
        Ok(Some(s)) => Frame::Array(
            s.range(start, end, count)
                .iter()
                .map(|(id, body)| entry_frame(*id, body))
                .collect(),
        ),
    }
}

pub(crate) fn xdel(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() < 2 {
        return wrong_args("XDEL");
    }
    let mut ids = Vec::new();
    for raw in &args[1..] {
        match std::str::from_utf8(raw)
            .ok()
            .and_then(|s| StreamId::parse(s, 0))
        {
            Some(id) => ids.push(id),
            None => return bad_id(),
        }
    }
    match stream_of(db, &args[0]) {
        Err(f) => f,
        Ok(None) => Frame::Integer(0),
        Ok(Some(s)) => Frame::Integer(s.delete(&ids) as i64),
    }
}

pub(crate) fn xtrim(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() < 3 || !args[1].eq_ignore_ascii_case(b"MAXLEN") {
        return wrong_args("XTRIM");
    }
    let mut i = 2;
    if args.get(i).map(|a| a.as_slice()) == Some(b"~") {
        i += 1;
    }
    let Some(n) = args.get(i).and_then(|a| parse_uint(a)) else {
        return Frame::error("value is not an integer or out of range");
    };
    match stream_of(db, &args[0]) {
        Err(f) => f,
        Ok(None) => Frame::Integer(0),
        Ok(Some(s)) => Frame::Integer(s.trim_maxlen(n as usize) as i64),
    }
}

pub(crate) fn xack(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() < 3 {
        return wrong_args("XACK");
    }
    let group = String::from_utf8_lossy(&args[1]).into_owned();
    let mut ids = Vec::new();
    for raw in &args[2..] {
        match std::str::from_utf8(raw)
            .ok()
            .and_then(|s| StreamId::parse(s, 0))
        {
            Some(id) => ids.push(id),
            None => return bad_id(),
        }
    }
    match stream_of(db, &args[0]) {
        Err(f) => f,
        Ok(None) => Frame::Integer(0),
        Ok(Some(s)) => match s.ack(&group, &ids, now()) {
            Ok(n) => Frame::Integer(n as i64),
            Err(StreamError::NoGroup) => Frame::Integer(0),
            Err(_) => Frame::error("XACK failed"),
        },
    }
}

pub(crate) fn xgroup(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() < 3 {
        return wrong_args("XGROUP");
    }
    let sub = args[0].to_ascii_uppercase();
    match sub.as_slice() {
        b"CREATE" => {
            if args.len() < 4 {
                return wrong_args("XGROUP");
            }
            let (key, group, start_raw) = (&args[1], &args[2], &args[3]);
            let mkstream = args
                .get(4)
                .map(|a| a.eq_ignore_ascii_case(b"MKSTREAM"))
                .unwrap_or(false);
            if stream_of(db, key).ok().flatten().is_none() {
                if !mkstream {
                    return Frame::Error(
                        "ERR The XGROUP subcommand requires the key to exist. Note that for \
                         CREATE you may want to use the MKSTREAM option to create an empty stream \
                         automatically."
                            .into(),
                    );
                }
                db.set(key.to_vec(), RValue::Stream(Stream::new()));
            }
            let RValue::Stream(stream) = db
                .get_mut(key, now())
                .expect("stream was created or found above")
            else {
                return super::wrong_type();
            };
            let start = if start_raw.as_slice() == b"$" {
                stream.last_id()
            } else {
                match std::str::from_utf8(start_raw)
                    .ok()
                    .and_then(|s| StreamId::parse(s, 0))
                {
                    Some(id) => id,
                    None => return bad_id(),
                }
            };
            let group = String::from_utf8_lossy(group).into_owned();
            match stream.create_group(&group, start) {
                Ok(()) => Frame::ok(),
                Err(StreamError::GroupExists) => {
                    Frame::Error("BUSYGROUP Consumer Group name already exists".into())
                }
                Err(_) => Frame::error("XGROUP CREATE failed"),
            }
        }
        b"DESTROY" => {
            let group = String::from_utf8_lossy(&args[2]).into_owned();
            match stream_of(db, &args[1]) {
                Err(f) => f,
                Ok(None) => Frame::Integer(0),
                Ok(Some(s)) => Frame::Integer(i64::from(s.destroy_group(&group))),
            }
        }
        other => Frame::error(format!(
            "unknown XGROUP subcommand '{}'",
            String::from_utf8_lossy(other)
        )),
    }
}

pub(crate) fn xpending(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 2 {
        return wrong_args("XPENDING");
    }
    let group = String::from_utf8_lossy(&args[1]).into_owned();
    match stream_of(db, &args[0]) {
        Err(f) => f,
        Ok(None) => no_group(&args[0], &group),
        Ok(Some(s)) => match s.group(&group) {
            None => no_group(&args[0], &group),
            Some(g) => {
                if g.pending.is_empty() {
                    return Frame::Array(vec![
                        Frame::Integer(0),
                        Frame::Null,
                        Frame::Null,
                        Frame::NullArray,
                    ]);
                }
                let min = *g.pending.keys().next().expect("pending is non-empty");
                let max = *g.pending.keys().next_back().expect("pending is non-empty");
                let mut per_consumer: std::collections::BTreeMap<&str, u64> = Default::default();
                for p in g.pending.values() {
                    *per_consumer.entry(p.consumer.as_str()).or_insert(0) += 1;
                }
                Frame::Array(vec![
                    Frame::Integer(g.pending.len() as i64),
                    Frame::bulk(min.to_string()),
                    Frame::bulk(max.to_string()),
                    Frame::Array(
                        per_consumer
                            .into_iter()
                            .map(|(c, n)| {
                                Frame::Array(vec![Frame::bulk(c), Frame::bulk(n.to_string())])
                            })
                            .collect(),
                    ),
                ])
            }
        },
    }
}

pub(crate) fn xinfo(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() < 2 {
        return wrong_args("XINFO");
    }
    let sub = args[0].to_ascii_uppercase();
    match sub.as_slice() {
        b"STREAM" => match stream_of(db, &args[1]) {
            Err(f) => f,
            Ok(None) => Frame::error("no such key"),
            Ok(Some(s)) => Frame::Array(vec![
                Frame::bulk("length"),
                Frame::Integer(s.len() as i64),
                Frame::bulk("last-generated-id"),
                Frame::bulk(s.last_id().to_string()),
                Frame::bulk("groups"),
                Frame::Integer(s.group_names().len() as i64),
            ]),
        },
        b"GROUPS" => match stream_of(db, &args[1]) {
            Err(f) => f,
            Ok(None) => Frame::error("no such key"),
            Ok(Some(s)) => Frame::Array(
                s.group_names()
                    .into_iter()
                    .map(|name| {
                        let g = s.group(&name).expect("name came from group_names()");
                        Frame::Array(vec![
                            Frame::bulk("name"),
                            Frame::bulk(name.clone()),
                            Frame::bulk("consumers"),
                            Frame::Integer(g.consumers.len() as i64),
                            Frame::bulk("pending"),
                            Frame::Integer(g.pending.len() as i64),
                            Frame::bulk("last-delivered-id"),
                            Frame::bulk(g.last_delivered.to_string()),
                        ])
                    })
                    .collect(),
            ),
        },
        b"CONSUMERS" => {
            if args.len() != 3 {
                return wrong_args("XINFO");
            }
            let group = String::from_utf8_lossy(&args[2]).into_owned();
            match stream_of(db, &args[1]) {
                Err(f) => f,
                Ok(None) => no_group(&args[1], &group),
                Ok(Some(s)) => match s.consumer_info(&group, now()) {
                    Err(_) => no_group(&args[1], &group),
                    Ok(rows) => Frame::Array(
                        rows.into_iter()
                            .map(|(name, pending, idle)| {
                                Frame::Array(vec![
                                    Frame::bulk("name"),
                                    Frame::bulk(name),
                                    Frame::bulk("pending"),
                                    Frame::Integer(pending as i64),
                                    Frame::bulk("idle"),
                                    Frame::Integer(ms(idle)),
                                ])
                            })
                            .collect(),
                    ),
                },
            }
        }
        other => Frame::error(format!(
            "unknown XINFO subcommand '{}'",
            String::from_utf8_lossy(other)
        )),
    }
}

/// `XAUTOCLAIM key group consumer min-idle-time start [COUNT n]`
///
/// Scans the group's PEL for entries idle at least `min-idle-time`
/// milliseconds and transfers them to `consumer` (Redis 6.2 semantics,
/// 2-element reply form: `[next-cursor, entries]`). `start` is accepted for
/// wire compatibility; this implementation always scans from the beginning,
/// so the returned cursor is `0-0`.
pub(crate) fn xautoclaim(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() < 5 {
        return wrong_args("XAUTOCLAIM");
    }
    let group = String::from_utf8_lossy(&args[1]).into_owned();
    let consumer = String::from_utf8_lossy(&args[2]).into_owned();
    let Some(min_idle_ms) = parse_uint(&args[3]) else {
        return Frame::error("Invalid min-idle-time argument for XAUTOCLAIM");
    };
    // args[4] = start cursor (accepted, unused).
    let count = if args.len() >= 7 && args[5].eq_ignore_ascii_case(b"COUNT") {
        match parse_uint(&args[6]) {
            Some(n) => n as usize,
            None => return Frame::error("value is not an integer or out of range"),
        }
    } else {
        100
    };
    match stream_of(db, &args[0]) {
        Err(f) => f,
        Ok(None) => no_group(&args[0], &group),
        Ok(Some(s)) => match s.claim_idle(
            &group,
            &consumer,
            Duration::from_millis(min_idle_ms),
            count,
            now(),
        ) {
            Err(StreamError::NoGroup) => no_group(&args[0], &group),
            Err(_) => Frame::error("XAUTOCLAIM failed"),
            Ok(claimed) => Frame::Array(vec![
                Frame::bulk("0-0"),
                Frame::Array(
                    claimed
                        .iter()
                        .map(|(id, body)| entry_frame(*id, body))
                        .collect(),
                ),
            ]),
        },
    }
}

// ---- XREAD / XREADGROUP ----

/// Which entries a stream read starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdSpec {
    /// Entries strictly after this id.
    After(StreamId),
    /// `$` — entries after the stream's current last id (resolve once).
    Last,
    /// `>` — new entries for this consumer group.
    New,
}

/// A parsed XREAD / XREADGROUP command.
#[derive(Debug, Clone)]
pub struct StreamReadCmd {
    /// `Some((group, consumer))` for XREADGROUP.
    pub group: Option<(String, String)>,
    /// COUNT limit.
    pub count: Option<usize>,
    /// BLOCK timeout (Duration::ZERO = forever); `None` = non-blocking.
    pub block: Option<Duration>,
    /// NOACK flag (XREADGROUP only).
    pub noack: bool,
    /// Stream keys, parallel to `ids`.
    pub keys: Vec<SharedBuf>,
    /// Start spec per key.
    pub ids: Vec<IdSpec>,
}

/// Parses `XREAD [COUNT n] [BLOCK ms] STREAMS key... id...` or
/// `XREADGROUP GROUP g c [COUNT n] [BLOCK ms] [NOACK] STREAMS key... id...`.
pub fn parse_stream_read(name: &str, args: &[SharedBuf]) -> Result<StreamReadCmd, Frame> {
    let mut cmd = StreamReadCmd {
        group: None,
        count: None,
        block: None,
        noack: false,
        keys: vec![],
        ids: vec![],
    };
    let mut i = 0;
    if name == "XREADGROUP" {
        if args.len() < 3 || !args[0].eq_ignore_ascii_case(b"GROUP") {
            return Err(Frame::error(
                "syntax error: expected GROUP <group> <consumer>",
            ));
        }
        cmd.group = Some((
            String::from_utf8_lossy(&args[1]).into_owned(),
            String::from_utf8_lossy(&args[2]).into_owned(),
        ));
        i = 3;
    }
    while i < args.len() {
        let word = args[i].to_ascii_uppercase();
        match word.as_slice() {
            b"COUNT" => {
                let n = args
                    .get(i + 1)
                    .and_then(|a| parse_uint(a))
                    .ok_or_else(|| Frame::error("value is not an integer or out of range"))?;
                cmd.count = Some(n as usize);
                i += 2;
            }
            b"BLOCK" => {
                let msec = args
                    .get(i + 1)
                    .and_then(|a| parse_uint(a))
                    .ok_or_else(|| Frame::error("timeout is not an integer or out of range"))?;
                cmd.block = Some(Duration::from_millis(msec));
                i += 2;
            }
            b"NOACK" => {
                cmd.noack = true;
                i += 1;
            }
            b"STREAMS" => {
                let rest = &args[i + 1..];
                if rest.is_empty() || !rest.len().is_multiple_of(2) {
                    return Err(Frame::error(
                        "Unbalanced XREAD list of streams: for each stream key an ID or '$' must \
                         be specified",
                    ));
                }
                let half = rest.len() / 2;
                for key in &rest[..half] {
                    cmd.keys.push(key.clone());
                }
                for raw in &rest[half..] {
                    let spec = match raw.as_slice() {
                        b"$" => IdSpec::Last,
                        b">" => IdSpec::New,
                        other => IdSpec::After(
                            std::str::from_utf8(other)
                                .ok()
                                .and_then(|s| StreamId::parse(s, 0))
                                .ok_or_else(bad_id)?,
                        ),
                    };
                    cmd.ids.push(spec);
                }
                i = args.len();
            }
            _ => return Err(Frame::error("syntax error")),
        }
    }
    if cmd.keys.is_empty() {
        return Err(Frame::error("syntax error: missing STREAMS"));
    }
    if cmd.group.is_some() && cmd.ids.contains(&IdSpec::Last) {
        return Err(Frame::error(
            "The $ ID is meaningless in the context of XREADGROUP",
        ));
    }
    if cmd.group.is_none() && cmd.ids.contains(&IdSpec::New) {
        return Err(Frame::error(
            "The > ID can be specified only when calling XREADGROUP",
        ));
    }
    Ok(cmd)
}

/// Resolves `$` specs to concrete ids (a snapshot of each stream's last id).
/// Call once before entering a blocking retry loop.
pub fn resolve_stream_ids(db: &mut Db, cmd: &mut StreamReadCmd) {
    for (key, spec) in cmd.keys.iter().zip(cmd.ids.iter_mut()) {
        if *spec == IdSpec::Last {
            let last = match stream_of(db, key) {
                Ok(Some(s)) => s.last_id(),
                _ => StreamId::MIN,
            };
            *spec = IdSpec::After(last);
        }
    }
}

/// One non-blocking attempt at a parsed XREAD/XREADGROUP.
///
/// `Ok(Some(frame))` — data delivered; `Ok(None)` — nothing available (the
/// engine may block and retry); `Err(frame)` — protocol error.
pub fn execute_stream_read(
    db: &mut Db,
    _now_ms: u64,
    cmd: &StreamReadCmd,
) -> Result<Option<Frame>, Frame> {
    let mut per_stream = Vec::new();
    for (key, spec) in cmd.keys.iter().zip(cmd.ids.iter()) {
        let entries = match &cmd.group {
            None => match stream_of(db, key)? {
                None => vec![],
                Some(s) => match spec {
                    IdSpec::After(id) => s.read_after(*id, cmd.count),
                    _ => vec![],
                },
            },
            Some((group, consumer)) => {
                let Some(s) = stream_of(db, key)? else {
                    return Err(no_group(key, group));
                };
                match spec {
                    IdSpec::New => {
                        match s.read_group_new(group, consumer, cmd.count, cmd.noack, now()) {
                            Ok(entries) => entries,
                            Err(StreamError::NoGroup) => return Err(no_group(key, group)),
                            Err(_) => return Err(Frame::error("XREADGROUP failed")),
                        }
                    }
                    IdSpec::After(id) => {
                        // History replay: this consumer's PEL after `id`.
                        let Some(g) = s.group(group) else {
                            return Err(no_group(key, group));
                        };
                        let ids: Vec<StreamId> = g
                            .pending
                            .range(id.next()..)
                            .filter(|(_, p)| &p.consumer == consumer)
                            .map(|(id, _)| *id)
                            .collect();
                        let mut entries = Vec::new();
                        for id in ids {
                            for (eid, body) in s.range(id, id, Some(1)) {
                                entries.push((eid, body));
                            }
                        }
                        if let Some(n) = cmd.count {
                            entries.truncate(n);
                        }
                        // Replay always "succeeds" (possibly empty) without
                        // blocking, matching Redis.
                        return Ok(Some(Frame::Array(vec![Frame::Array(vec![
                            Frame::Bulk(key.clone()),
                            Frame::Array(
                                entries
                                    .iter()
                                    .map(|(id, body)| entry_frame(*id, body))
                                    .collect(),
                            ),
                        ])])));
                    }
                    IdSpec::Last => vec![],
                }
            }
        };
        if !entries.is_empty() {
            per_stream.push((key.clone(), entries));
        }
    }
    if per_stream.is_empty() {
        return Ok(None);
    }
    Ok(Some(Frame::Array(
        per_stream
            .into_iter()
            .map(|(key, entries)| {
                Frame::Array(vec![
                    Frame::Bulk(key),
                    Frame::Array(
                        entries
                            .iter()
                            .map(|(id, body)| entry_frame(*id, body))
                            .collect(),
                    ),
                ])
            })
            .collect(),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(parts: &[&str]) -> Vec<SharedBuf> {
        parts
            .iter()
            .map(|p| SharedBuf::from(p.as_bytes()))
            .collect()
    }

    fn add(db: &mut Db, key: &str, now_ms: u64, val: &str) -> String {
        let reply = xadd(db, now_ms, &f(&[key, "*", "data", val]));
        reply.as_text().unwrap()
    }

    #[test]
    fn xadd_xlen_xrange() {
        let mut db = Db::new();
        let id1 = add(&mut db, "s", 10, "a");
        let id2 = add(&mut db, "s", 11, "b");
        assert_eq!(id1, "10-0");
        assert_eq!(id2, "11-0");
        assert_eq!(xlen(&mut db, &f(&["s"])), Frame::Integer(2));
        let range = xrange(&mut db, &f(&["s", "-", "+"]));
        assert_eq!(range.as_array().unwrap().len(), 2);
        let limited = xrange(&mut db, &f(&["s", "-", "+", "COUNT", "1"]));
        assert_eq!(limited.as_array().unwrap().len(), 1);
    }

    #[test]
    fn xadd_explicit_id_rules() {
        let mut db = Db::new();
        assert_eq!(
            xadd(&mut db, 0, &f(&["s", "5-1", "k", "v"])),
            Frame::bulk("5-1")
        );
        assert!(xadd(&mut db, 0, &f(&["s", "5-1", "k", "v"])).is_error());
        assert!(xadd(&mut db, 0, &f(&["s", "4-0", "k", "v"])).is_error());
    }

    #[test]
    fn xadd_maxlen_trims() {
        let mut db = Db::new();
        for i in 0..5 {
            xadd(&mut db, i, &f(&["s", "*", "k", "v"]));
        }
        xadd(&mut db, 99, &f(&["s", "MAXLEN", "3", "*", "k", "v"]));
        assert_eq!(xlen(&mut db, &f(&["s"])), Frame::Integer(3));
    }

    #[test]
    fn xdel_removes() {
        let mut db = Db::new();
        let id = add(&mut db, "s", 1, "a");
        add(&mut db, "s", 2, "b");
        assert_eq!(xdel(&mut db, &f(&["s", &id])), Frame::Integer(1));
        assert_eq!(xlen(&mut db, &f(&["s"])), Frame::Integer(1));
    }

    #[test]
    fn group_lifecycle_and_read() {
        let mut db = Db::new();
        add(&mut db, "s", 1, "one");
        assert_eq!(xgroup(&mut db, &f(&["CREATE", "s", "g", "0"])), Frame::ok());
        assert!(
            xgroup(&mut db, &f(&["CREATE", "s", "g", "0"])).is_error(),
            "BUSYGROUP"
        );

        let mut cmd = parse_stream_read(
            "XREADGROUP",
            &f(&["GROUP", "g", "c1", "COUNT", "10", "STREAMS", "s", ">"]),
        )
        .unwrap();
        resolve_stream_ids(&mut db, &mut cmd);
        let reply = execute_stream_read(&mut db, 0, &cmd).unwrap().unwrap();
        assert!(format!("{reply:?}").contains("one"));

        // Nothing new now.
        assert!(execute_stream_read(&mut db, 0, &cmd).unwrap().is_none());

        // Pending count visible via XPENDING.
        let pending = xpending(&mut db, &f(&["s", "g"]));
        assert_eq!(pending.as_array().unwrap()[0], Frame::Integer(1));

        // Ack clears.
        assert_eq!(xack(&mut db, &f(&["s", "g", "1-0"])), Frame::Integer(1));
        let pending = xpending(&mut db, &f(&["s", "g"]));
        assert_eq!(pending.as_array().unwrap()[0], Frame::Integer(0));
    }

    #[test]
    fn xgroup_mkstream_creates_key() {
        let mut db = Db::new();
        assert!(xgroup(&mut db, &f(&["CREATE", "ghost", "g", "$"])).is_error());
        assert_eq!(
            xgroup(&mut db, &f(&["CREATE", "ghost", "g", "$", "MKSTREAM"])),
            Frame::ok()
        );
        assert_eq!(xlen(&mut db, &f(&["ghost"])), Frame::Integer(0));
        assert_eq!(
            xgroup(&mut db, &f(&["DESTROY", "ghost", "g"])),
            Frame::Integer(1)
        );
        assert_eq!(
            xgroup(&mut db, &f(&["DESTROY", "ghost", "g"])),
            Frame::Integer(0)
        );
    }

    #[test]
    fn xread_after_id() {
        let mut db = Db::new();
        add(&mut db, "s", 1, "a");
        add(&mut db, "s", 2, "b");
        let mut cmd = parse_stream_read("XREAD", &f(&["STREAMS", "s", "1-0"])).unwrap();
        resolve_stream_ids(&mut db, &mut cmd);
        let reply = execute_stream_read(&mut db, 0, &cmd).unwrap().unwrap();
        let text = format!("{reply:?}");
        assert!(text.contains('b') && !text.contains("\"a\""));
    }

    #[test]
    fn xread_dollar_resolves_to_snapshot() {
        let mut db = Db::new();
        add(&mut db, "s", 1, "old");
        let mut cmd = parse_stream_read("XREAD", &f(&["STREAMS", "s", "$"])).unwrap();
        resolve_stream_ids(&mut db, &mut cmd);
        assert!(execute_stream_read(&mut db, 0, &cmd).unwrap().is_none());
        add(&mut db, "s", 2, "new");
        assert!(execute_stream_read(&mut db, 0, &cmd).unwrap().is_some());
    }

    #[test]
    fn xreadgroup_history_replays_pel() {
        let mut db = Db::new();
        add(&mut db, "s", 1, "a");
        xgroup(&mut db, &f(&["CREATE", "s", "g", "0"]));
        let mut newcmd =
            parse_stream_read("XREADGROUP", &f(&["GROUP", "g", "c", "STREAMS", "s", ">"])).unwrap();
        resolve_stream_ids(&mut db, &mut newcmd);
        execute_stream_read(&mut db, 0, &newcmd).unwrap().unwrap();
        // Replay history from 0: the unacked entry reappears.
        let mut replay = parse_stream_read(
            "XREADGROUP",
            &f(&["GROUP", "g", "c", "STREAMS", "s", "0-0"]),
        )
        .unwrap();
        resolve_stream_ids(&mut db, &mut replay);
        let reply = execute_stream_read(&mut db, 0, &replay).unwrap().unwrap();
        assert!(format!("{reply:?}").contains('a'));
        // Another consumer's replay is empty.
        let mut other = parse_stream_read(
            "XREADGROUP",
            &f(&["GROUP", "g", "other", "STREAMS", "s", "0-0"]),
        )
        .unwrap();
        resolve_stream_ids(&mut db, &mut other);
        let reply = execute_stream_read(&mut db, 0, &other).unwrap().unwrap();
        assert!(!format!("{reply:?}").contains("\"a\""));
    }

    #[test]
    fn parse_rejects_mismatched_specs() {
        assert!(parse_stream_read("XREAD", &f(&["STREAMS", "s", ">"])).is_err());
        assert!(
            parse_stream_read("XREADGROUP", &f(&["GROUP", "g", "c", "STREAMS", "s", "$"])).is_err()
        );
        assert!(parse_stream_read("XREAD", &f(&["STREAMS", "s"])).is_err());
        assert!(parse_stream_read("XREADGROUP", &f(&["STREAMS", "s", ">"])).is_err());
    }

    #[test]
    fn xinfo_consumers_reports_idle() {
        let mut db = Db::new();
        add(&mut db, "s", 1, "a");
        xgroup(&mut db, &f(&["CREATE", "s", "g", "0"]));
        let mut cmd = parse_stream_read(
            "XREADGROUP",
            &f(&["GROUP", "g", "c", "NOACK", "STREAMS", "s", ">"]),
        )
        .unwrap();
        resolve_stream_ids(&mut db, &mut cmd);
        execute_stream_read(&mut db, 0, &cmd).unwrap().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let info = xinfo(&mut db, &f(&["CONSUMERS", "s", "g"]));
        let rows = info.as_array().unwrap();
        assert_eq!(rows.len(), 1);
        let row = rows[0].as_array().unwrap();
        // ["name", c, "pending", 0, "idle", ms]
        assert_eq!(row[1], Frame::bulk("c"));
        assert_eq!(row[3], Frame::Integer(0), "NOACK leaves nothing pending");
        assert!(row[5].as_int().unwrap() >= 20);
    }

    #[test]
    fn xinfo_stream_and_groups() {
        let mut db = Db::new();
        add(&mut db, "s", 7, "x");
        xgroup(&mut db, &f(&["CREATE", "s", "g", "0"]));
        let info = xinfo(&mut db, &f(&["STREAM", "s"]));
        let text = format!("{info:?}");
        assert!(text.contains("length") && text.contains("7-0"));
        let groups = xinfo(&mut db, &f(&["GROUPS", "s"]));
        assert_eq!(groups.as_array().unwrap().len(), 1);
    }

    #[test]
    fn xpending_empty_group() {
        let mut db = Db::new();
        add(&mut db, "s", 1, "a");
        xgroup(&mut db, &f(&["CREATE", "s", "g", "$"]));
        let reply = xpending(&mut db, &f(&["s", "g"]));
        assert_eq!(reply.as_array().unwrap()[0], Frame::Integer(0));
    }

    #[test]
    fn nogroup_errors_surface() {
        let mut db = Db::new();
        add(&mut db, "s", 1, "a");
        let mut cmd = parse_stream_read(
            "XREADGROUP",
            &f(&["GROUP", "nope", "c", "STREAMS", "s", ">"]),
        )
        .unwrap();
        resolve_stream_ids(&mut db, &mut cmd);
        let err = execute_stream_read(&mut db, 0, &cmd).unwrap_err();
        assert!(err.as_text().unwrap().starts_with("NOGROUP"));
    }
}
