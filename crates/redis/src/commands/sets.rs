//! Set commands.

use super::{bulk_array, now, wrong_args, wrong_type};
use crate::resp::Frame;
use crate::store::{Db, RValue};
use d4py_sync::SharedBuf;
use std::collections::HashSet;

pub(crate) fn sadd(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() < 2 {
        return wrong_args("SADD");
    }
    match db.get_or_create(&args[0], now(), || RValue::Set(HashSet::new())) {
        RValue::Set(s) => {
            let added = args[1..].iter().filter(|m| s.insert(m.to_vec())).count();
            Frame::Integer(added as i64)
        }
        _ => wrong_type(),
    }
}

pub(crate) fn srem(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() < 2 {
        return wrong_args("SREM");
    }
    let (removed, emptied) = match db.get_mut(&args[0], now()) {
        None => return Frame::Integer(0),
        Some(RValue::Set(s)) => {
            let removed = args[1..].iter().filter(|m| s.remove(m.as_slice())).count();
            (removed, s.is_empty())
        }
        Some(_) => return wrong_type(),
    };
    if emptied {
        db.del(&args[0], now());
    }
    Frame::Integer(removed as i64)
}

pub(crate) fn sismember(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 2 {
        return wrong_args("SISMEMBER");
    }
    match db.get(&args[0], now()) {
        None => Frame::Integer(0),
        Some(RValue::Set(s)) => Frame::Integer(i64::from(s.contains(args[1].as_slice()))),
        Some(_) => wrong_type(),
    }
}

pub(crate) fn smembers(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("SMEMBERS");
    }
    match db.get(&args[0], now()) {
        None => Frame::Array(vec![]),
        Some(RValue::Set(s)) => {
            let mut members: Vec<Vec<u8>> = s.iter().cloned().collect();
            members.sort();
            bulk_array(members)
        }
        Some(_) => wrong_type(),
    }
}

pub(crate) fn scard(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("SCARD");
    }
    match db.get(&args[0], now()) {
        None => Frame::Integer(0),
        Some(RValue::Set(s)) => Frame::Integer(s.len() as i64),
        Some(_) => wrong_type(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(parts: &[&str]) -> Vec<SharedBuf> {
        parts
            .iter()
            .map(|p| SharedBuf::from(p.as_bytes()))
            .collect()
    }

    #[test]
    fn sadd_dedupes() {
        let mut db = Db::new();
        assert_eq!(sadd(&mut db, &f(&["s", "a", "b", "a"])), Frame::Integer(2));
        assert_eq!(sadd(&mut db, &f(&["s", "a"])), Frame::Integer(0));
        assert_eq!(scard(&mut db, &f(&["s"])), Frame::Integer(2));
    }

    #[test]
    fn membership() {
        let mut db = Db::new();
        sadd(&mut db, &f(&["s", "x"]));
        assert_eq!(sismember(&mut db, &f(&["s", "x"])), Frame::Integer(1));
        assert_eq!(sismember(&mut db, &f(&["s", "y"])), Frame::Integer(0));
        assert_eq!(sismember(&mut db, &f(&["none", "x"])), Frame::Integer(0));
    }

    #[test]
    fn smembers_sorted() {
        let mut db = Db::new();
        sadd(&mut db, &f(&["s", "c", "a", "b"]));
        assert_eq!(
            smembers(&mut db, &f(&["s"])),
            Frame::Array(vec![Frame::bulk("a"), Frame::bulk("b"), Frame::bulk("c")])
        );
    }

    #[test]
    fn srem_and_empty_removal() {
        let mut db = Db::new();
        sadd(&mut db, &f(&["s", "a", "b"]));
        assert_eq!(srem(&mut db, &f(&["s", "a", "zz"])), Frame::Integer(1));
        assert_eq!(srem(&mut db, &f(&["s", "b"])), Frame::Integer(1));
        assert!(db.get(b"s", now()).is_none());
        assert_eq!(srem(&mut db, &f(&["s", "a"])), Frame::Integer(0));
    }

    #[test]
    fn wrong_type_detected() {
        let mut db = Db::new();
        db.set(b"x".to_vec(), RValue::Str(vec![]));
        assert!(sadd(&mut db, &f(&["x", "a"])).is_error());
        assert!(smembers(&mut db, &f(&["x"])).is_error());
    }
}
