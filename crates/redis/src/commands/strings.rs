//! String commands: SET/GET family, counters, multi-key forms.

use super::{now, parse_int, wrong_args, wrong_type};
use crate::resp::Frame;
use crate::store::{Db, RValue};
use d4py_sync::SharedBuf;
use std::time::Duration;

pub(crate) fn set(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() < 2 {
        return wrong_args("SET");
    }
    let (key, value) = (&args[0], &args[1]);
    let mut expiry: Option<Duration> = None;
    let mut nx = false;
    let mut xx = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].to_ascii_uppercase().as_slice() {
            b"EX" => {
                let Some(secs) = args
                    .get(i + 1)
                    .and_then(|a| parse_int(a))
                    .filter(|&s| s > 0)
                else {
                    return Frame::error("invalid expire time in 'set' command");
                };
                expiry = Some(Duration::from_secs(secs as u64));
                i += 2;
            }
            b"PX" => {
                let Some(ms) = args
                    .get(i + 1)
                    .and_then(|a| parse_int(a))
                    .filter(|&s| s > 0)
                else {
                    return Frame::error("invalid expire time in 'set' command");
                };
                expiry = Some(Duration::from_millis(ms as u64));
                i += 2;
            }
            b"NX" => {
                nx = true;
                i += 1;
            }
            b"XX" => {
                xx = true;
                i += 1;
            }
            other => {
                return Frame::error(format!(
                    "syntax error near '{}'",
                    String::from_utf8_lossy(other)
                ))
            }
        }
    }
    let exists = db.exists(key, now());
    if (nx && exists) || (xx && !exists) {
        return Frame::Null;
    }
    match expiry {
        Some(d) => db.set_with_expiry(key.to_vec(), RValue::Str(value.to_vec()), now() + d),
        None => db.set(key.to_vec(), RValue::Str(value.to_vec())),
    }
    Frame::ok()
}

pub(crate) fn get(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("GET");
    }
    match db.get(&args[0], now()) {
        None => Frame::Null,
        Some(RValue::Str(v)) => Frame::bulk(v.clone()),
        Some(_) => wrong_type(),
    }
}

pub(crate) fn getset(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 2 {
        return wrong_args("GETSET");
    }
    let old = match db.get(&args[0], now()) {
        None => Frame::Null,
        Some(RValue::Str(v)) => Frame::bulk(v.clone()),
        Some(_) => return wrong_type(),
    };
    db.set(args[0].to_vec(), RValue::Str(args[1].to_vec()));
    old
}

pub(crate) fn setnx(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 2 {
        return wrong_args("SETNX");
    }
    if db.exists(&args[0], now()) {
        Frame::Integer(0)
    } else {
        db.set(args[0].to_vec(), RValue::Str(args[1].to_vec()));
        Frame::Integer(1)
    }
}

pub(crate) fn append(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 2 {
        return wrong_args("APPEND");
    }
    match db.get_or_create(&args[0], now(), || RValue::Str(Vec::new())) {
        RValue::Str(v) => {
            v.extend_from_slice(&args[1]);
            Frame::Integer(v.len() as i64)
        }
        _ => wrong_type(),
    }
}

pub(crate) fn strlen(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("STRLEN");
    }
    match db.get(&args[0], now()) {
        None => Frame::Integer(0),
        Some(RValue::Str(v)) => Frame::Integer(v.len() as i64),
        Some(_) => wrong_type(),
    }
}

pub(crate) fn incrby(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 2 {
        return wrong_args("INCRBY");
    }
    let Some(delta) = parse_int(&args[1]) else {
        return Frame::error("value is not an integer or out of range");
    };
    match db.get_or_create(&args[0], now(), || RValue::Str(b"0".to_vec())) {
        RValue::Str(v) => {
            let Some(cur) = std::str::from_utf8(v)
                .ok()
                .and_then(|s| s.parse::<i64>().ok())
            else {
                return Frame::error("value is not an integer or out of range");
            };
            let Some(next) = cur.checked_add(delta) else {
                return Frame::error("increment or decrement would overflow");
            };
            *v = next.to_string().into_bytes();
            Frame::Integer(next)
        }
        _ => wrong_type(),
    }
}

pub(crate) fn decrby(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 2 {
        return wrong_args("DECRBY");
    }
    let Some(delta) = parse_int(&args[1]) else {
        return Frame::error("value is not an integer or out of range");
    };
    incrby(db, &[args[0].clone(), (-delta).to_string().into()])
}

pub(crate) fn mset(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.is_empty() || !args.len().is_multiple_of(2) {
        return wrong_args("MSET");
    }
    for pair in args.chunks(2) {
        db.set(pair[0].to_vec(), RValue::Str(pair[1].to_vec()));
    }
    Frame::ok()
}

pub(crate) fn mget(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.is_empty() {
        return wrong_args("MGET");
    }
    Frame::Array(
        args.iter()
            .map(|k| match db.get(k, now()) {
                Some(RValue::Str(v)) => Frame::bulk(v.clone()),
                _ => Frame::Null, // wrong-type keys read as nil in MGET
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(parts: &[&str]) -> Vec<SharedBuf> {
        parts
            .iter()
            .map(|p| SharedBuf::from(p.as_bytes()))
            .collect()
    }

    #[test]
    fn set_get_roundtrip() {
        let mut db = Db::new();
        assert_eq!(set(&mut db, &f(&["k", "v"])), Frame::ok());
        assert_eq!(get(&mut db, &f(&["k"])), Frame::bulk("v"));
    }

    #[test]
    fn set_nx_and_xx() {
        let mut db = Db::new();
        assert_eq!(
            set(&mut db, &f(&["k", "v", "XX"])),
            Frame::Null,
            "XX on missing"
        );
        assert_eq!(set(&mut db, &f(&["k", "v", "NX"])), Frame::ok());
        assert_eq!(
            set(&mut db, &f(&["k", "w", "NX"])),
            Frame::Null,
            "NX on existing"
        );
        assert_eq!(set(&mut db, &f(&["k", "w", "XX"])), Frame::ok());
        assert_eq!(get(&mut db, &f(&["k"])), Frame::bulk("w"));
    }

    #[test]
    fn set_px_expires() {
        let mut db = Db::new();
        set(&mut db, &f(&["k", "v", "PX", "10"]));
        assert_eq!(get(&mut db, &f(&["k"])), Frame::bulk("v"));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(get(&mut db, &f(&["k"])), Frame::Null);
    }

    #[test]
    fn set_rejects_bad_expiry_and_syntax() {
        let mut db = Db::new();
        assert!(set(&mut db, &f(&["k", "v", "EX", "0"])).is_error());
        assert!(set(&mut db, &f(&["k", "v", "EX", "abc"])).is_error());
        assert!(set(&mut db, &f(&["k", "v", "BOGUS"])).is_error());
    }

    #[test]
    fn incr_decr_family() {
        let mut db = Db::new();
        assert_eq!(incrby(&mut db, &f(&["n", "5"])), Frame::Integer(5));
        assert_eq!(incrby(&mut db, &f(&["n", "3"])), Frame::Integer(8));
        assert_eq!(decrby(&mut db, &f(&["n", "10"])), Frame::Integer(-2));
        set(&mut db, &f(&["s", "notanumber"]));
        assert!(incrby(&mut db, &f(&["s", "1"])).is_error());
    }

    #[test]
    fn incr_overflow_detected() {
        let mut db = Db::new();
        set(&mut db, &f(&["n", &i64::MAX.to_string()]));
        assert!(incrby(&mut db, &f(&["n", "1"])).is_error());
    }

    #[test]
    fn append_and_strlen() {
        let mut db = Db::new();
        assert_eq!(append(&mut db, &f(&["k", "foo"])), Frame::Integer(3));
        assert_eq!(append(&mut db, &f(&["k", "bar"])), Frame::Integer(6));
        assert_eq!(strlen(&mut db, &f(&["k"])), Frame::Integer(6));
        assert_eq!(strlen(&mut db, &f(&["missing"])), Frame::Integer(0));
    }

    #[test]
    fn getset_swaps() {
        let mut db = Db::new();
        assert_eq!(getset(&mut db, &f(&["k", "new"])), Frame::Null);
        assert_eq!(getset(&mut db, &f(&["k", "newer"])), Frame::bulk("new"));
    }

    #[test]
    fn setnx_only_once() {
        let mut db = Db::new();
        assert_eq!(setnx(&mut db, &f(&["k", "a"])), Frame::Integer(1));
        assert_eq!(setnx(&mut db, &f(&["k", "b"])), Frame::Integer(0));
        assert_eq!(get(&mut db, &f(&["k"])), Frame::bulk("a"));
    }

    #[test]
    fn mset_mget() {
        let mut db = Db::new();
        assert_eq!(mset(&mut db, &f(&["a", "1", "b", "2"])), Frame::ok());
        assert_eq!(
            mget(&mut db, &f(&["a", "missing", "b"])),
            Frame::Array(vec![Frame::bulk("1"), Frame::Null, Frame::bulk("2")])
        );
        assert!(mset(&mut db, &f(&["odd"])).is_error());
    }

    #[test]
    fn wrong_type_reported() {
        let mut db = Db::new();
        db.set(b"l".to_vec(), RValue::List(Default::default()));
        assert!(get(&mut db, &f(&["l"])).is_error());
        assert!(incrby(&mut db, &f(&["l", "1"])).is_error());
    }
}
