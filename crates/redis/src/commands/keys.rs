//! Generic keyspace commands: DEL, EXISTS, TYPE, KEYS, expiry family.

use super::{bulk_array, ms, now, parse_int, wrong_args};
use crate::resp::Frame;
use crate::store::Db;
use d4py_sync::SharedBuf;
use std::time::Duration;

pub(crate) fn del(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.is_empty() {
        return wrong_args("DEL");
    }
    let n = args.iter().filter(|k| db.del(k, now())).count();
    Frame::Integer(n as i64)
}

pub(crate) fn exists(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.is_empty() {
        return wrong_args("EXISTS");
    }
    let n = args.iter().filter(|k| db.exists(k, now())).count();
    Frame::Integer(n as i64)
}

pub(crate) fn type_(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("TYPE");
    }
    match db.get(&args[0], now()) {
        None => Frame::Simple("none".into()),
        Some(v) => Frame::Simple(v.type_name().into()),
    }
}

pub(crate) fn keys(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("KEYS");
    }
    bulk_array(db.keys_matching(&args[0], now()))
}

pub(crate) fn expire(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 2 {
        return wrong_args("EXPIRE");
    }
    let Some(secs) = parse_int(&args[1]) else {
        return Frame::error("value is not an integer or out of range");
    };
    if secs <= 0 {
        return Frame::Integer(i64::from(db.del(&args[0], now())));
    }
    let ok = db.expire(&args[0], now() + Duration::from_secs(secs as u64), now());
    Frame::Integer(i64::from(ok))
}

pub(crate) fn pexpire(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 2 {
        return wrong_args("PEXPIRE");
    }
    let Some(millis) = parse_int(&args[1]) else {
        return Frame::error("value is not an integer or out of range");
    };
    if millis <= 0 {
        return Frame::Integer(i64::from(db.del(&args[0], now())));
    }
    let ok = db.expire(
        &args[0],
        now() + Duration::from_millis(millis as u64),
        now(),
    );
    Frame::Integer(i64::from(ok))
}

pub(crate) fn ttl(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("TTL");
    }
    match db.ttl(&args[0], now()) {
        None => Frame::Integer(-2),
        Some(None) => Frame::Integer(-1),
        Some(Some(d)) => Frame::Integer(d.as_secs() as i64),
    }
}

pub(crate) fn pttl(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("PTTL");
    }
    match db.ttl(&args[0], now()) {
        None => Frame::Integer(-2),
        Some(None) => Frame::Integer(-1),
        Some(Some(d)) => Frame::Integer(ms(d)),
    }
}

pub(crate) fn persist(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("PERSIST");
    }
    Frame::Integer(i64::from(db.persist(&args[0], now())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RValue;

    fn f(parts: &[&str]) -> Vec<SharedBuf> {
        parts
            .iter()
            .map(|p| SharedBuf::from(p.as_bytes()))
            .collect()
    }

    fn seeded() -> Db {
        let mut db = Db::new();
        db.set(b"a".to_vec(), RValue::Str(b"1".to_vec()));
        db.set(b"b".to_vec(), RValue::Str(b"2".to_vec()));
        db
    }

    #[test]
    fn del_counts_existing() {
        let mut db = seeded();
        assert_eq!(del(&mut db, &f(&["a", "missing", "b"])), Frame::Integer(2));
        assert_eq!(exists(&mut db, &f(&["a", "b"])), Frame::Integer(0));
    }

    #[test]
    fn exists_counts_multiplicity() {
        let mut db = seeded();
        assert_eq!(exists(&mut db, &f(&["a", "a", "b"])), Frame::Integer(3));
    }

    #[test]
    fn type_reports() {
        let mut db = seeded();
        assert_eq!(type_(&mut db, &f(&["a"])), Frame::Simple("string".into()));
        assert_eq!(type_(&mut db, &f(&["nope"])), Frame::Simple("none".into()));
    }

    #[test]
    fn keys_pattern() {
        let mut db = seeded();
        assert_eq!(
            keys(&mut db, &f(&["*"])),
            Frame::Array(vec![Frame::bulk("a"), Frame::bulk("b")])
        );
    }

    #[test]
    fn ttl_lifecycle() {
        let mut db = seeded();
        assert_eq!(ttl(&mut db, &f(&["missing"])), Frame::Integer(-2));
        assert_eq!(ttl(&mut db, &f(&["a"])), Frame::Integer(-1));
        assert_eq!(expire(&mut db, &f(&["a", "100"])), Frame::Integer(1));
        let t = ttl(&mut db, &f(&["a"])).as_int().unwrap();
        assert!((99..=100).contains(&t));
        assert_eq!(persist(&mut db, &f(&["a"])), Frame::Integer(1));
        assert_eq!(ttl(&mut db, &f(&["a"])), Frame::Integer(-1));
    }

    #[test]
    fn pexpire_and_pttl() {
        let mut db = seeded();
        assert_eq!(pexpire(&mut db, &f(&["a", "5000"])), Frame::Integer(1));
        let t = pttl(&mut db, &f(&["a"])).as_int().unwrap();
        assert!(t > 4000 && t <= 5000);
    }

    #[test]
    fn non_positive_expire_deletes() {
        let mut db = seeded();
        assert_eq!(expire(&mut db, &f(&["a", "0"])), Frame::Integer(1));
        assert_eq!(exists(&mut db, &f(&["a"])), Frame::Integer(0));
        assert_eq!(expire(&mut db, &f(&["a", "-5"])), Frame::Integer(0));
    }

    #[test]
    fn expire_missing_key() {
        let mut db = Db::new();
        assert_eq!(expire(&mut db, &f(&["ghost", "10"])), Frame::Integer(0));
    }
}
