//! Connection/server commands.

use super::{now, wrong_args};
use crate::resp::Frame;
use crate::store::Db;
use d4py_sync::SharedBuf;

pub(crate) fn ping(args: &[SharedBuf]) -> Frame {
    match args.len() {
        0 => Frame::Simple("PONG".into()),
        1 => Frame::Bulk(args[0].clone()),
        _ => wrong_args("PING"),
    }
}

pub(crate) fn echo(args: &[SharedBuf]) -> Frame {
    match args.len() {
        1 => Frame::Bulk(args[0].clone()),
        _ => wrong_args("ECHO"),
    }
}

pub(crate) fn flushall(db: &mut Db) -> Frame {
    db.clear();
    Frame::ok()
}

pub(crate) fn dbsize(db: &mut Db) -> Frame {
    Frame::Integer(db.len(now()) as i64)
}

pub(crate) fn info(db: &mut Db) -> Frame {
    Frame::bulk(format!(
        "# Server\r\nredis_version:redis-lite-0.1\r\n# Keyspace\r\ndb0:keys={}\r\n",
        db.len(now())
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RValue;

    #[test]
    fn ping_variants() {
        assert_eq!(ping(&[]), Frame::Simple("PONG".into()));
        assert_eq!(ping(&[b"hi".into()]), Frame::bulk("hi"));
        assert!(ping(&[b"a".into(), b"b".into()]).is_error());
    }

    #[test]
    fn echo_echoes() {
        assert_eq!(echo(&[b"x".into()]), Frame::bulk("x"));
        assert!(echo(&[]).is_error());
    }

    #[test]
    fn flush_and_size() {
        let mut db = Db::new();
        db.set(b"a".to_vec(), RValue::Str(vec![]));
        db.set(b"b".to_vec(), RValue::Str(vec![]));
        assert_eq!(dbsize(&mut db), Frame::Integer(2));
        assert_eq!(flushall(&mut db), Frame::ok());
        assert_eq!(dbsize(&mut db), Frame::Integer(0));
    }

    #[test]
    fn info_mentions_keyspace() {
        let mut db = Db::new();
        let text = info(&mut db).as_text().unwrap();
        assert!(text.contains("redis-lite"));
        assert!(text.contains("keys=0"));
    }
}
