//! Command implementations and the dispatch table.
//!
//! Every handler is a pure function over `&mut Db` (plus the server clock),
//! so the whole command surface is unit-testable without sockets. Blocking
//! behaviour lives in [`crate::engine`]; the handlers here are the
//! non-blocking cores it retries.

mod hashes;
mod keys;
mod lists;
mod server;
mod sets;
mod streams;
mod strings;

use crate::resp::Frame;
use crate::store::stream::StreamId;
use crate::store::{Db, RValue};
use d4py_sync::SharedBuf;
use std::time::{Duration, Instant};

pub use lists::try_pop_any;
pub use streams::{execute_stream_read, parse_stream_read, resolve_stream_ids, StreamReadCmd};

/// Executes one non-blocking command. `name` is already upper-cased.
pub fn execute(db: &mut Db, now_ms: u64, name: &str, args: &[SharedBuf]) -> Frame {
    match name {
        // connection / server
        "PING" => server::ping(args),
        "ECHO" => server::echo(args),
        "SELECT" => Frame::ok(),
        "QUIT" => Frame::ok(),
        "FLUSHALL" | "FLUSHDB" => server::flushall(db),
        "DBSIZE" => server::dbsize(db),
        "COMMAND" => Frame::Array(vec![]),
        "INFO" => server::info(db),

        // generic keyspace
        "DEL" => keys::del(db, args),
        "EXISTS" => keys::exists(db, args),
        "TYPE" => keys::type_(db, args),
        "KEYS" => keys::keys(db, args),
        "EXPIRE" => keys::expire(db, args),
        "PEXPIRE" => keys::pexpire(db, args),
        "TTL" => keys::ttl(db, args),
        "PTTL" => keys::pttl(db, args),
        "PERSIST" => keys::persist(db, args),

        // strings
        "SET" => strings::set(db, args),
        "GET" => strings::get(db, args),
        "GETSET" => strings::getset(db, args),
        "SETNX" => strings::setnx(db, args),
        "APPEND" => strings::append(db, args),
        "STRLEN" => strings::strlen(db, args),
        "INCR" => strings::incrby(
            db,
            &[args.first().cloned().unwrap_or_default(), b"1".into()],
        ),
        "DECR" => strings::incrby(
            db,
            &[args.first().cloned().unwrap_or_default(), b"-1".into()],
        ),
        "INCRBY" => strings::incrby(db, args),
        "DECRBY" => strings::decrby(db, args),
        "MSET" => strings::mset(db, args),
        "MGET" => strings::mget(db, args),

        // lists
        "LPUSH" => lists::push(db, args, true),
        "RPUSH" => lists::push(db, args, false),
        "LPOP" => lists::pop(db, args, true),
        "RPOP" => lists::pop(db, args, false),
        "LLEN" => lists::llen(db, args),
        "LRANGE" => lists::lrange(db, args),

        // hashes
        "HSET" | "HMSET" => hashes::hset(db, args, name == "HMSET"),
        "HGET" => hashes::hget(db, args),
        "HDEL" => hashes::hdel(db, args),
        "HGETALL" => hashes::hgetall(db, args),
        "HLEN" => hashes::hlen(db, args),
        "HEXISTS" => hashes::hexists(db, args),
        "HINCRBY" => hashes::hincrby(db, args),
        "HKEYS" => hashes::hkeys(db, args),
        "HVALS" => hashes::hvals(db, args),

        // sets
        "SADD" => sets::sadd(db, args),
        "SREM" => sets::srem(db, args),
        "SISMEMBER" => sets::sismember(db, args),
        "SMEMBERS" => sets::smembers(db, args),
        "SCARD" => sets::scard(db, args),

        // streams (non-read side; XREAD/XREADGROUP are handled in engine)
        "XADD" => streams::xadd(db, now_ms, args),
        "XLEN" => streams::xlen(db, args),
        "XRANGE" => streams::xrange(db, args),
        "XDEL" => streams::xdel(db, args),
        "XTRIM" => streams::xtrim(db, args),
        "XACK" => streams::xack(db, args),
        "XAUTOCLAIM" => streams::xautoclaim(db, args),
        "XGROUP" => streams::xgroup(db, args),
        "XPENDING" => streams::xpending(db, args),
        "XINFO" => streams::xinfo(db, args),

        other => Frame::error(format!("unknown command '{other}'")),
    }
}

/// True if the command mutates the keyspace (used to pulse blocked readers).
pub fn is_write(name: &str) -> bool {
    matches!(
        name,
        "SET"
            | "GETSET"
            | "SETNX"
            | "APPEND"
            | "INCR"
            | "DECR"
            | "INCRBY"
            | "DECRBY"
            | "MSET"
            | "DEL"
            | "EXPIRE"
            | "PEXPIRE"
            | "PERSIST"
            | "FLUSHALL"
            | "FLUSHDB"
            | "LPUSH"
            | "RPUSH"
            | "LPOP"
            | "RPOP"
            | "HSET"
            | "HMSET"
            | "HDEL"
            | "HINCRBY"
            | "SADD"
            | "SREM"
            | "XADD"
            | "XDEL"
            | "XTRIM"
            | "XACK"
            | "XAUTOCLAIM"
            | "XGROUP"
    )
}

// ---- shared helpers used by the submodules ----

pub(crate) fn wrong_args(cmd: &str) -> Frame {
    Frame::error(format!(
        "wrong number of arguments for '{}'",
        cmd.to_ascii_lowercase()
    ))
}

pub(crate) fn wrong_type() -> Frame {
    Frame::Error("WRONGTYPE Operation against a key holding the wrong kind of value".into())
}

pub(crate) fn parse_int(raw: &[u8]) -> Option<i64> {
    std::str::from_utf8(raw).ok()?.parse().ok()
}

pub(crate) fn parse_uint(raw: &[u8]) -> Option<u64> {
    std::str::from_utf8(raw).ok()?.parse().ok()
}

pub(crate) fn now() -> Instant {
    Instant::now()
}

pub(crate) fn bulk_array(items: Vec<Vec<u8>>) -> Frame {
    Frame::Array(items.into_iter().map(Frame::bulk).collect())
}

/// Parses a stream id argument for XADD: `*` → None (auto), else explicit.
pub(crate) fn parse_xadd_id(raw: &[u8]) -> Result<Option<StreamId>, Frame> {
    if raw == b"*" {
        return Ok(None);
    }
    let s = std::str::from_utf8(raw).map_err(|_| bad_id())?;
    StreamId::parse(s, 0).map(Some).ok_or_else(bad_id)
}

pub(crate) fn bad_id() -> Frame {
    Frame::Error("ERR Invalid stream ID specified as stream command argument".into())
}

/// Fetches a stream by key, distinguishing missing vs wrong-type.
pub(crate) fn stream_of<'a>(
    db: &'a mut Db,
    key: &[u8],
) -> Result<Option<&'a mut crate::store::stream::Stream>, Frame> {
    match db.get_mut(key, now()) {
        None => Ok(None),
        Some(RValue::Stream(s)) => Ok(Some(s)),
        Some(_) => Err(wrong_type()),
    }
}

pub(crate) fn ms(duration: Duration) -> i64 {
    duration.as_millis() as i64
}
