//! Hash commands.

use super::{now, parse_int, wrong_args, wrong_type};
use crate::resp::Frame;
use crate::store::{Db, RValue};
use d4py_sync::SharedBuf;
use std::collections::HashMap;

pub(crate) fn hset(db: &mut Db, args: &[SharedBuf], legacy_hmset: bool) -> Frame {
    if args.len() < 3 || args.len().is_multiple_of(2) {
        return wrong_args(if legacy_hmset { "HMSET" } else { "HSET" });
    }
    match db.get_or_create(&args[0], now(), || RValue::Hash(HashMap::new())) {
        RValue::Hash(h) => {
            let mut added = 0;
            for pair in args[1..].chunks(2) {
                if h.insert(pair[0].to_vec(), pair[1].to_vec()).is_none() {
                    added += 1;
                }
            }
            if legacy_hmset {
                Frame::ok()
            } else {
                Frame::Integer(added)
            }
        }
        _ => wrong_type(),
    }
}

pub(crate) fn hget(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 2 {
        return wrong_args("HGET");
    }
    match db.get(&args[0], now()) {
        None => Frame::Null,
        Some(RValue::Hash(h)) => h
            .get(args[1].as_slice())
            .map(|v| Frame::bulk(v.clone()))
            .unwrap_or(Frame::Null),
        Some(_) => wrong_type(),
    }
}

pub(crate) fn hdel(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() < 2 {
        return wrong_args("HDEL");
    }
    let (removed, emptied) = match db.get_mut(&args[0], now()) {
        None => return Frame::Integer(0),
        Some(RValue::Hash(h)) => {
            let removed = args[1..]
                .iter()
                .filter(|f| h.remove(f.as_slice()).is_some())
                .count();
            (removed, h.is_empty())
        }
        Some(_) => return wrong_type(),
    };
    if emptied {
        db.del(&args[0], now());
    }
    Frame::Integer(removed as i64)
}

pub(crate) fn hgetall(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("HGETALL");
    }
    match db.get(&args[0], now()) {
        None => Frame::Array(vec![]),
        Some(RValue::Hash(h)) => {
            let mut pairs: Vec<(&Vec<u8>, &Vec<u8>)> = h.iter().collect();
            pairs.sort_by(|a, b| a.0.cmp(b.0)); // deterministic ordering
            Frame::Array(
                pairs
                    .into_iter()
                    .flat_map(|(k, v)| [Frame::bulk(k.clone()), Frame::bulk(v.clone())])
                    .collect(),
            )
        }
        Some(_) => wrong_type(),
    }
}

pub(crate) fn hlen(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("HLEN");
    }
    match db.get(&args[0], now()) {
        None => Frame::Integer(0),
        Some(RValue::Hash(h)) => Frame::Integer(h.len() as i64),
        Some(_) => wrong_type(),
    }
}

pub(crate) fn hexists(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 2 {
        return wrong_args("HEXISTS");
    }
    match db.get(&args[0], now()) {
        None => Frame::Integer(0),
        Some(RValue::Hash(h)) => Frame::Integer(i64::from(h.contains_key(args[1].as_slice()))),
        Some(_) => wrong_type(),
    }
}

pub(crate) fn hincrby(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 3 {
        return wrong_args("HINCRBY");
    }
    let Some(delta) = parse_int(&args[2]) else {
        return Frame::error("value is not an integer or out of range");
    };
    match db.get_or_create(&args[0], now(), || RValue::Hash(HashMap::new())) {
        RValue::Hash(h) => {
            let slot = h.entry(args[1].to_vec()).or_insert_with(|| b"0".to_vec());
            let Some(cur) = std::str::from_utf8(slot)
                .ok()
                .and_then(|s| s.parse::<i64>().ok())
            else {
                return Frame::error("hash value is not an integer");
            };
            let Some(next) = cur.checked_add(delta) else {
                return Frame::error("increment or decrement would overflow");
            };
            *slot = next.to_string().into_bytes();
            Frame::Integer(next)
        }
        _ => wrong_type(),
    }
}

pub(crate) fn hkeys(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("HKEYS");
    }
    match db.get(&args[0], now()) {
        None => Frame::Array(vec![]),
        Some(RValue::Hash(h)) => {
            let mut keys: Vec<Vec<u8>> = h.keys().cloned().collect();
            keys.sort();
            super::bulk_array(keys)
        }
        Some(_) => wrong_type(),
    }
}

pub(crate) fn hvals(db: &mut Db, args: &[SharedBuf]) -> Frame {
    if args.len() != 1 {
        return wrong_args("HVALS");
    }
    match db.get(&args[0], now()) {
        None => Frame::Array(vec![]),
        Some(RValue::Hash(h)) => {
            let mut pairs: Vec<(&Vec<u8>, &Vec<u8>)> = h.iter().collect();
            pairs.sort_by(|a, b| a.0.cmp(b.0));
            super::bulk_array(pairs.into_iter().map(|(_, v)| v.clone()).collect())
        }
        Some(_) => wrong_type(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(parts: &[&str]) -> Vec<SharedBuf> {
        parts
            .iter()
            .map(|p| SharedBuf::from(p.as_bytes()))
            .collect()
    }

    #[test]
    fn hset_hget_roundtrip() {
        let mut db = Db::new();
        assert_eq!(
            hset(&mut db, &f(&["h", "a", "1", "b", "2"]), false),
            Frame::Integer(2)
        );
        assert_eq!(
            hset(&mut db, &f(&["h", "a", "9"]), false),
            Frame::Integer(0),
            "overwrite"
        );
        assert_eq!(hget(&mut db, &f(&["h", "a"])), Frame::bulk("9"));
        assert_eq!(hget(&mut db, &f(&["h", "zz"])), Frame::Null);
        assert_eq!(hget(&mut db, &f(&["nope", "a"])), Frame::Null);
    }

    #[test]
    fn hmset_replies_ok() {
        let mut db = Db::new();
        assert_eq!(hset(&mut db, &f(&["h", "a", "1"]), true), Frame::ok());
    }

    #[test]
    fn hdel_and_empty_removal() {
        let mut db = Db::new();
        hset(&mut db, &f(&["h", "a", "1", "b", "2"]), false);
        assert_eq!(hdel(&mut db, &f(&["h", "a", "zz"])), Frame::Integer(1));
        assert_eq!(hdel(&mut db, &f(&["h", "b"])), Frame::Integer(1));
        assert!(db.get(b"h", now()).is_none(), "empty hash key removed");
    }

    #[test]
    fn hgetall_sorted_pairs() {
        let mut db = Db::new();
        hset(&mut db, &f(&["h", "b", "2", "a", "1"]), false);
        assert_eq!(
            hgetall(&mut db, &f(&["h"])),
            Frame::Array(vec![
                Frame::bulk("a"),
                Frame::bulk("1"),
                Frame::bulk("b"),
                Frame::bulk("2")
            ])
        );
    }

    #[test]
    fn hlen_hexists() {
        let mut db = Db::new();
        hset(&mut db, &f(&["h", "a", "1"]), false);
        assert_eq!(hlen(&mut db, &f(&["h"])), Frame::Integer(1));
        assert_eq!(hexists(&mut db, &f(&["h", "a"])), Frame::Integer(1));
        assert_eq!(hexists(&mut db, &f(&["h", "b"])), Frame::Integer(0));
        assert_eq!(hlen(&mut db, &f(&["nope"])), Frame::Integer(0));
    }

    #[test]
    fn hincrby_counts() {
        let mut db = Db::new();
        assert_eq!(hincrby(&mut db, &f(&["h", "n", "5"])), Frame::Integer(5));
        assert_eq!(hincrby(&mut db, &f(&["h", "n", "-2"])), Frame::Integer(3));
        hset(&mut db, &f(&["h", "s", "abc"]), false);
        assert!(hincrby(&mut db, &f(&["h", "s", "1"])).is_error());
    }

    #[test]
    fn hkeys_hvals_sorted() {
        let mut db = Db::new();
        hset(&mut db, &f(&["h", "b", "2", "a", "1"]), false);
        assert_eq!(
            hkeys(&mut db, &f(&["h"])),
            Frame::Array(vec![Frame::bulk("a"), Frame::bulk("b")])
        );
        assert_eq!(
            hvals(&mut db, &f(&["h"])),
            Frame::Array(vec![Frame::bulk("1"), Frame::bulk("2")])
        );
    }

    #[test]
    fn wrong_type_everywhere() {
        let mut db = Db::new();
        db.set(b"s".to_vec(), RValue::Str(vec![]));
        assert!(hset(&mut db, &f(&["s", "a", "1"]), false).is_error());
        assert!(hget(&mut db, &f(&["s", "a"])).is_error());
        assert!(hgetall(&mut db, &f(&["s"])).is_error());
    }
}
