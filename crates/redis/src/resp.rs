//! RESP2 (REdis Serialization Protocol) framing.
//!
//! The wire format Redis has spoken since 1.2: five frame types, each
//! introduced by one marker byte and terminated by CRLF. We implement a
//! streaming frame decoder for replies, an encoder into [`ByteBuf`], and
//! — for the server's hot path — [`CommandParser`], a resumable pipelined
//! command parser that yields arguments as zero-copy [`SharedBuf`] slices
//! of the read buffer.
//!
//! ```text
//! +OK\r\n                    simple string
//! -ERR message\r\n           error
//! :42\r\n                    integer
//! $5\r\nhello\r\n            bulk string      ($-1\r\n = null bulk)
//! *2\r\n<frame><frame>       array            (*-1\r\n = null array)
//! ```

use d4py_sync::{ByteBuf, SharedBuf};

/// One RESP2 frame.
#[derive(Clone, PartialEq, Eq)]
pub enum Frame {
    /// `+...` — status reply.
    Simple(String),
    /// `-...` — error reply.
    Error(String),
    /// `:...` — integer reply.
    Integer(i64),
    /// `$...` — bulk string (binary safe, zero-copy shareable).
    Bulk(SharedBuf),
    /// `$-1` — null bulk string (Redis "nil").
    Null,
    /// `*...` — array of frames.
    Array(Vec<Frame>),
    /// `*-1` — null array (e.g. timed-out blocking read).
    NullArray,
}

impl Frame {
    /// Convenience: status `+OK`.
    pub fn ok() -> Frame {
        Frame::Simple("OK".to_string())
    }

    /// Convenience: a bulk string from text or bytes.
    pub fn bulk(s: impl Into<SharedBuf>) -> Frame {
        Frame::Bulk(s.into())
    }

    /// Convenience: an `-ERR ...` error.
    pub fn error(msg: impl std::fmt::Display) -> Frame {
        Frame::Error(format!("ERR {msg}"))
    }

    /// True if this is an error frame.
    pub fn is_error(&self) -> bool {
        matches!(self, Frame::Error(_))
    }

    /// The frame as UTF-8 text, when it carries text.
    pub fn as_text(&self) -> Option<String> {
        match self {
            Frame::Simple(s) | Frame::Error(s) => Some(s.clone()),
            Frame::Bulk(b) => String::from_utf8(b.to_vec()).ok(),
            _ => None,
        }
    }

    /// The frame as an integer, when it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Frame::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// The frame's array elements, when it is an array.
    pub fn as_array(&self) -> Option<&[Frame]> {
        match self {
            Frame::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Frame {
    /// Renders bulk payloads as (lossy) text — frames are overwhelmingly
    /// textual and byte-list dumps make failures unreadable.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Frame::Simple(s) => write!(f, "Simple({s:?})"),
            Frame::Error(s) => write!(f, "Error({s:?})"),
            Frame::Integer(i) => write!(f, "Integer({i})"),
            Frame::Bulk(b) => write!(f, "Bulk({:?})", String::from_utf8_lossy(b)),
            Frame::Null => write!(f, "Null"),
            Frame::Array(items) => f.debug_list().entries(items).finish(),
            Frame::NullArray => write!(f, "NullArray"),
        }
    }
}

/// Errors from the RESP decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespError {
    /// Frame marker byte is not one of `+ - : $ *`.
    BadMarker(u8),
    /// A length or integer field failed to parse.
    BadInteger,
    /// Missing CRLF where one was required.
    BadTerminator,
    /// A declared bulk length is negative but not -1, or absurdly large.
    BadLength(i64),
}

impl std::fmt::Display for RespError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RespError::BadMarker(b) => write!(f, "unexpected RESP marker byte 0x{b:02x}"),
            RespError::BadInteger => write!(f, "malformed RESP integer"),
            RespError::BadTerminator => write!(f, "missing CRLF terminator"),
            RespError::BadLength(n) => write!(f, "invalid RESP length {n}"),
        }
    }
}

impl std::error::Error for RespError {}

/// Encodes a frame onto `buf`.
pub fn encode(frame: &Frame, buf: &mut ByteBuf) {
    match frame {
        Frame::Simple(s) => {
            buf.put_u8(b'+');
            buf.put_slice(s.as_bytes());
            buf.put_slice(b"\r\n");
        }
        Frame::Error(s) => {
            buf.put_u8(b'-');
            buf.put_slice(s.as_bytes());
            buf.put_slice(b"\r\n");
        }
        Frame::Integer(i) => {
            buf.put_u8(b':');
            buf.put_slice(i.to_string().as_bytes());
            buf.put_slice(b"\r\n");
        }
        Frame::Bulk(b) => {
            buf.put_u8(b'$');
            buf.put_slice(b.len().to_string().as_bytes());
            buf.put_slice(b"\r\n");
            buf.put_slice(b);
            buf.put_slice(b"\r\n");
        }
        Frame::Null => buf.put_slice(b"$-1\r\n"),
        Frame::Array(items) => {
            buf.put_u8(b'*');
            buf.put_slice(items.len().to_string().as_bytes());
            buf.put_slice(b"\r\n");
            for item in items {
                encode(item, buf);
            }
        }
        Frame::NullArray => buf.put_slice(b"*-1\r\n"),
    }
}

/// Encodes a client command (array of bulk strings) — the only shape clients
/// send.
pub fn encode_command(args: &[&[u8]], buf: &mut ByteBuf) {
    buf.put_u8(b'*');
    buf.put_slice(args.len().to_string().as_bytes());
    buf.put_slice(b"\r\n");
    for a in args {
        buf.put_u8(b'$');
        buf.put_slice(a.len().to_string().as_bytes());
        buf.put_slice(b"\r\n");
        buf.put_slice(a);
        buf.put_slice(b"\r\n");
    }
}

/// Attempts to decode one frame from the front of `input`.
///
/// Returns `Ok(Some((frame, consumed)))` on success, `Ok(None)` when more
/// bytes are needed, `Err` on protocol violation. This is the reply-side
/// decoder (clients, AOF); the server's command path uses [`CommandParser`].
pub fn decode(input: &[u8]) -> Result<Option<(Frame, usize)>, RespError> {
    let Some((&marker, rest)) = input.split_first() else {
        return Ok(None);
    };
    match marker {
        b'+' | b'-' | b':' => {
            let Some((line, line_len)) = read_line(rest) else {
                return Ok(None);
            };
            let consumed = 1 + line_len;
            let text = String::from_utf8_lossy(line).into_owned();
            let frame = match marker {
                b'+' => Frame::Simple(text),
                b'-' => Frame::Error(text),
                _ => Frame::Integer(text.parse().map_err(|_| RespError::BadInteger)?),
            };
            Ok(Some((frame, consumed)))
        }
        b'$' => {
            let Some((line, line_len)) = read_line(rest) else {
                return Ok(None);
            };
            let n: i64 = std::str::from_utf8(line)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or(RespError::BadInteger)?;
            if n == -1 {
                return Ok(Some((Frame::Null, 1 + line_len)));
            }
            if n < 0 {
                return Err(RespError::BadLength(n));
            }
            let n = n as usize;
            let body_start = 1 + line_len;
            if input.len() < body_start + n + 2 {
                return Ok(None);
            }
            let body = &input[body_start..body_start + n];
            if &input[body_start + n..body_start + n + 2] != b"\r\n" {
                return Err(RespError::BadTerminator);
            }
            Ok(Some((
                Frame::Bulk(SharedBuf::copy_from(body)),
                body_start + n + 2,
            )))
        }
        b'*' => {
            let Some((line, line_len)) = read_line(rest) else {
                return Ok(None);
            };
            let n: i64 = std::str::from_utf8(line)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or(RespError::BadInteger)?;
            if n == -1 {
                return Ok(Some((Frame::NullArray, 1 + line_len)));
            }
            if n < 0 {
                return Err(RespError::BadLength(n));
            }
            let mut consumed = 1 + line_len;
            let mut items = Vec::with_capacity((n as usize).min(64));
            for _ in 0..n {
                match decode(&input[consumed..])? {
                    Some((frame, used)) => {
                        items.push(frame);
                        consumed += used;
                    }
                    None => return Ok(None),
                }
            }
            Ok(Some((Frame::Array(items), consumed)))
        }
        other => Err(RespError::BadMarker(other)),
    }
}

/// Reads up to the next CRLF; returns (line content, bytes consumed incl.
/// CRLF) or `None` if no CRLF yet.
fn read_line(input: &[u8]) -> Option<(&[u8], usize)> {
    let pos = input.windows(2).position(|w| w == b"\r\n")?;
    Some((&input[..pos], pos + 2))
}

// ---------------------------------------------------------------------------
// Resumable pipelined command parsing (server hot path)
// ---------------------------------------------------------------------------

/// Most arguments a single command may declare. Redis uses 1M; a hostile
/// `*999999999\r\n` header must not make us reserve memory for it.
const MAX_COMMAND_ARGS: usize = 1 << 20;

/// Largest single bulk argument we accept (64 MiB, well past any payload
/// the workflows ship).
const MAX_BULK_LEN: usize = 64 << 20;

/// Where the incremental scan stands inside the current command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum ParseState {
    /// Expecting the `*<n>\r\n` header of the next command.
    #[default]
    ArrayHeader,
    /// Expecting the marker of the next argument (`$` bulk or `+` simple).
    ArgMarker { remaining: usize },
    /// Expecting `len` body bytes plus CRLF for the current bulk argument.
    BulkBody { remaining: usize, len: usize },
}

/// A resumable parser for the command stream a client sends: a pipeline of
/// `*<n>` arrays of bulk strings, possibly split across reads at any byte
/// boundary.
///
/// Unlike re-running [`decode`] on a growing buffer (which rescans the
/// whole prefix on every read), the parser keeps an explicit state machine
/// — current command, argument index, CRLF scan cursor — so each buffered
/// byte is examined O(1) times no matter how the stream is fragmented.
///
/// [`drain`] parses *every* complete command buffered so far and returns
/// their arguments as [`SharedBuf`] slices sharing one allocation per
/// burst: the consumed front of the read buffer is moved (not copied) into
/// an `Arc` and each argument is a window into it. That allocation then
/// flows into the store and back out into replies without further copies.
///
/// [`drain`]: CommandParser::drain
#[derive(Debug, Default)]
pub struct CommandParser {
    /// Unconsumed bytes: completed-but-undrained commands plus any
    /// partially received command tail.
    buf: ByteBuf,
    /// Scan cursor: bytes before `pos` are structurally parsed.
    pos: usize,
    /// CRLF search memo: no CRLF starts before `scanned` in the current
    /// line, so a resumed search never re-examines old bytes.
    scanned: usize,
    state: ParseState,
    /// Argument ranges of the in-progress command.
    args: Vec<(usize, usize)>,
}

impl CommandParser {
    /// A parser with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned by [`drain`](Self::drain) —
    /// includes any partially received command.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True when the parser sits at a command boundary (no partial command
    /// buffered).
    pub fn is_at_boundary(&self) -> bool {
        self.buf.is_empty()
    }

    /// Parses every complete command buffered so far and returns their
    /// argument lists. Returns an empty vec when no complete command is
    /// available yet; errors are sticky protocol violations (the caller
    /// should reply and close).
    pub fn drain(&mut self) -> Result<Vec<Vec<SharedBuf>>, RespError> {
        let mut done: Vec<Vec<(usize, usize)>> = Vec::new();
        // Offset one past the last *complete* command; everything before
        // it is handed out this call.
        let mut consumed = 0usize;
        loop {
            match self.state {
                ParseState::ArrayHeader => {
                    if self.pos >= self.buf.len() {
                        break;
                    }
                    let marker = self.buf[self.pos];
                    if marker != b'*' {
                        return Err(RespError::BadMarker(marker));
                    }
                    let Some(end) = self.next_line_end(self.pos + 1) else {
                        break;
                    };
                    let n = parse_i64(&self.buf[self.pos + 1..end]).ok_or(RespError::BadInteger)?;
                    if n < 0 || n as usize > MAX_COMMAND_ARGS {
                        return Err(RespError::BadLength(n));
                    }
                    self.pos = end + 2;
                    if n == 0 {
                        // `*0` is a complete, empty command; dispatch will
                        // answer it with an error frame.
                        done.push(Vec::new());
                        consumed = self.pos;
                    } else {
                        self.state = ParseState::ArgMarker {
                            remaining: n as usize,
                        };
                    }
                }
                ParseState::ArgMarker { remaining } => {
                    if self.pos >= self.buf.len() {
                        break;
                    }
                    match self.buf[self.pos] {
                        b'$' => {
                            let Some(end) = self.next_line_end(self.pos + 1) else {
                                break;
                            };
                            let len = parse_i64(&self.buf[self.pos + 1..end])
                                .ok_or(RespError::BadInteger)?;
                            if len < 0 || len as usize > MAX_BULK_LEN {
                                return Err(RespError::BadLength(len));
                            }
                            self.pos = end + 2;
                            self.state = ParseState::BulkBody {
                                remaining,
                                len: len as usize,
                            };
                        }
                        // Simple-string argument: accepted for parity with
                        // the frame decoder's command shape.
                        b'+' => {
                            let Some(end) = self.next_line_end(self.pos + 1) else {
                                break;
                            };
                            self.args.push((self.pos + 1, end));
                            self.pos = end + 2;
                            self.arg_done(remaining, &mut done, &mut consumed);
                        }
                        other => return Err(RespError::BadMarker(other)),
                    }
                }
                ParseState::BulkBody { remaining, len } => {
                    if self.buf.len() < self.pos + len + 2 {
                        break;
                    }
                    if &self.buf[self.pos + len..self.pos + len + 2] != b"\r\n" {
                        return Err(RespError::BadTerminator);
                    }
                    self.args.push((self.pos, self.pos + len));
                    self.pos += len + 2;
                    self.scanned = self.pos;
                    self.arg_done(remaining, &mut done, &mut consumed);
                }
            }
        }
        if done.is_empty() {
            return Ok(Vec::new());
        }
        // One allocation per burst: the consumed front moves into an Arc
        // (no byte copy — only the small unparsed tail is shifted down)
        // and every argument becomes a window into it.
        let burst = SharedBuf::from(self.buf.split_to(consumed).freeze());
        self.pos -= consumed;
        self.scanned = self.scanned.saturating_sub(consumed);
        for r in &mut self.args {
            r.0 -= consumed;
            r.1 -= consumed;
        }
        Ok(done
            .iter()
            .map(|ranges| ranges.iter().map(|&(s, e)| burst.slice(s..e)).collect())
            .collect())
    }

    /// Records the end of one argument: either the command is complete or
    /// the scan moves to the next argument marker.
    fn arg_done(
        &mut self,
        remaining: usize,
        done: &mut Vec<Vec<(usize, usize)>>,
        consumed: &mut usize,
    ) {
        if remaining == 1 {
            done.push(std::mem::take(&mut self.args));
            self.state = ParseState::ArrayHeader;
            *consumed = self.pos;
        } else {
            self.state = ParseState::ArgMarker {
                remaining: remaining - 1,
            };
        }
    }

    /// Finds the CRLF terminating the line that starts at `line_start`,
    /// resuming from the memoized scan cursor. Returns the absolute index
    /// of the `\r`, or `None` (having remembered how far it looked).
    fn next_line_end(&mut self, line_start: usize) -> Option<usize> {
        let buf = &self.buf[..];
        let mut i = self.scanned.max(line_start);
        while i + 1 < buf.len() {
            if buf[i] == b'\r' && buf[i + 1] == b'\n' {
                self.scanned = i + 2;
                return Some(i);
            }
            i += 1;
        }
        // Resume here next time; the final byte may be half a CRLF.
        self.scanned = i;
        None
    }
}

/// Parses a decimal i64 from raw bytes without a UTF-8 detour.
fn parse_i64(bytes: &[u8]) -> Option<i64> {
    let (neg, digits) = match bytes.split_first() {
        Some((b'-', rest)) => (true, rest),
        _ => (false, bytes),
    };
    if digits.is_empty() {
        return None;
    }
    let mut v: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((b - b'0') as i64)?;
    }
    Some(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = ByteBuf::new();
        encode(&frame, &mut buf);
        let (decoded, consumed) = decode(&buf).unwrap().unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn simple_roundtrip() {
        roundtrip(Frame::Simple("OK".into()));
    }

    #[test]
    fn error_roundtrip() {
        roundtrip(Frame::Error("ERR something went wrong".into()));
    }

    #[test]
    fn integer_roundtrips() {
        roundtrip(Frame::Integer(0));
        roundtrip(Frame::Integer(-1));
        roundtrip(Frame::Integer(i64::MAX));
    }

    #[test]
    fn bulk_roundtrips() {
        roundtrip(Frame::bulk(&b"hello"[..]));
        roundtrip(Frame::bulk(Vec::new()));
        roundtrip(Frame::bulk(vec![0, 13, 10, 255])); // binary incl. CRLF bytes
    }

    #[test]
    fn null_and_null_array() {
        roundtrip(Frame::Null);
        roundtrip(Frame::NullArray);
    }

    #[test]
    fn nested_array_roundtrip() {
        roundtrip(Frame::Array(vec![
            Frame::bulk("XADD"),
            Frame::Integer(7),
            Frame::Array(vec![Frame::Simple("inner".into()), Frame::Null]),
        ]));
    }

    #[test]
    fn empty_array_roundtrip() {
        roundtrip(Frame::Array(vec![]));
    }

    #[test]
    fn incremental_decoding_waits_for_bytes() {
        let mut buf = ByteBuf::new();
        encode(&Frame::bulk("hello world"), &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                decode(&buf[..cut]).unwrap(),
                None,
                "cut={cut} should need more"
            );
        }
        assert!(decode(&buf).unwrap().is_some());
    }

    #[test]
    fn decode_reports_extra_bytes_via_consumed() {
        let mut buf = ByteBuf::new();
        encode(&Frame::Integer(5), &mut buf);
        let extra = buf.len();
        encode(&Frame::Integer(6), &mut buf);
        let (f1, c1) = decode(&buf).unwrap().unwrap();
        assert_eq!(f1, Frame::Integer(5));
        assert_eq!(c1, extra);
        let (f2, _) = decode(&buf[c1..]).unwrap().unwrap();
        assert_eq!(f2, Frame::Integer(6));
    }

    #[test]
    fn bad_marker_rejected() {
        assert_eq!(decode(b"!oops\r\n"), Err(RespError::BadMarker(b'!')));
    }

    #[test]
    fn bad_integer_rejected() {
        assert_eq!(decode(b":notanum\r\n"), Err(RespError::BadInteger));
    }

    #[test]
    fn bad_bulk_terminator_rejected() {
        assert_eq!(decode(b"$3\r\nabcXX"), Err(RespError::BadTerminator));
    }

    #[test]
    fn negative_length_rejected() {
        assert_eq!(decode(b"$-2\r\n"), Err(RespError::BadLength(-2)));
        assert_eq!(decode(b"*-5\r\n"), Err(RespError::BadLength(-5)));
    }

    #[test]
    fn encode_command_is_array_of_bulks() {
        let mut buf = ByteBuf::new();
        encode_command(&[b"SET", b"k", b"v"], &mut buf);
        let (frame, _) = decode(&buf).unwrap().unwrap();
        assert_eq!(
            frame,
            Frame::Array(vec![Frame::bulk("SET"), Frame::bulk("k"), Frame::bulk("v"),])
        );
    }

    #[test]
    fn frame_accessors() {
        assert!(Frame::error("x").is_error());
        assert_eq!(Frame::Integer(4).as_int(), Some(4));
        assert_eq!(Frame::bulk("hi").as_text(), Some("hi".into()));
        assert_eq!(Frame::Array(vec![Frame::Null]).as_array().unwrap().len(), 1);
        assert_eq!(Frame::ok(), Frame::Simple("OK".into()));
    }

    // ---- CommandParser ----

    fn encode_pipeline(cmds: &[Vec<&[u8]>]) -> Vec<u8> {
        let mut buf = ByteBuf::new();
        for cmd in cmds {
            encode_command(cmd, &mut buf);
        }
        buf.freeze()
    }

    fn args_eq(got: &[Vec<SharedBuf>], want: &[Vec<&[u8]>]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            let g: Vec<&[u8]> = g.iter().map(|a| &a[..]).collect();
            assert_eq!(&g, w);
        }
    }

    #[test]
    fn parser_handles_single_command() {
        let mut p = CommandParser::new();
        p.feed(b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n");
        let cmds = p.drain().unwrap();
        args_eq(&cmds, &[vec![b"SET", b"k", b"hello"]]);
        assert!(p.is_at_boundary());
    }

    #[test]
    fn parser_drains_whole_pipeline_in_one_call() {
        let want: Vec<Vec<&[u8]>> = vec![
            vec![b"SET", b"a", b"1"],
            vec![b"GET", b"a"],
            vec![b"XADD", b"s", b"*", b"field", b"value with spaces"],
        ];
        let mut p = CommandParser::new();
        p.feed(&encode_pipeline(&want));
        args_eq(&p.drain().unwrap(), &want);
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn parser_resumes_at_every_split_offset() {
        // A 20-command pipeline split at every byte boundary: each half
        // fed separately must parse to exactly the same commands.
        let want: Vec<Vec<u8>> = (0..20).map(|i| format!("key:{i}").into_bytes()).collect();
        let cmds: Vec<Vec<&[u8]>> = want
            .iter()
            .map(|k| vec![b"GET".as_ref(), k.as_slice()])
            .collect();
        let wire = encode_pipeline(&cmds);
        for cut in 0..=wire.len() {
            let mut p = CommandParser::new();
            let mut got = Vec::new();
            p.feed(&wire[..cut]);
            got.extend(p.drain().unwrap());
            p.feed(&wire[cut..]);
            got.extend(p.drain().unwrap());
            args_eq(&got, &cmds);
            assert!(p.is_at_boundary(), "cut={cut} left residue");
        }
    }

    #[test]
    fn parser_resumes_byte_by_byte() {
        let cmds: Vec<Vec<&[u8]>> = vec![vec![b"SET", b"k", b"v"], vec![b"GET", b"k"]];
        let wire = encode_pipeline(&cmds);
        let mut p = CommandParser::new();
        let mut got = Vec::new();
        for b in &wire {
            p.feed(std::slice::from_ref(b));
            got.extend(p.drain().unwrap());
        }
        args_eq(&got, &cmds);
    }

    #[test]
    fn parser_args_share_one_burst_allocation() {
        let mut p = CommandParser::new();
        p.feed(b"*2\r\n$3\r\nGET\r\n$3\r\nabc\r\n*2\r\n$3\r\nGET\r\n$3\r\nxyz\r\n");
        let cmds = p.drain().unwrap();
        // Both commands' args point into one contiguous burst buffer.
        let base = cmds[0][0].as_slice().as_ptr() as usize;
        for cmd in &cmds {
            for arg in cmd {
                let p = arg.as_slice().as_ptr() as usize;
                assert!(
                    p >= base && p < base + 44,
                    "arg escaped the burst allocation"
                );
            }
        }
    }

    #[test]
    fn parser_keeps_partial_tail_across_drains() {
        let mut p = CommandParser::new();
        p.feed(b"*1\r\n$4\r\nPING\r\n*2\r\n$3\r\nGET\r\n$300\r\nincompl");
        let cmds = p.drain().unwrap();
        args_eq(&cmds, &[vec![b"PING"]]);
        assert!(!p.is_at_boundary());
        assert_eq!(p.drain().unwrap(), Vec::<Vec<SharedBuf>>::new());
    }

    #[test]
    fn parser_accepts_simple_string_args() {
        let mut p = CommandParser::new();
        p.feed(b"*2\r\n+PING\r\n$2\r\nhi\r\n");
        args_eq(&p.drain().unwrap(), &[vec![b"PING", b"hi"]]);
    }

    #[test]
    fn parser_accepts_empty_command_and_empty_args() {
        let mut p = CommandParser::new();
        p.feed(b"*0\r\n*1\r\n$0\r\n\r\n");
        let cmds = p.drain().unwrap();
        assert_eq!(cmds.len(), 2);
        assert!(cmds[0].is_empty());
        assert_eq!(&cmds[1][0][..], b"");
    }

    #[test]
    fn parser_rejects_protocol_violations() {
        let mut p = CommandParser::new();
        p.feed(b"!oops\r\n");
        assert_eq!(p.drain(), Err(RespError::BadMarker(b'!')));

        let mut p = CommandParser::new();
        p.feed(b"*x\r\n");
        assert_eq!(p.drain(), Err(RespError::BadInteger));

        let mut p = CommandParser::new();
        p.feed(b"*-1\r\n");
        assert_eq!(p.drain(), Err(RespError::BadLength(-1)));

        let mut p = CommandParser::new();
        p.feed(b"*1\r\n$-1\r\n");
        assert_eq!(p.drain(), Err(RespError::BadLength(-1)));

        let mut p = CommandParser::new();
        p.feed(b"*1\r\n$3\r\nabcXX");
        assert_eq!(p.drain(), Err(RespError::BadTerminator));

        let mut p = CommandParser::new();
        p.feed(b"*1\r\n:5\r\n");
        assert_eq!(p.drain(), Err(RespError::BadMarker(b':')));
    }

    #[test]
    fn parser_rejects_absurd_lengths() {
        let mut p = CommandParser::new();
        p.feed(b"*99999999\r\n");
        assert!(matches!(p.drain(), Err(RespError::BadLength(_))));

        let mut p = CommandParser::new();
        p.feed(b"*1\r\n$999999999\r\n");
        assert!(matches!(p.drain(), Err(RespError::BadLength(_))));
    }

    #[test]
    fn parse_i64_covers_edges() {
        assert_eq!(parse_i64(b"0"), Some(0));
        assert_eq!(parse_i64(b"-1"), Some(-1));
        assert_eq!(parse_i64(b"123456789"), Some(123456789));
        assert_eq!(parse_i64(b""), None);
        assert_eq!(parse_i64(b"-"), None);
        assert_eq!(parse_i64(b"12a"), None);
        assert_eq!(parse_i64(b"99999999999999999999"), None);
    }
}
