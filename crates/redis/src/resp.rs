//! RESP2 (REdis Serialization Protocol) framing.
//!
//! The wire format Redis has spoken since 1.2: five frame types, each
//! introduced by one marker byte and terminated by CRLF. We implement a
//! zero-copy-ish incremental decoder (suitable for a streaming TCP read
//! buffer) and an encoder into [`ByteBuf`].
//!
//! ```text
//! +OK\r\n                    simple string
//! -ERR message\r\n           error
//! :42\r\n                    integer
//! $5\r\nhello\r\n            bulk string      ($-1\r\n = null bulk)
//! *2\r\n<frame><frame>       array            (*-1\r\n = null array)
//! ```

use d4py_sync::ByteBuf;

/// One RESP2 frame.
#[derive(Clone, PartialEq, Eq)]
pub enum Frame {
    /// `+...` — status reply.
    Simple(String),
    /// `-...` — error reply.
    Error(String),
    /// `:...` — integer reply.
    Integer(i64),
    /// `$...` — bulk string (binary safe).
    Bulk(Vec<u8>),
    /// `$-1` — null bulk string (Redis "nil").
    Null,
    /// `*...` — array of frames.
    Array(Vec<Frame>),
    /// `*-1` — null array (e.g. timed-out blocking read).
    NullArray,
}

impl Frame {
    /// Convenience: status `+OK`.
    pub fn ok() -> Frame {
        Frame::Simple("OK".to_string())
    }

    /// Convenience: a bulk string from text.
    pub fn bulk(s: impl Into<Vec<u8>>) -> Frame {
        Frame::Bulk(s.into())
    }

    /// Convenience: an `-ERR ...` error.
    pub fn error(msg: impl std::fmt::Display) -> Frame {
        Frame::Error(format!("ERR {msg}"))
    }

    /// True if this is an error frame.
    pub fn is_error(&self) -> bool {
        matches!(self, Frame::Error(_))
    }

    /// The frame as UTF-8 text, when it carries text.
    pub fn as_text(&self) -> Option<String> {
        match self {
            Frame::Simple(s) | Frame::Error(s) => Some(s.clone()),
            Frame::Bulk(b) => String::from_utf8(b.clone()).ok(),
            _ => None,
        }
    }

    /// The frame as an integer, when it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Frame::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// The frame's array elements, when it is an array.
    pub fn as_array(&self) -> Option<&[Frame]> {
        match self {
            Frame::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Frame {
    /// Renders bulk payloads as (lossy) text — frames are overwhelmingly
    /// textual and byte-list dumps make failures unreadable.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Frame::Simple(s) => write!(f, "Simple({s:?})"),
            Frame::Error(s) => write!(f, "Error({s:?})"),
            Frame::Integer(i) => write!(f, "Integer({i})"),
            Frame::Bulk(b) => write!(f, "Bulk({:?})", String::from_utf8_lossy(b)),
            Frame::Null => write!(f, "Null"),
            Frame::Array(items) => f.debug_list().entries(items).finish(),
            Frame::NullArray => write!(f, "NullArray"),
        }
    }
}

/// Errors from the RESP decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespError {
    /// Frame marker byte is not one of `+ - : $ *`.
    BadMarker(u8),
    /// A length or integer field failed to parse.
    BadInteger,
    /// Missing CRLF where one was required.
    BadTerminator,
    /// A declared bulk length is negative but not -1.
    BadLength(i64),
}

impl std::fmt::Display for RespError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RespError::BadMarker(b) => write!(f, "unexpected RESP marker byte 0x{b:02x}"),
            RespError::BadInteger => write!(f, "malformed RESP integer"),
            RespError::BadTerminator => write!(f, "missing CRLF terminator"),
            RespError::BadLength(n) => write!(f, "invalid RESP length {n}"),
        }
    }
}

impl std::error::Error for RespError {}

/// Encodes a frame onto `buf`.
pub fn encode(frame: &Frame, buf: &mut ByteBuf) {
    match frame {
        Frame::Simple(s) => {
            buf.put_u8(b'+');
            buf.put_slice(s.as_bytes());
            buf.put_slice(b"\r\n");
        }
        Frame::Error(s) => {
            buf.put_u8(b'-');
            buf.put_slice(s.as_bytes());
            buf.put_slice(b"\r\n");
        }
        Frame::Integer(i) => {
            buf.put_u8(b':');
            buf.put_slice(i.to_string().as_bytes());
            buf.put_slice(b"\r\n");
        }
        Frame::Bulk(b) => {
            buf.put_u8(b'$');
            buf.put_slice(b.len().to_string().as_bytes());
            buf.put_slice(b"\r\n");
            buf.put_slice(b);
            buf.put_slice(b"\r\n");
        }
        Frame::Null => buf.put_slice(b"$-1\r\n"),
        Frame::Array(items) => {
            buf.put_u8(b'*');
            buf.put_slice(items.len().to_string().as_bytes());
            buf.put_slice(b"\r\n");
            for item in items {
                encode(item, buf);
            }
        }
        Frame::NullArray => buf.put_slice(b"*-1\r\n"),
    }
}

/// Encodes a client command (array of bulk strings) — the only shape clients
/// send.
pub fn encode_command(args: &[&[u8]], buf: &mut ByteBuf) {
    let frame = Frame::Array(args.iter().map(|a| Frame::Bulk(a.to_vec())).collect());
    encode(&frame, buf);
}

/// Attempts to decode one frame from the front of `input`.
///
/// Returns `Ok(Some((frame, consumed)))` on success, `Ok(None)` when more
/// bytes are needed, `Err` on protocol violation.
pub fn decode(input: &[u8]) -> Result<Option<(Frame, usize)>, RespError> {
    let Some((&marker, rest)) = input.split_first() else {
        return Ok(None);
    };
    match marker {
        b'+' | b'-' | b':' => {
            let Some((line, line_len)) = read_line(rest) else {
                return Ok(None);
            };
            let consumed = 1 + line_len;
            let text = String::from_utf8_lossy(line).into_owned();
            let frame = match marker {
                b'+' => Frame::Simple(text),
                b'-' => Frame::Error(text),
                _ => Frame::Integer(text.parse().map_err(|_| RespError::BadInteger)?),
            };
            Ok(Some((frame, consumed)))
        }
        b'$' => {
            let Some((line, line_len)) = read_line(rest) else {
                return Ok(None);
            };
            let n: i64 = std::str::from_utf8(line)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or(RespError::BadInteger)?;
            if n == -1 {
                return Ok(Some((Frame::Null, 1 + line_len)));
            }
            if n < 0 {
                return Err(RespError::BadLength(n));
            }
            let n = n as usize;
            let body_start = 1 + line_len;
            if input.len() < body_start + n + 2 {
                return Ok(None);
            }
            let body = &input[body_start..body_start + n];
            if &input[body_start + n..body_start + n + 2] != b"\r\n" {
                return Err(RespError::BadTerminator);
            }
            Ok(Some((Frame::Bulk(body.to_vec()), body_start + n + 2)))
        }
        b'*' => {
            let Some((line, line_len)) = read_line(rest) else {
                return Ok(None);
            };
            let n: i64 = std::str::from_utf8(line)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or(RespError::BadInteger)?;
            if n == -1 {
                return Ok(Some((Frame::NullArray, 1 + line_len)));
            }
            if n < 0 {
                return Err(RespError::BadLength(n));
            }
            let mut consumed = 1 + line_len;
            let mut items = Vec::with_capacity((n as usize).min(64));
            for _ in 0..n {
                match decode(&input[consumed..])? {
                    Some((frame, used)) => {
                        items.push(frame);
                        consumed += used;
                    }
                    None => return Ok(None),
                }
            }
            Ok(Some((Frame::Array(items), consumed)))
        }
        other => Err(RespError::BadMarker(other)),
    }
}

/// Reads up to the next CRLF; returns (line content, bytes consumed incl.
/// CRLF) or `None` if no CRLF yet.
fn read_line(input: &[u8]) -> Option<(&[u8], usize)> {
    let pos = input.windows(2).position(|w| w == b"\r\n")?;
    Some((&input[..pos], pos + 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = ByteBuf::new();
        encode(&frame, &mut buf);
        let (decoded, consumed) = decode(&buf).unwrap().unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn simple_roundtrip() {
        roundtrip(Frame::Simple("OK".into()));
    }

    #[test]
    fn error_roundtrip() {
        roundtrip(Frame::Error("ERR something went wrong".into()));
    }

    #[test]
    fn integer_roundtrips() {
        roundtrip(Frame::Integer(0));
        roundtrip(Frame::Integer(-1));
        roundtrip(Frame::Integer(i64::MAX));
    }

    #[test]
    fn bulk_roundtrips() {
        roundtrip(Frame::Bulk(b"hello".to_vec()));
        roundtrip(Frame::Bulk(vec![]));
        roundtrip(Frame::Bulk(vec![0, 13, 10, 255])); // binary incl. CRLF bytes
    }

    #[test]
    fn null_and_null_array() {
        roundtrip(Frame::Null);
        roundtrip(Frame::NullArray);
    }

    #[test]
    fn nested_array_roundtrip() {
        roundtrip(Frame::Array(vec![
            Frame::Bulk(b"XADD".to_vec()),
            Frame::Integer(7),
            Frame::Array(vec![Frame::Simple("inner".into()), Frame::Null]),
        ]));
    }

    #[test]
    fn empty_array_roundtrip() {
        roundtrip(Frame::Array(vec![]));
    }

    #[test]
    fn incremental_decoding_waits_for_bytes() {
        let mut buf = ByteBuf::new();
        encode(&Frame::Bulk(b"hello world".to_vec()), &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                decode(&buf[..cut]).unwrap(),
                None,
                "cut={cut} should need more"
            );
        }
        assert!(decode(&buf).unwrap().is_some());
    }

    #[test]
    fn decode_reports_extra_bytes_via_consumed() {
        let mut buf = ByteBuf::new();
        encode(&Frame::Integer(5), &mut buf);
        let extra = buf.len();
        encode(&Frame::Integer(6), &mut buf);
        let (f1, c1) = decode(&buf).unwrap().unwrap();
        assert_eq!(f1, Frame::Integer(5));
        assert_eq!(c1, extra);
        let (f2, _) = decode(&buf[c1..]).unwrap().unwrap();
        assert_eq!(f2, Frame::Integer(6));
    }

    #[test]
    fn bad_marker_rejected() {
        assert_eq!(decode(b"!oops\r\n"), Err(RespError::BadMarker(b'!')));
    }

    #[test]
    fn bad_integer_rejected() {
        assert_eq!(decode(b":notanum\r\n"), Err(RespError::BadInteger));
    }

    #[test]
    fn bad_bulk_terminator_rejected() {
        assert_eq!(decode(b"$3\r\nabcXX"), Err(RespError::BadTerminator));
    }

    #[test]
    fn negative_length_rejected() {
        assert_eq!(decode(b"$-2\r\n"), Err(RespError::BadLength(-2)));
        assert_eq!(decode(b"*-5\r\n"), Err(RespError::BadLength(-5)));
    }

    #[test]
    fn encode_command_is_array_of_bulks() {
        let mut buf = ByteBuf::new();
        encode_command(&[b"SET", b"k", b"v"], &mut buf);
        let (frame, _) = decode(&buf).unwrap().unwrap();
        assert_eq!(
            frame,
            Frame::Array(vec![
                Frame::Bulk(b"SET".to_vec()),
                Frame::Bulk(b"k".to_vec()),
                Frame::Bulk(b"v".to_vec()),
            ])
        );
    }

    #[test]
    fn frame_accessors() {
        assert!(Frame::error("x").is_error());
        assert_eq!(Frame::Integer(4).as_int(), Some(4));
        assert_eq!(Frame::bulk("hi").as_text(), Some("hi".into()));
        assert_eq!(Frame::Array(vec![Frame::Null]).as_array().unwrap().len(), 1);
        assert_eq!(Frame::ok(), Frame::Simple("OK".into()));
    }
}
