//! # redis-lite — an in-memory Redis server, from scratch
//!
//! The substrate behind the paper's Redis mappings (§2.3): an in-memory data
//! structure store speaking RESP2 over TCP, implementing the command subset
//! dispel4py's dynamic and hybrid mappings need — strings, lists, hashes,
//! sets, and crucially **streams with consumer groups** (XADD / XREADGROUP /
//! XACK / XPENDING / XINFO, with per-consumer idle-time tracking that the
//! `dyn_auto_redis` auto-scaler monitors).
//!
//! Layers:
//!
//! * [`resp`] — the wire protocol (incremental decoder + encoder);
//! * [`store`] — the keyspace: typed values, lazy expiry, streams;
//! * [`commands`] — the command handlers, pure functions over the store;
//! * [`engine`] — shared state + blocking semantics (BLPOP, XREAD BLOCK);
//! * [`server`] — the TCP front end (event-driven reactor by default, with
//!   a thread-per-connection mode kept as the ablation baseline);
//! * [`client`] — a blocking client, over TCP or in-process.
//!
//! ```
//! use redis_lite::server::Server;
//! use redis_lite::client::{Client, RedisOps};
//!
//! let server = Server::start(0).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! client.set(b"greeting", b"hello").unwrap();
//! assert_eq!(client.get(b"greeting").unwrap(), Some(b"hello".to_vec()));
//! ```

#![warn(missing_docs)]

pub mod aof;
pub mod client;
pub mod commands;
pub mod engine;
pub(crate) mod reactor;
pub mod resp;
pub mod server;
pub mod store;

pub use aof::{Aof, FsyncPolicy};
pub use client::{Client, ClientError, Connection, InProcClient, RedisOps};
pub use engine::Shared;
pub use server::{Server, ServerConfig, ServerMode};
