//! The TCP server: RESP over a real socket, one thread per connection.
//!
//! This is the deployment shape the paper's Redis mappings talk to — going
//! through a genuine wire protocol is what makes `dyn_redis` measurably
//! heavier than `dyn_multi` (§5.6's Multiprocessing-vs-Redis finding).

use crate::engine::Shared;
use crate::resp::{self, Frame};
use d4py_sync::ByteBuf;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A running redis-lite server.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds to `127.0.0.1:port` (`port` 0 picks a free port) and starts
    /// accepting connections on a background thread.
    pub fn start(port: u16) -> std::io::Result<Server> {
        Self::start_shared(port, Arc::new(Shared::new()))
    }

    /// [`start`](Self::start) with append-only-file persistence: the log at
    /// `aof_path` is replayed on startup and extended by every write.
    pub fn start_with_aof(
        port: u16,
        aof_path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Server> {
        let shared = Shared::with_aof(aof_path, crate::aof::FsyncPolicy::No)?;
        Self::start_shared(port, Arc::new(shared))
    }

    fn start_shared(port: u16, shared: Arc<Shared>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let accept_shared = shared.clone();
        let accept_stop = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let shared = accept_shared.clone();
                        std::thread::spawn(move || handle_connection(stream, &shared));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(Server {
            shared,
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (for in-process clients and tests).
    pub fn shared(&self) -> Arc<Shared> {
        self.shared.clone()
    }

    /// Stops accepting new connections. Existing connections die when their
    /// peers disconnect.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop so it notices the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let mut inbox = ByteBuf::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        // Decode every complete frame already buffered.
        loop {
            match resp::decode(&inbox) {
                Ok(Some((frame, used))) => {
                    let _ = inbox.split_to(used);
                    let reply = match command_args(&frame) {
                        Some(args) => shared.dispatch(&args),
                        None => Frame::error("protocol error: expected array of bulk strings"),
                    };
                    let mut out = ByteBuf::with_capacity(128);
                    resp::encode(&reply, &mut out);
                    if stream.write_all(&out).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    let mut out = ByteBuf::new();
                    resp::encode(&Frame::error("protocol error"), &mut out);
                    let _ = stream.write_all(&out);
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return, // peer closed
            Ok(n) => inbox.extend_from_slice(&chunk[..n]),
        }
    }
}

/// Extracts command arguments from a client frame (array of bulk strings).
fn command_args(frame: &Frame) -> Option<Vec<Vec<u8>>> {
    let items = frame.as_array()?;
    let mut args = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Frame::Bulk(b) => args.push(b.clone()),
            Frame::Simple(s) => args.push(s.clone().into_bytes()),
            _ => return None,
        }
    }
    Some(args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, Connection, RedisOps};
    use std::time::Duration;

    #[test]
    fn server_responds_over_tcp() {
        let server = Server::start(0).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.ping().unwrap(), "PONG");
        client.set(b"k", b"v").unwrap();
        assert_eq!(client.get(b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn multiple_clients_share_keyspace() {
        let server = Server::start(0).unwrap();
        let mut c1 = Client::connect(server.addr()).unwrap();
        let mut c2 = Client::connect(server.addr()).unwrap();
        c1.set(b"shared", b"yes").unwrap();
        assert_eq!(c2.get(b"shared").unwrap(), Some(b"yes".to_vec()));
    }

    #[test]
    fn blocking_pop_across_connections() {
        let server = Server::start(0).unwrap();
        let addr = server.addr();
        let waiter = std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.request(&[b"BLPOP".as_ref(), b"jobs".as_ref(), b"2".as_ref()])
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        let mut pusher = Client::connect(addr).unwrap();
        pusher
            .request(&[b"RPUSH".as_ref(), b"jobs".as_ref(), b"task1".as_ref()])
            .unwrap();
        let reply = waiter.join().unwrap();
        assert!(format!("{reply:?}").contains("task1"));
    }

    #[test]
    fn pipelined_commands_all_answered() {
        let server = Server::start(0).unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        // Send several commands before reading any reply.
        for i in 0..10 {
            c.set(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        for i in 0..10 {
            assert_eq!(
                c.get(format!("k{i}").as_bytes()).unwrap(),
                Some(b"v".to_vec())
            );
        }
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = Server::start(0).unwrap();
        let addr = server.addr();
        server.shutdown();
        std::thread::sleep(Duration::from_millis(10));
        // Either the connect fails outright or the connection is dead.
        if let Ok(mut c) = Client::connect(addr) {
            assert!(c.ping().is_err());
        }
    }
}
