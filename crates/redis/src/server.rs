//! The TCP server: RESP over a real socket.
//!
//! This is the deployment shape the paper's Redis mappings talk to — going
//! through a genuine wire protocol is what makes `dyn_redis` measurably
//! heavier than `dyn_multi` (§5.6's Multiprocessing-vs-Redis finding).
//!
//! Two front ends share every other layer (parser, engine, store):
//!
//! * [`ServerMode::Reactor`] (default) — a fixed small worker set sweeps all
//!   connections with nonblocking I/O; blocking commands park as connection
//!   state, not threads. See [`crate::reactor`].
//! * [`ServerMode::ThreadPerConn`] — the classic one-thread-per-client shape,
//!   kept as the ablation baseline for the connection-scaling bench.

use crate::engine::Shared;
use crate::reactor::{self, Conn, WorkerShared};
use crate::resp::{self, CommandParser, Frame};
use d4py_sync::{ByteBuf, Mutex};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Live connections, keyed by a monotonic id. Each entry holds a
/// `try_clone` of the handler's stream so `shutdown()` can close the
/// socket out from under a blocked read; the owner removes its own
/// entry on exit.
#[derive(Default)]
struct ConnTable {
    next_id: AtomicU64,
    live: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnTable {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.live.lock().insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.live.lock().remove(&id);
    }

    /// Closes every tracked socket, returning how many were severed.
    /// Owners blocked in `read` observe EOF/error and exit on their own.
    fn close_all(&self) -> usize {
        let mut dropped = 0;
        for (_, sock) in self.live.lock().drain() {
            let _ = sock.shutdown(Shutdown::Both);
            dropped += 1;
        }
        dropped
    }

    fn len(&self) -> usize {
        self.live.lock().len()
    }
}

/// Whether an `accept(2)` failure is a per-connection hiccup the loop
/// should ride out, as opposed to a listener-is-gone condition.
fn accept_error_is_transient(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind::*;
    matches!(
        kind,
        // The peer reset before we picked the connection up.
        ConnectionAborted | ConnectionReset
            // Interrupted syscall / spurious readiness.
            | Interrupted | WouldBlock | TimedOut
            // Out of fds (EMFILE/ENFILE surfaces as these): pressure
            // passes when handlers finish; killing the listener would
            // turn a spike into an outage.
            | OutOfMemory | Other
    )
}

/// Which connection-handling architecture the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// Event-driven: a fixed worker set sweeps all connections (default).
    Reactor,
    /// One OS thread per client — the ablation baseline.
    ThreadPerConn,
}

/// Tunables for [`Server::start_with`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Connection-handling architecture.
    pub mode: ServerMode,
    /// Hard cap on simultaneous connections; excess clients get
    /// `-ERR max number of clients reached` and an immediate close.
    pub max_connections: usize,
    /// Reactor-only: close connections with no protocol activity for this
    /// long (half-open peers, crashed clients). `None` disables reaping.
    /// Connections parked in a blocking command are never reaped.
    pub idle_timeout: Option<Duration>,
    /// Reactor-only: worker thread count; `0` = `min(4, parallelism)`.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            mode: ServerMode::Reactor,
            max_connections: 4096,
            idle_timeout: Some(Duration::from_secs(60)),
            workers: 0,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        cores.clamp(1, 4)
    }
}

/// A running redis-lite server.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnTable>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    worker_shared: Vec<Arc<WorkerShared>>,
}

impl Server {
    /// Binds to `127.0.0.1:port` (`port` 0 picks a free port) and starts
    /// serving in the default (reactor) mode on background threads.
    pub fn start(port: u16) -> std::io::Result<Server> {
        Self::start_with(port, ServerConfig::default())
    }

    /// [`start`](Self::start) with explicit architecture and limits.
    pub fn start_with(port: u16, config: ServerConfig) -> std::io::Result<Server> {
        Self::start_shared(port, Arc::new(Shared::new()), config)
    }

    /// [`start`](Self::start) with append-only-file persistence: the log at
    /// `aof_path` is replayed on startup and extended by every write.
    pub fn start_with_aof(
        port: u16,
        aof_path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Server> {
        let shared = Shared::with_aof(aof_path, crate::aof::FsyncPolicy::No)?;
        Self::start_shared(port, Arc::new(shared), ServerConfig::default())
    }

    fn start_shared(
        port: u16,
        shared: Arc<Shared>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnTable::default());

        let mut workers = Vec::new();
        let mut worker_shared = Vec::new();
        if config.mode == ServerMode::Reactor {
            for _ in 0..config.effective_workers() {
                let ws = Arc::new(WorkerShared::new());
                let w_shared = shared.clone();
                let w_ws = ws.clone();
                let w_stop = stop.clone();
                let w_conns = conns.clone();
                workers.push(std::thread::spawn(move || {
                    reactor::worker_loop(w_shared, w_ws, w_stop, config.idle_timeout, |id| {
                        w_conns.deregister(id)
                    });
                }));
                worker_shared.push(ws);
            }
        }

        let accept_shared = shared.clone();
        let accept_stop = stop.clone();
        let accept_conns = conns.clone();
        let accept_workers = worker_shared.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut next_worker = 0usize;
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        let Some(id) = accept_conns.register(&stream) else {
                            continue; // try_clone failed: drop the socket
                        };
                        if accept_conns.len() > config.max_connections {
                            // Same wire behaviour as Redis at maxclients.
                            let mut stream = stream;
                            let _ = stream.write_all(b"-ERR max number of clients reached\r\n");
                            let _ = stream.shutdown(Shutdown::Both);
                            accept_conns.deregister(id);
                            continue;
                        }
                        match config.mode {
                            ServerMode::Reactor => {
                                if stream.set_nonblocking(true).is_err() {
                                    accept_conns.deregister(id);
                                    continue;
                                }
                                let target = &accept_workers[next_worker];
                                next_worker = (next_worker + 1) % accept_workers.len();
                                target.register(Conn::new(id, stream));
                            }
                            ServerMode::ThreadPerConn => {
                                let shared = accept_shared.clone();
                                let conns = accept_conns.clone();
                                std::thread::spawn(move || {
                                    handle_connection(stream, &shared);
                                    conns.deregister(id);
                                });
                            }
                        }
                    }
                    // One refused/reset/fd-starved accept must not take the
                    // whole listener down; back off briefly and keep serving.
                    Err(e) if accept_error_is_transient(e.kind()) => {
                        // sleep: accept backoff under transient error (EMFILE
                        // et al.) — gives in-flight handlers time to release
                        // fds before the next accept attempt.
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break, // listener itself is gone
                }
            }
        });

        Ok(Server {
            shared,
            addr,
            stop,
            conns,
            accept_thread: Some(accept_thread),
            workers,
            worker_shared,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (for in-process clients and tests).
    pub fn shared(&self) -> Arc<Shared> {
        self.shared.clone()
    }

    /// Number of currently tracked live connections (tests/ops visibility).
    pub fn live_connections(&self) -> usize {
        self.conns.len()
    }

    /// Chaos knob: force-closes every live connection while the server
    /// keeps accepting new ones. Clients observe exactly what a network
    /// flake looks like — a dropped connection mid-session — and must
    /// reconnect. Returns how many connections were severed.
    pub fn drop_connections(&self) -> usize {
        self.conns.close_all()
    }

    /// Stops accepting new connections, severs every live one (including
    /// connections parked in a blocking command), and joins all server
    /// threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop so it notices the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.conns.close_all();
        for ws in &self.worker_shared {
            ws.poke();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The thread-per-connection handler: blocking reads, one thread's full
/// attention per client. Shares the resumable parser with the reactor, so
/// both front ends speak byte-identical RESP.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let mut parser = CommandParser::new();
    let mut out = ByteBuf::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        // Execute every complete command already buffered, accumulating the
        // replies, then answer the whole pipeline in ONE write — a
        // pipelined client costs this loop one syscall per burst, not one
        // per command.
        out.clear();
        match parser.drain() {
            Ok(cmds) => {
                for args in cmds {
                    resp::encode(&shared.dispatch(&args), &mut out);
                }
            }
            Err(_) => {
                resp::encode(&Frame::error("protocol error"), &mut out);
                let _ = stream.write_all(&out);
                return;
            }
        }
        if !out.is_empty() && stream.write_all(&out).is_err() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return, // peer closed
            Ok(n) => parser.feed(&chunk[..n]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, Connection, RedisOps};
    use std::time::Duration;

    fn both_modes(test: impl Fn(ServerConfig)) {
        for mode in [ServerMode::Reactor, ServerMode::ThreadPerConn] {
            test(ServerConfig {
                mode,
                ..ServerConfig::default()
            });
        }
    }

    #[test]
    fn server_responds_over_tcp() {
        both_modes(|config| {
            let server = Server::start_with(0, config).unwrap();
            let mut client = Client::connect(server.addr()).unwrap();
            assert_eq!(client.ping().unwrap(), "PONG");
            client.set(b"k", b"v").unwrap();
            assert_eq!(client.get(b"k").unwrap(), Some(b"v".to_vec()));
        });
    }

    #[test]
    fn multiple_clients_share_keyspace() {
        both_modes(|config| {
            let server = Server::start_with(0, config).unwrap();
            let mut c1 = Client::connect(server.addr()).unwrap();
            let mut c2 = Client::connect(server.addr()).unwrap();
            c1.set(b"shared", b"yes").unwrap();
            assert_eq!(c2.get(b"shared").unwrap(), Some(b"yes".to_vec()));
        });
    }

    #[test]
    fn blocking_pop_across_connections() {
        both_modes(|config| {
            let server = Server::start_with(0, config).unwrap();
            let addr = server.addr();
            let waiter = std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.request(&[b"BLPOP".as_ref(), b"jobs".as_ref(), b"2".as_ref()])
                    .unwrap()
            });
            std::thread::sleep(Duration::from_millis(30));
            let mut pusher = Client::connect(addr).unwrap();
            pusher
                .request(&[b"RPUSH".as_ref(), b"jobs".as_ref(), b"task1".as_ref()])
                .unwrap();
            let reply = waiter.join().unwrap();
            assert!(format!("{reply:?}").contains("task1"));
        });
    }

    #[test]
    fn pipelined_commands_all_answered() {
        // Genuinely pipelined: every command hits the socket in ONE write
        // before a single reply byte is read, then all replies are decoded
        // in order from whatever chunking the kernel hands back.
        both_modes(|config| {
            let server = Server::start_with(0, config).unwrap();
            let mut sock = std::net::TcpStream::connect(server.addr()).unwrap();
            sock.set_nodelay(true).unwrap();

            let n = 20usize;
            let mut wire = ByteBuf::new();
            for i in 0..n / 2 {
                let key = format!("pk{i}");
                resp::encode_command(
                    &[b"SET", key.as_bytes(), format!("v{i}").as_bytes()],
                    &mut wire,
                );
            }
            for i in 0..n / 2 {
                let key = format!("pk{i}");
                resp::encode_command(&[b"GET", key.as_bytes()], &mut wire);
            }
            sock.write_all(&wire).unwrap();

            let mut inbox = ByteBuf::new();
            let mut chunk = [0u8; 1024];
            let mut replies = Vec::new();
            while replies.len() < n {
                match resp::decode(&inbox).unwrap() {
                    Some((frame, used)) => {
                        let _ = inbox.split_to(used);
                        replies.push(frame);
                    }
                    None => {
                        let got = sock.read(&mut chunk).unwrap();
                        assert!(got > 0, "server closed mid-pipeline");
                        inbox.extend_from_slice(&chunk[..got]);
                    }
                }
            }
            for reply in &replies[..n / 2] {
                assert_eq!(*reply, Frame::ok());
            }
            for (i, reply) in replies[n / 2..].iter().enumerate() {
                assert_eq!(*reply, Frame::bulk(format!("v{i}")), "reply {i}");
            }
        });
    }

    #[test]
    fn shutdown_stops_accepting() {
        both_modes(|config| {
            let mut server = Server::start_with(0, config).unwrap();
            let addr = server.addr();
            server.shutdown();
            std::thread::sleep(Duration::from_millis(10));
            // Either the connect fails outright or the connection is dead.
            if let Ok(mut c) = Client::connect(addr) {
                assert!(c.ping().is_err());
            }
        });
    }

    #[test]
    fn shutdown_closes_live_connections() {
        // Regression: shutdown() used to only stop the accept loop — an
        // already-connected client kept a working session against a
        // detached handler thread that leaked until the peer hung up.
        both_modes(|config| {
            let mut server = Server::start_with(0, config).unwrap();
            let mut c = Client::connect(server.addr()).unwrap();
            assert_eq!(c.ping().unwrap(), "PONG");
            assert_eq!(server.live_connections(), 1);
            server.shutdown();
            assert!(
                c.ping().is_err(),
                "live connection must be severed by shutdown"
            );
            assert_eq!(server.live_connections(), 0);
        });
    }

    #[test]
    fn drop_connections_severs_but_keeps_accepting() {
        both_modes(|config| {
            let server = Server::start_with(0, config).unwrap();
            let mut c = Client::connect(server.addr()).unwrap();
            assert_eq!(c.ping().unwrap(), "PONG");
            assert_eq!(server.drop_connections(), 1);
            // The client's reconnect-retry makes an idempotent PING recover
            // transparently; a raw socket sees the severed session.
            let mut fresh = Client::connect(server.addr()).unwrap();
            assert_eq!(fresh.ping().unwrap(), "PONG", "server must keep accepting");
        });
    }

    #[test]
    fn accept_error_classifier() {
        use std::io::ErrorKind;
        for kind in [
            ErrorKind::ConnectionAborted,
            ErrorKind::ConnectionReset,
            ErrorKind::Interrupted,
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
        ] {
            assert!(accept_error_is_transient(kind), "{kind:?}");
        }
        for kind in [ErrorKind::InvalidInput, ErrorKind::NotFound] {
            assert!(!accept_error_is_transient(kind), "{kind:?}");
        }
    }

    #[test]
    fn server_survives_peer_resets_and_keeps_accepting() {
        // Connections that vanish immediately (the closest portable stand-in
        // for ECONNABORTED churn) must not kill the accept loop.
        both_modes(|config| {
            let server = Server::start_with(0, config).unwrap();
            for _ in 0..16 {
                drop(std::net::TcpStream::connect(server.addr()).unwrap());
            }
            let mut c = Client::connect(server.addr()).unwrap();
            assert_eq!(c.ping().unwrap(), "PONG");
        });
    }
}
