//! The event-driven connection reactor: many sockets per thread.
//!
//! The thread-per-connection server pays one OS thread (stack, scheduler
//! slot, context switches) per client — fine at 16 connections, ruinous at
//! 1024. The reactor inverts that: a fixed, small set of worker threads owns
//! every connection, each as a small **state machine** (reading → executing →
//! writing), and sweeps them with nonblocking I/O. No `libc`, no epoll: pure
//! std `set_nonblocking` readiness scanning, with an adaptive idle strategy
//! (resweep → yield spins → 1 ms park) so an idle server burns ~no CPU while
//! a busy one never sleeps.
//!
//! Blocking commands (`BLPOP`, `XREAD BLOCK ...`) do not park worker threads.
//! The engine's non-parking surface ([`Shared::dispatch_nonblocking`]) hands
//! back a [`crate::engine::BlockedCmd`]; the connection holds it as state and
//! the sweep retries it via [`Shared::poll_blocked`] — a load of the global
//! write epoch when idle, so 1024 parked `BLPOP`s cost 1024 atomic loads per
//! sweep, not 1024 parked threads.
//!
//! Pipelining is first-class: each readable burst is fed to the resumable
//! [`CommandParser`], every complete command executes, and all replies leave
//! in one write. Replies that outpace the peer accumulate in a bounded
//! outbox; past [`WRITE_BACKPRESSURE`] the connection stops reading until the
//! peer drains — slow consumers throttle themselves, not the server.

use crate::engine::{BlockedCmd, Dispatch, Shared};
use crate::resp::{self, CommandParser, Frame};
use d4py_sync::{ByteBuf, Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stop reading from a connection whose unflushed replies exceed this many
/// bytes; reads resume once the peer drains below it.
pub(crate) const WRITE_BACKPRESSURE: usize = 1 << 20;

/// Per-connection read budget per sweep — bounds how long one firehose
/// client can monopolise a worker before its neighbours get a turn.
const READ_BUDGET: usize = 64 * 1024;

/// Consecutive empty sweeps a worker spin-yields before parking.
const IDLE_SPINS: u32 = 64;

/// How long a worker parks when there is nothing to do. This bounds the
/// latency of two things that arrive without a readiness signal: bytes on an
/// idle socket, and engine writes that unblock a parked command.
const PARK: Duration = Duration::from_millis(1);

/// One client connection as a state machine owned by a single worker.
pub(crate) struct Conn {
    pub(crate) id: u64,
    stream: TcpStream,
    parser: CommandParser,
    /// Parsed but not yet executed commands (a pipeline queued behind a
    /// blocking command waits here — RESP replies must stay in order).
    pending: VecDeque<Vec<d4py_sync::SharedBuf>>,
    /// A blocking command waiting for data; replies stall behind it.
    blocked: Option<BlockedCmd>,
    outbox: ByteBuf,
    out_pos: usize,
    last_activity: Instant,
    dead: bool,
}

impl Conn {
    pub(crate) fn new(id: u64, stream: TcpStream) -> Conn {
        Conn {
            id,
            stream,
            parser: CommandParser::new(),
            pending: VecDeque::new(),
            blocked: None,
            outbox: ByteBuf::with_capacity(4096),
            out_pos: 0,
            last_activity: Instant::now(),
            dead: false,
        }
    }

    fn backlog(&self) -> usize {
        self.outbox.len() - self.out_pos
    }

    /// Writes as much buffered output as the socket accepts right now.
    fn flush(&mut self) -> bool {
        let mut progressed = false;
        while self.out_pos < self.outbox.len() {
            match self.stream.write(&self.outbox[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.out_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos == self.outbox.len() {
            self.outbox.clear();
            self.out_pos = 0;
        } else if self.out_pos >= 32 * 1024 {
            // Reclaim the flushed prefix so a slow peer doesn't pin it.
            let _ = self.outbox.split_to(self.out_pos);
            self.out_pos = 0;
        }
        if progressed {
            self.last_activity = Instant::now();
        }
        progressed
    }

    /// Reads whatever the socket has ready, up to the fairness budget.
    fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        let mut read = 0usize;
        while read < READ_BUDGET && self.backlog() < WRITE_BACKPRESSURE {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.parser.feed(&chunk[..n]);
                    read += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if read > 0 {
            self.last_activity = Instant::now();
        }
        read > 0
    }

    /// Executes everything executable: retries a blocked command, then runs
    /// queued commands until one blocks or the queue drains.
    fn execute(&mut self, shared: &Shared) -> bool {
        let mut progressed = false;
        if let Some(blocked) = &mut self.blocked {
            if let Some(frame) = shared.poll_blocked(blocked) {
                resp::encode(&frame, &mut self.outbox);
                self.blocked = None;
                self.last_activity = Instant::now();
                progressed = true;
            }
        }
        while self.blocked.is_none() {
            let Some(args) = self.pending.pop_front() else {
                break;
            };
            match shared.dispatch_nonblocking(&args) {
                Dispatch::Ready(frame) => resp::encode(&frame, &mut self.outbox),
                Dispatch::Blocked(b) => self.blocked = Some(b),
            }
            self.last_activity = Instant::now();
            progressed = true;
        }
        progressed
    }

    /// One full sweep: flush → execute → read → parse → execute → flush.
    /// Returns true if any forward progress happened.
    pub(crate) fn sweep(&mut self, shared: &Shared) -> bool {
        let mut progressed = self.flush();
        progressed |= self.execute(shared);
        progressed |= self.fill();
        match self.parser.drain() {
            Ok(cmds) => {
                for args in cmds {
                    self.pending.push_back(args);
                }
            }
            Err(_) => {
                // Protocol garbage: answer with an error, best-effort flush,
                // and hang up — the stream is unrecoverable past this point.
                resp::encode(&Frame::error("protocol error"), &mut self.outbox);
                self.flush();
                self.dead = true;
                return true;
            }
        }
        progressed |= self.execute(shared);
        progressed |= self.flush();
        progressed
    }

    /// True once the peer vanished or the connection sat protocol-idle
    /// longer than `idle_timeout`. A parked blocking command is legitimate
    /// idleness (BLPOP 0 may wait forever) and is never reaped.
    pub(crate) fn should_close(&self, idle_timeout: Option<Duration>) -> bool {
        if self.dead {
            return true;
        }
        match idle_timeout {
            Some(limit) => {
                self.blocked.is_none()
                    && self.pending.is_empty()
                    && self.backlog() == 0
                    && self.last_activity.elapsed() > limit
            }
            None => false,
        }
    }
}

/// The handoff point between the accept thread and one worker.
pub(crate) struct WorkerShared {
    inbox: Mutex<Vec<Conn>>,
    signal: Condvar,
}

impl WorkerShared {
    pub(crate) fn new() -> WorkerShared {
        WorkerShared {
            inbox: Mutex::new(Vec::new()),
            signal: Condvar::new(),
        }
    }

    /// Hands a fresh connection to this worker and wakes it.
    pub(crate) fn register(&self, conn: Conn) {
        self.inbox.lock().push(conn);
        self.signal.notify_one();
    }

    /// Wakes the worker (shutdown path).
    pub(crate) fn poke(&self) {
        self.signal.notify_one();
    }

    fn drain(&self) -> Vec<Conn> {
        let mut q = self.inbox.lock();
        std::mem::take(&mut *q)
    }

    fn park(&self) {
        let mut q = self.inbox.lock();
        if q.is_empty() {
            let _ = self.signal.wait_for(&mut q, PARK);
        }
    }
}

/// The body of one reactor worker thread: sweep owned connections until
/// `stop`, adaptively idling when nothing moves.
pub(crate) fn worker_loop(
    shared: Arc<Shared>,
    ws: Arc<WorkerShared>,
    stop: Arc<AtomicBool>,
    idle_timeout: Option<Duration>,
    mut on_close: impl FnMut(u64),
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut idle_spins = 0u32;
    loop {
        let mut progressed = false;
        let fresh = ws.drain();
        if !fresh.is_empty() {
            progressed = true;
            conns.extend(fresh);
        }
        for conn in &mut conns {
            progressed |= conn.sweep(&shared);
        }
        let before = conns.len();
        conns.retain(|c| {
            let close = c.should_close(idle_timeout);
            if close {
                on_close(c.id);
            }
            !close
        });
        progressed |= conns.len() != before;

        if stop.load(Ordering::SeqCst) {
            // Drain: parked BLOCK waiters and live sessions alike are
            // severed; sockets close when `conns` drops.
            for conn in &conns {
                on_close(conn.id);
            }
            return;
        }
        if progressed {
            idle_spins = 0;
            continue;
        }
        if idle_spins < IDLE_SPINS {
            idle_spins += 1;
            std::thread::yield_now();
            continue;
        }
        ws.park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        (client, server)
    }

    #[test]
    fn conn_answers_a_command_in_one_sweep() {
        let shared = Shared::new();
        let (mut client, server) = pair();
        let mut conn = Conn::new(0, server);
        client.write_all(b"*1\r\n$4\r\nPING\r\n").expect("write");
        // Give the loopback a moment to deliver.
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut reply = Vec::new();
        client.set_nonblocking(true).expect("nonblocking");
        while Instant::now() < deadline && !reply.ends_with(b"+PONG\r\n") {
            conn.sweep(&shared);
            let mut chunk = [0u8; 64];
            if let Ok(n) = client.read(&mut chunk) {
                reply.extend_from_slice(&chunk[..n]);
            }
        }
        assert_eq!(reply, b"+PONG\r\n");
    }

    #[test]
    fn pipeline_queued_behind_blocked_command_stays_ordered() {
        let shared = Shared::new();
        let (mut client, server) = pair();
        let mut conn = Conn::new(0, server);
        // BLPOP (blocks) then PING in one burst: PING's reply must come
        // after BLPOP's, in command order.
        client
            .write_all(b"*3\r\n$5\r\nBLPOP\r\n$1\r\nq\r\n$1\r\n0\r\n*1\r\n$4\r\nPING\r\n")
            .expect("write");
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline && conn.blocked.is_none() {
            conn.sweep(&shared);
        }
        assert!(conn.blocked.is_some(), "BLPOP must park the connection");
        assert_eq!(conn.pending.len(), 1, "PING waits behind the block");
        assert_eq!(conn.backlog(), 0, "no reply may be emitted yet");

        // Unblock it.
        let args: Vec<d4py_sync::SharedBuf> = ["RPUSH", "q", "x"]
            .iter()
            .map(|p| d4py_sync::SharedBuf::from(p.as_bytes()))
            .collect();
        shared.dispatch(&args);
        client.set_nonblocking(true).expect("nonblocking");
        let mut reply = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline && !reply.ends_with(b"+PONG\r\n") {
            conn.sweep(&shared);
            let mut chunk = [0u8; 256];
            if let Ok(n) = client.read(&mut chunk) {
                reply.extend_from_slice(&chunk[..n]);
            }
        }
        let text = String::from_utf8_lossy(&reply);
        let blpop_at = text.find("$1\r\nx").expect("BLPOP reply present");
        let ping_at = text.find("+PONG").expect("PING reply present");
        assert!(
            blpop_at < ping_at,
            "replies must keep command order: {text}"
        );
    }

    #[test]
    fn peer_close_marks_conn_dead() {
        let shared = Shared::new();
        let (client, server) = pair();
        let mut conn = Conn::new(0, server);
        drop(client);
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline && !conn.dead {
            conn.sweep(&shared);
        }
        assert!(conn.should_close(None));
    }

    #[test]
    fn protocol_garbage_gets_error_then_close() {
        let shared = Shared::new();
        let (mut client, server) = pair();
        let mut conn = Conn::new(0, server);
        client.write_all(b"!!not resp\r\n").expect("write");
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline && !conn.dead {
            conn.sweep(&shared);
        }
        assert!(conn.dead);
        client.set_nonblocking(true).expect("nonblocking");
        std::thread::sleep(Duration::from_millis(10));
        let mut chunk = [0u8; 256];
        let n = client.read(&mut chunk).unwrap_or(0);
        assert!(
            String::from_utf8_lossy(&chunk[..n]).contains("protocol error"),
            "client should see the protocol error before the close"
        );
    }

    #[test]
    fn idle_conn_is_reaped_but_blocked_conn_is_not() {
        let shared = Shared::new();
        let (mut idle_client, idle_server) = pair();
        let idle = Conn::new(0, idle_server);
        let (mut blocked_client, blocked_server) = pair();
        let mut blocked = Conn::new(1, blocked_server);
        blocked_client
            .write_all(b"*3\r\n$5\r\nBLPOP\r\n$1\r\nq\r\n$1\r\n0\r\n")
            .expect("write");
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline && blocked.blocked.is_none() {
            blocked.sweep(&shared);
        }
        std::thread::sleep(Duration::from_millis(30));
        let limit = Some(Duration::from_millis(20));
        assert!(idle.should_close(limit), "half-open conn must be reaped");
        assert!(
            !blocked.should_close(limit),
            "a parked BLPOP is legitimate idleness"
        );
        let _ = idle_client.write(b"");
    }
}
