//! Redis Streams: append-only logs with consumer groups.
//!
//! The data type dispel4py's Redis mappings are built on. Implements the
//! semantics the paper relies on:
//!
//! * entry IDs `<ms>-<seq>`, auto-generated monotonically by `XADD *`;
//! * range reads (`XRANGE`) and cursor reads (`XREAD`);
//! * consumer groups: a shared cursor (`last_delivered`), per-entry pending
//!   lists (PEL) with delivery counts, `XACK`, and per-consumer metadata —
//!   crucially the **idle time** that `dyn_auto_redis`'s monitoring strategy
//!   samples via `XINFO CONSUMERS`.

use d4py_sync::SharedBuf;
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// A stream entry identifier: milliseconds timestamp + sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId {
    /// Millisecond component.
    pub ms: u64,
    /// Sequence component (disambiguates entries in the same millisecond).
    pub seq: u64,
}

impl StreamId {
    /// The smallest id (`0-0`).
    pub const MIN: StreamId = StreamId { ms: 0, seq: 0 };
    /// The largest id (`u64::MAX-u64::MAX`).
    pub const MAX: StreamId = StreamId {
        ms: u64::MAX,
        seq: u64::MAX,
    };

    /// The next id after `self` (saturating).
    pub fn next(self) -> StreamId {
        if self.seq == u64::MAX {
            StreamId {
                ms: self.ms.saturating_add(1),
                seq: 0,
            }
        } else {
            StreamId {
                ms: self.ms,
                seq: self.seq + 1,
            }
        }
    }

    /// Parses `"ms-seq"`, or bare `"ms"` with `default_seq` as the sequence
    /// (XRANGE allows `"5"` to mean `5-0` at the start and `5-MAX` at the
    /// end of a range).
    pub fn parse(s: &str, default_seq: u64) -> Option<StreamId> {
        match s.split_once('-') {
            Some((ms, seq)) => Some(StreamId {
                ms: ms.parse().ok()?,
                seq: seq.parse().ok()?,
            }),
            None => Some(StreamId {
                ms: s.parse().ok()?,
                seq: default_seq,
            }),
        }
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}", self.ms, self.seq)
    }
}

/// Field-value pairs of one entry. The [`SharedBuf`] halves alias the
/// network read buffer the entry arrived in, so storing an entry is a
/// refcount bump, not a payload copy.
pub type EntryBody = Vec<(SharedBuf, SharedBuf)>;

/// A pending (delivered but unacknowledged) entry in a consumer group.
#[derive(Debug, Clone)]
pub struct PendingEntry {
    /// Consumer the entry was last delivered to.
    pub consumer: String,
    /// Time of last delivery.
    pub delivered_at: Instant,
    /// Number of deliveries (1 on first read; grows on re-delivery).
    pub delivery_count: u64,
}

/// Per-consumer metadata in a group.
#[derive(Debug, Clone)]
pub struct Consumer {
    /// Last time this consumer successfully read or acked — the basis of the
    /// *idle time* metric the auto-scaler monitors.
    pub last_active: Instant,
    /// Entries currently pending for this consumer.
    pub pending: u64,
}

/// A consumer group over a stream.
#[derive(Debug, Clone, Default)]
pub struct ConsumerGroup {
    /// Group cursor: last entry delivered to *any* consumer via `>`.
    pub last_delivered: StreamId,
    /// Pending entries list (PEL), keyed by entry id.
    pub pending: BTreeMap<StreamId, PendingEntry>,
    /// Known consumers.
    pub consumers: HashMap<String, Consumer>,
}

/// An append-only stream with optional consumer groups.
#[derive(Debug, Clone, Default)]
pub struct Stream {
    entries: BTreeMap<StreamId, EntryBody>,
    /// Highest id ever added (ids must keep increasing even after XDEL).
    last_id: StreamId,
    /// Total entries ever added (XADD count, not current length).
    entries_added: u64,
    groups: HashMap<String, ConsumerGroup>,
}

/// Errors from stream operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Explicit XADD id is ≤ the stream's last id.
    IdTooSmall,
    /// Consumer group already exists (XGROUP CREATE).
    GroupExists,
    /// Consumer group does not exist.
    NoGroup,
}

impl Stream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry. `id` of `None` auto-generates (like `XADD *`) from
    /// `now_ms`; an explicit id must exceed the last id.
    pub fn add(
        &mut self,
        id: Option<StreamId>,
        now_ms: u64,
        body: EntryBody,
    ) -> Result<StreamId, StreamError> {
        let id = match id {
            Some(explicit) => {
                if explicit <= self.last_id && self.entries_added > 0 {
                    return Err(StreamError::IdTooSmall);
                }
                explicit
            }
            None => {
                if now_ms > self.last_id.ms {
                    StreamId { ms: now_ms, seq: 0 }
                } else {
                    self.last_id.next()
                }
            }
        };
        self.entries.insert(id, body);
        self.last_id = id;
        self.entries_added += 1;
        Ok(id)
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the stream holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest id ever assigned.
    pub fn last_id(&self) -> StreamId {
        self.last_id
    }

    /// Entries in `[start, end]`, up to `count` (None = unlimited).
    pub fn range(
        &self,
        start: StreamId,
        end: StreamId,
        count: Option<usize>,
    ) -> Vec<(StreamId, EntryBody)> {
        let iter = self
            .entries
            .range(start..=end)
            .map(|(id, b)| (*id, b.clone()));
        match count {
            Some(n) => iter.take(n).collect(),
            None => iter.collect(),
        }
    }

    /// Entries strictly after `after` (XREAD semantics), up to `count`.
    pub fn read_after(&self, after: StreamId, count: Option<usize>) -> Vec<(StreamId, EntryBody)> {
        if after == StreamId::MAX {
            return vec![];
        }
        self.range(after.next(), StreamId::MAX, count)
    }

    /// Deletes entries by id; returns how many existed.
    pub fn delete(&mut self, ids: &[StreamId]) -> usize {
        let mut n = 0;
        for id in ids {
            if self.entries.remove(id).is_some() {
                n += 1;
                for group in self.groups.values_mut() {
                    group.pending.remove(id);
                }
            }
        }
        n
    }

    /// Trims to at most `maxlen` entries, dropping the oldest. Returns the
    /// number removed.
    pub fn trim_maxlen(&mut self, maxlen: usize) -> usize {
        let mut removed = 0;
        while self.entries.len() > maxlen {
            let oldest = *self
                .entries
                .keys()
                .next()
                .expect("entries is non-empty while len > maxlen");
            self.entries.remove(&oldest);
            for group in self.groups.values_mut() {
                group.pending.remove(&oldest);
            }
            removed += 1;
        }
        removed
    }

    /// Creates a consumer group with its cursor at `start` (`$` = last id).
    pub fn create_group(&mut self, name: &str, start: StreamId) -> Result<(), StreamError> {
        if self.groups.contains_key(name) {
            return Err(StreamError::GroupExists);
        }
        self.groups.insert(
            name.to_string(),
            ConsumerGroup {
                last_delivered: start,
                ..ConsumerGroup::default()
            },
        );
        Ok(())
    }

    /// Destroys a group; returns true if it existed.
    pub fn destroy_group(&mut self, name: &str) -> bool {
        self.groups.remove(name).is_some()
    }

    /// The group names, sorted.
    pub fn group_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.groups.keys().cloned().collect();
        names.sort();
        names
    }

    /// Immutable access to a group.
    pub fn group(&self, name: &str) -> Option<&ConsumerGroup> {
        self.groups.get(name)
    }

    /// Reads new entries (`>`) for `consumer` in `group`, advancing the
    /// group cursor. With `noack` the entries skip the PEL (at-most-once);
    /// otherwise they are added pending. Registers/updates the consumer's
    /// activity timestamp either way.
    pub fn read_group_new(
        &mut self,
        group: &str,
        consumer: &str,
        count: Option<usize>,
        noack: bool,
        now: Instant,
    ) -> Result<Vec<(StreamId, EntryBody)>, StreamError> {
        let g = self.groups.get_mut(group).ok_or(StreamError::NoGroup)?;
        let start = if g.last_delivered == StreamId::MAX {
            return Ok(vec![]);
        } else {
            g.last_delivered.next()
        };
        let taken: Vec<(StreamId, EntryBody)> = {
            let iter = self.entries.range(start..).map(|(id, b)| (*id, b.clone()));
            match count {
                Some(n) => iter.take(n).collect(),
                None => iter.collect(),
            }
        };
        let entry = g.consumers.entry(consumer.to_string()).or_insert(Consumer {
            last_active: now,
            pending: 0,
        });
        if !taken.is_empty() {
            entry.last_active = now;
        }
        for (id, _) in &taken {
            g.last_delivered = (*id).max(g.last_delivered);
            if !noack {
                g.pending.insert(
                    *id,
                    PendingEntry {
                        consumer: consumer.to_string(),
                        delivered_at: now,
                        delivery_count: 1,
                    },
                );
                g.consumers
                    .get_mut(consumer)
                    .expect("consumer registered above")
                    .pending += 1;
            }
        }
        Ok(taken)
    }

    /// Claims pending entries idle for at least `min_idle` onto `consumer`
    /// (the heart of `XCLAIM`/`XAUTOCLAIM`): ownership moves, the delivery
    /// time resets, and the delivery count increments. Returns the claimed
    /// entries with their bodies (entries deleted from the stream since
    /// delivery are dropped from the PEL, as real XAUTOCLAIM does).
    pub fn claim_idle(
        &mut self,
        group: &str,
        consumer: &str,
        min_idle: std::time::Duration,
        count: usize,
        now: Instant,
    ) -> Result<Vec<(StreamId, EntryBody)>, StreamError> {
        let g = self.groups.get_mut(group).ok_or(StreamError::NoGroup)?;
        let eligible: Vec<StreamId> = g
            .pending
            .iter()
            .filter(|(_, p)| now.saturating_duration_since(p.delivered_at) >= min_idle)
            .map(|(id, _)| *id)
            .take(count)
            .collect();
        let mut claimed = Vec::new();
        for id in eligible {
            let Some(body) = self.entries.get(&id).cloned() else {
                // The entry was XDELed after delivery: purge the stale PEL row.
                if let Some(p) = g.pending.remove(&id) {
                    if let Some(c) = g.consumers.get_mut(&p.consumer) {
                        c.pending = c.pending.saturating_sub(1);
                    }
                }
                continue;
            };
            let p = g.pending.get_mut(&id).expect("eligible id is pending");
            if let Some(old) = g.consumers.get_mut(&p.consumer) {
                old.pending = old.pending.saturating_sub(1);
            }
            p.consumer = consumer.to_string();
            p.delivered_at = now;
            p.delivery_count += 1;
            let c = g.consumers.entry(consumer.to_string()).or_insert(Consumer {
                last_active: now,
                pending: 0,
            });
            c.pending += 1;
            c.last_active = now;
            claimed.push((id, body));
        }
        Ok(claimed)
    }

    /// Acknowledges entries in a group's PEL; returns how many were pending.
    pub fn ack(
        &mut self,
        group: &str,
        ids: &[StreamId],
        now: Instant,
    ) -> Result<usize, StreamError> {
        let g = self.groups.get_mut(group).ok_or(StreamError::NoGroup)?;
        let mut n = 0;
        for id in ids {
            if let Some(p) = g.pending.remove(id) {
                n += 1;
                if let Some(c) = g.consumers.get_mut(&p.consumer) {
                    c.pending = c.pending.saturating_sub(1);
                    c.last_active = now;
                }
            }
        }
        Ok(n)
    }

    /// Per-consumer (name, pending, idle) rows for `XINFO CONSUMERS`,
    /// sorted by name.
    pub fn consumer_info(
        &self,
        group: &str,
        now: Instant,
    ) -> Result<Vec<(String, u64, std::time::Duration)>, StreamError> {
        let g = self.groups.get(group).ok_or(StreamError::NoGroup)?;
        let mut rows: Vec<_> = g
            .consumers
            .iter()
            .map(|(name, c)| {
                (
                    name.clone(),
                    c.pending,
                    now.saturating_duration_since(c.last_active),
                )
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> EntryBody {
        vec![(SharedBuf::from(&b"data"[..]), SharedBuf::from(s))]
    }

    #[test]
    fn id_parse_and_display() {
        assert_eq!(StreamId::parse("5-3", 0), Some(StreamId { ms: 5, seq: 3 }));
        assert_eq!(StreamId::parse("7", 9), Some(StreamId { ms: 7, seq: 9 }));
        assert_eq!(StreamId::parse("x", 0), None);
        assert_eq!(StreamId { ms: 12, seq: 34 }.to_string(), "12-34");
    }

    #[test]
    fn id_ordering() {
        assert!(StreamId { ms: 1, seq: 9 } < StreamId { ms: 2, seq: 0 });
        assert!(StreamId { ms: 1, seq: 0 } < StreamId { ms: 1, seq: 1 });
        assert_eq!(
            StreamId { ms: 1, seq: 1 }.next(),
            StreamId { ms: 1, seq: 2 }
        );
    }

    #[test]
    fn auto_ids_are_monotonic_within_same_ms() {
        let mut s = Stream::new();
        let a = s.add(None, 100, body("a")).unwrap();
        let b = s.add(None, 100, body("b")).unwrap();
        let c = s.add(None, 99, body("c")).unwrap(); // clock going backwards
        assert!(a < b && b < c);
        assert_eq!(a, StreamId { ms: 100, seq: 0 });
        assert_eq!(b, StreamId { ms: 100, seq: 1 });
        assert_eq!(c, StreamId { ms: 100, seq: 2 });
    }

    #[test]
    fn explicit_id_must_increase() {
        let mut s = Stream::new();
        s.add(Some(StreamId { ms: 5, seq: 0 }), 0, body("a"))
            .unwrap();
        assert_eq!(
            s.add(Some(StreamId { ms: 5, seq: 0 }), 0, body("b")),
            Err(StreamError::IdTooSmall)
        );
        s.add(Some(StreamId { ms: 5, seq: 1 }), 0, body("c"))
            .unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn range_and_read_after() {
        let mut s = Stream::new();
        let ids: Vec<_> = (0..5)
            .map(|i| s.add(None, i, body(&i.to_string())).unwrap())
            .collect();
        let all = s.range(StreamId::MIN, StreamId::MAX, None);
        assert_eq!(all.len(), 5);
        let after = s.read_after(ids[2], None);
        assert_eq!(after.len(), 2);
        assert_eq!(after[0].0, ids[3]);
        let capped = s.range(StreamId::MIN, StreamId::MAX, Some(2));
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn group_read_advances_cursor() {
        let mut s = Stream::new();
        for i in 0..4 {
            s.add(None, i, body(&i.to_string())).unwrap();
        }
        s.create_group("g", StreamId::MIN).unwrap();
        let now = Instant::now();
        let first = s.read_group_new("g", "c1", Some(2), false, now).unwrap();
        assert_eq!(first.len(), 2);
        let second = s.read_group_new("g", "c2", None, false, now).unwrap();
        assert_eq!(second.len(), 2, "c2 must not re-see c1's entries");
        let third = s.read_group_new("g", "c1", None, false, now).unwrap();
        assert!(third.is_empty());
    }

    #[test]
    fn group_created_at_dollar_skips_history() {
        let mut s = Stream::new();
        s.add(None, 1, body("old")).unwrap();
        s.create_group("g", s.last_id()).unwrap();
        let now = Instant::now();
        assert!(s
            .read_group_new("g", "c", None, false, now)
            .unwrap()
            .is_empty());
        s.add(None, 2, body("new")).unwrap();
        assert_eq!(
            s.read_group_new("g", "c", None, false, now).unwrap().len(),
            1
        );
    }

    #[test]
    fn pel_tracks_and_ack_clears() {
        let mut s = Stream::new();
        let id = s.add(None, 1, body("x")).unwrap();
        s.create_group("g", StreamId::MIN).unwrap();
        let now = Instant::now();
        s.read_group_new("g", "c", None, false, now).unwrap();
        assert_eq!(s.group("g").unwrap().pending.len(), 1);
        assert_eq!(s.group("g").unwrap().consumers["c"].pending, 1);
        assert_eq!(s.ack("g", &[id], now).unwrap(), 1);
        assert_eq!(s.group("g").unwrap().pending.len(), 0);
        assert_eq!(s.group("g").unwrap().consumers["c"].pending, 0);
        // Double-ack is a no-op.
        assert_eq!(s.ack("g", &[id], now).unwrap(), 0);
    }

    #[test]
    fn noack_skips_pel() {
        let mut s = Stream::new();
        s.add(None, 1, body("x")).unwrap();
        s.create_group("g", StreamId::MIN).unwrap();
        s.read_group_new("g", "c", None, true, Instant::now())
            .unwrap();
        assert!(s.group("g").unwrap().pending.is_empty());
    }

    #[test]
    fn claim_idle_moves_ownership_and_bumps_delivery_count() {
        let mut s = Stream::new();
        let id = s.add(None, 1, body("x")).unwrap();
        s.create_group("g", StreamId::MIN).unwrap();
        let t0 = Instant::now();
        s.read_group_new("g", "crashed", None, false, t0).unwrap();
        // 500 ms later, a recovery consumer claims entries idle ≥ 100 ms.
        let later = t0 + std::time::Duration::from_millis(500);
        let claimed = s
            .claim_idle(
                "g",
                "rescuer",
                std::time::Duration::from_millis(100),
                10,
                later,
            )
            .unwrap();
        assert_eq!(claimed.len(), 1);
        assert_eq!(claimed[0].0, id);
        let g = s.group("g").unwrap();
        assert_eq!(g.pending[&id].consumer, "rescuer");
        assert_eq!(g.pending[&id].delivery_count, 2);
        assert_eq!(g.consumers["crashed"].pending, 0);
        assert_eq!(g.consumers["rescuer"].pending, 1);
    }

    #[test]
    fn claim_idle_respects_min_idle_and_count() {
        let mut s = Stream::new();
        for i in 0..3 {
            s.add(None, i, body("x")).unwrap();
        }
        s.create_group("g", StreamId::MIN).unwrap();
        let t0 = Instant::now();
        s.read_group_new("g", "c", None, false, t0).unwrap();
        // Too fresh: nothing claimable.
        let fresh = s
            .claim_idle("g", "r", std::time::Duration::from_secs(1), 10, t0)
            .unwrap();
        assert!(fresh.is_empty());
        // Old enough, but capped at 2.
        let later = t0 + std::time::Duration::from_secs(2);
        let claimed = s
            .claim_idle("g", "r", std::time::Duration::from_secs(1), 2, later)
            .unwrap();
        assert_eq!(claimed.len(), 2);
    }

    #[test]
    fn claim_idle_purges_deleted_entries_from_pel() {
        let mut s = Stream::new();
        let id = s.add(None, 1, body("x")).unwrap();
        s.create_group("g", StreamId::MIN).unwrap();
        let t0 = Instant::now();
        s.read_group_new("g", "c", None, false, t0).unwrap();
        // Delete the entry directly from the entries map path used by XDEL
        // *without* PEL cleanup: simulate via trim which also cleans... use
        // the raw delete which does clean. So instead re-create the stale
        // situation by deleting through entries: delete() cleans the PEL, so
        // the stale case only arises for claim racing; assert the clean
        // path: after delete, nothing is claimable.
        s.delete(&[id]);
        let later = t0 + std::time::Duration::from_secs(2);
        let claimed = s
            .claim_idle("g", "r", std::time::Duration::from_secs(1), 10, later)
            .unwrap();
        assert!(claimed.is_empty());
        assert!(s.group("g").unwrap().pending.is_empty());
    }

    #[test]
    fn consumer_idle_time_reflects_activity() {
        let mut s = Stream::new();
        s.add(None, 1, body("x")).unwrap();
        s.create_group("g", StreamId::MIN).unwrap();
        let t0 = Instant::now();
        s.read_group_new("g", "c", None, true, t0).unwrap();
        let later = t0 + std::time::Duration::from_millis(500);
        let info = s.consumer_info("g", later).unwrap();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].0, "c");
        assert_eq!(info[0].2, std::time::Duration::from_millis(500));
    }

    #[test]
    fn empty_group_read_still_registers_consumer() {
        let mut s = Stream::new();
        s.create_group("g", StreamId::MIN).unwrap();
        s.read_group_new("g", "c", None, true, Instant::now())
            .unwrap();
        assert_eq!(s.consumer_info("g", Instant::now()).unwrap().len(), 1);
    }

    #[test]
    fn missing_group_errors() {
        let mut s = Stream::new();
        assert_eq!(
            s.read_group_new("nope", "c", None, false, Instant::now()),
            Err(StreamError::NoGroup)
        );
        assert_eq!(
            s.ack("nope", &[], Instant::now()),
            Err(StreamError::NoGroup)
        );
        assert_eq!(
            s.consumer_info("nope", Instant::now()),
            Err(StreamError::NoGroup)
        );
    }

    #[test]
    fn duplicate_group_rejected() {
        let mut s = Stream::new();
        s.create_group("g", StreamId::MIN).unwrap();
        assert_eq!(
            s.create_group("g", StreamId::MIN),
            Err(StreamError::GroupExists)
        );
        assert!(s.destroy_group("g"));
        assert!(!s.destroy_group("g"));
    }

    #[test]
    fn delete_removes_from_pel_too() {
        let mut s = Stream::new();
        let id = s.add(None, 1, body("x")).unwrap();
        s.create_group("g", StreamId::MIN).unwrap();
        s.read_group_new("g", "c", None, false, Instant::now())
            .unwrap();
        assert_eq!(s.delete(&[id]), 1);
        assert!(s.group("g").unwrap().pending.is_empty());
        assert_eq!(s.delete(&[id]), 0);
    }

    #[test]
    fn trim_maxlen_drops_oldest() {
        let mut s = Stream::new();
        let ids: Vec<_> = (0..5).map(|i| s.add(None, i, body("x")).unwrap()).collect();
        assert_eq!(s.trim_maxlen(2), 3);
        assert_eq!(s.len(), 2);
        let remaining = s.range(StreamId::MIN, StreamId::MAX, None);
        assert_eq!(remaining[0].0, ids[3]);
        // last_id survives trimming so new ids keep increasing.
        assert_eq!(s.last_id(), ids[4]);
    }

    #[test]
    fn ids_keep_increasing_after_full_trim() {
        let mut s = Stream::new();
        let a = s.add(None, 10, body("a")).unwrap();
        s.trim_maxlen(0);
        let b = s.add(None, 0, body("b")).unwrap();
        assert!(b > a);
    }
}
