//! The keyspace: typed values, lazy expiry, glob matching.

pub mod stream;

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;
use stream::Stream;

/// A value stored under a key.
#[derive(Debug, Clone)]
pub enum RValue {
    /// Binary-safe string.
    Str(Vec<u8>),
    /// Double-ended list.
    List(VecDeque<Vec<u8>>),
    /// Field → value hash.
    Hash(HashMap<Vec<u8>, Vec<u8>>),
    /// Unordered set.
    Set(HashSet<Vec<u8>>),
    /// Append-only stream.
    Stream(Stream),
}

impl RValue {
    /// Redis `TYPE` name.
    pub fn type_name(&self) -> &'static str {
        match self {
            RValue::Str(_) => "string",
            RValue::List(_) => "list",
            RValue::Hash(_) => "hash",
            RValue::Set(_) => "set",
            RValue::Stream(_) => "stream",
        }
    }
}

/// One keyspace slot: value + optional expiry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The stored value.
    pub value: RValue,
    /// Absolute expiry deadline, if volatile.
    pub expires_at: Option<Instant>,
}

/// The in-memory database (a single Redis keyspace).
///
/// Expiry is lazy: any access through [`Db::get`]/[`Db::get_mut`] first
/// evicts the key if its deadline passed, exactly like Redis's passive
/// expiration path.
#[derive(Debug, Default)]
pub struct Db {
    map: HashMap<Vec<u8>, Entry>,
}

impl Db {
    /// Creates an empty keyspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn evict_if_expired(&mut self, key: &[u8], now: Instant) {
        if let Some(entry) = self.map.get(key) {
            if entry.expires_at.map(|t| t <= now).unwrap_or(false) {
                self.map.remove(key);
            }
        }
    }

    /// Live value under `key`.
    pub fn get(&mut self, key: &[u8], now: Instant) -> Option<&RValue> {
        self.evict_if_expired(key, now);
        self.map.get(key).map(|e| &e.value)
    }

    /// Mutable live value under `key`.
    pub fn get_mut(&mut self, key: &[u8], now: Instant) -> Option<&mut RValue> {
        self.evict_if_expired(key, now);
        self.map.get_mut(key).map(|e| &mut e.value)
    }

    /// Inserts/replaces a value, clearing any previous expiry.
    pub fn set(&mut self, key: Vec<u8>, value: RValue) {
        self.map.insert(
            key,
            Entry {
                value,
                expires_at: None,
            },
        );
    }

    /// Inserts/replaces a value with an expiry deadline.
    pub fn set_with_expiry(&mut self, key: Vec<u8>, value: RValue, expires_at: Instant) {
        self.map.insert(
            key,
            Entry {
                value,
                expires_at: Some(expires_at),
            },
        );
    }

    /// Gets the value, creating it with `default` when missing. The caller
    /// must ensure type agreement; command handlers check types first.
    pub fn get_or_create(
        &mut self,
        key: &[u8],
        now: Instant,
        default: impl FnOnce() -> RValue,
    ) -> &mut RValue {
        self.evict_if_expired(key, now);
        &mut self
            .map
            .entry(key.to_vec())
            .or_insert_with(|| Entry {
                value: default(),
                expires_at: None,
            })
            .value
    }

    /// Removes a key; true if it existed (and was live).
    pub fn del(&mut self, key: &[u8], now: Instant) -> bool {
        self.evict_if_expired(key, now);
        self.map.remove(key).is_some()
    }

    /// True if the key exists and is live.
    pub fn exists(&mut self, key: &[u8], now: Instant) -> bool {
        self.get(key, now).is_some()
    }

    /// Sets an expiry on an existing key; false if the key is missing.
    pub fn expire(&mut self, key: &[u8], at: Instant, now: Instant) -> bool {
        self.evict_if_expired(key, now);
        match self.map.get_mut(key) {
            Some(e) => {
                e.expires_at = Some(at);
                true
            }
            None => false,
        }
    }

    /// Remaining time to live: `None` if missing, `Some(None)` if
    /// persistent, `Some(Some(d))` if volatile.
    pub fn ttl(&mut self, key: &[u8], now: Instant) -> Option<Option<std::time::Duration>> {
        self.evict_if_expired(key, now);
        self.map
            .get(key)
            .map(|e| e.expires_at.map(|t| t.saturating_duration_since(now)))
    }

    /// Clears the expiry; true if the key existed and was volatile.
    pub fn persist(&mut self, key: &[u8], now: Instant) -> bool {
        self.evict_if_expired(key, now);
        match self.map.get_mut(key) {
            Some(e) => e.expires_at.take().is_some(),
            None => false,
        }
    }

    /// Number of live keys (evicting expired ones on the way).
    pub fn len(&mut self, now: Instant) -> usize {
        let expired: Vec<Vec<u8>> = self
            .map
            .iter()
            .filter(|(_, e)| e.expires_at.map(|t| t <= now).unwrap_or(false))
            .map(|(k, _)| k.clone())
            .collect();
        for k in expired {
            self.map.remove(&k);
        }
        self.map.len()
    }

    /// True if no live keys remain.
    pub fn is_empty(&mut self, now: Instant) -> bool {
        self.len(now) == 0
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Live keys matching a glob pattern, sorted (deterministic `KEYS`).
    pub fn keys_matching(&mut self, pattern: &[u8], now: Instant) -> Vec<Vec<u8>> {
        self.len(now); // purge expired
        let mut keys: Vec<Vec<u8>> = self
            .map
            .keys()
            .filter(|k| glob_match(pattern, k))
            .cloned()
            .collect();
        keys.sort();
        keys
    }
}

/// Minimal Redis-style glob: `*` (any run), `?` (any one byte), literal
/// otherwise. Character classes are not supported (the workflows never use
/// them).
pub fn glob_match(pattern: &[u8], text: &[u8]) -> bool {
    match (pattern.first(), text.first()) {
        (None, None) => true,
        (Some(b'*'), _) => {
            glob_match(&pattern[1..], text) || (!text.is_empty() && glob_match(pattern, &text[1..]))
        }
        (Some(b'?'), Some(_)) => glob_match(&pattern[1..], &text[1..]),
        (Some(&p), Some(&t)) if p == t => glob_match(&pattern[1..], &text[1..]),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn set_get_del_roundtrip() {
        let mut db = Db::new();
        let now = Instant::now();
        db.set(b"k".to_vec(), RValue::Str(b"v".to_vec()));
        assert!(matches!(db.get(b"k", now), Some(RValue::Str(v)) if v == b"v"));
        assert!(db.del(b"k", now));
        assert!(!db.del(b"k", now));
        assert!(db.get(b"k", now).is_none());
    }

    #[test]
    fn expiry_is_honoured_lazily() {
        let mut db = Db::new();
        let now = Instant::now();
        db.set_with_expiry(
            b"k".to_vec(),
            RValue::Str(b"v".to_vec()),
            now + Duration::from_millis(10),
        );
        assert!(db.exists(b"k", now));
        let later = now + Duration::from_millis(11);
        assert!(!db.exists(b"k", later));
        assert_eq!(db.len(later), 0);
    }

    #[test]
    fn ttl_semantics() {
        let mut db = Db::new();
        let now = Instant::now();
        assert_eq!(db.ttl(b"missing", now), None);
        db.set(b"p".to_vec(), RValue::Str(vec![]));
        assert_eq!(db.ttl(b"p", now), Some(None));
        db.expire(b"p", now + Duration::from_secs(5), now);
        let ttl = db.ttl(b"p", now).unwrap().unwrap();
        assert!(ttl <= Duration::from_secs(5) && ttl > Duration::from_secs(4));
        assert!(db.persist(b"p", now));
        assert_eq!(db.ttl(b"p", now), Some(None));
        assert!(!db.persist(b"p", now), "already persistent");
    }

    #[test]
    fn expire_on_missing_key_is_false() {
        let mut db = Db::new();
        assert!(!db.expire(b"nope", Instant::now(), Instant::now()));
    }

    #[test]
    fn get_or_create_creates_once() {
        let mut db = Db::new();
        let now = Instant::now();
        {
            let v = db.get_or_create(b"list", now, || RValue::List(VecDeque::new()));
            if let RValue::List(l) = v {
                l.push_back(b"x".to_vec());
            }
        }
        let v = db.get_or_create(b"list", now, || RValue::List(VecDeque::new()));
        if let RValue::List(l) = v {
            assert_eq!(l.len(), 1);
        } else {
            panic!("wrong type");
        }
    }

    #[test]
    fn keys_matching_globs() {
        let mut db = Db::new();
        let now = Instant::now();
        for k in ["queue:global", "queue:private:1", "state:CA"] {
            db.set(k.as_bytes().to_vec(), RValue::Str(vec![]));
        }
        assert_eq!(db.keys_matching(b"queue:*", now).len(), 2);
        assert_eq!(db.keys_matching(b"*", now).len(), 3);
        assert_eq!(db.keys_matching(b"state:??", now).len(), 1);
        assert_eq!(db.keys_matching(b"zzz*", now).len(), 0);
    }

    #[test]
    fn glob_edge_cases() {
        assert!(glob_match(b"", b""));
        assert!(glob_match(b"*", b""));
        assert!(glob_match(b"a*b*c", b"aXXbYYc"));
        assert!(!glob_match(b"a?c", b"ac"));
        assert!(!glob_match(b"abc", b"abcd"));
    }

    #[test]
    fn type_names() {
        assert_eq!(RValue::Str(vec![]).type_name(), "string");
        assert_eq!(RValue::List(VecDeque::new()).type_name(), "list");
        assert_eq!(RValue::Hash(HashMap::new()).type_name(), "hash");
        assert_eq!(RValue::Set(HashSet::new()).type_name(), "set");
        assert_eq!(RValue::Stream(Stream::new()).type_name(), "stream");
    }

    #[test]
    fn clear_empties_keyspace() {
        let mut db = Db::new();
        db.set(b"a".to_vec(), RValue::Str(vec![]));
        db.clear();
        assert!(db.is_empty(Instant::now()));
    }
}
