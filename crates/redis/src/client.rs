//! Client connections: TCP and in-process.
//!
//! [`Connection`] abstracts "send a command, get a frame", so the dispel4py
//! Redis mappings work identically over a real socket ([`Client`]) and the
//! in-process transport ([`InProcClient`], for tests and the
//! TCP-vs-in-proc ablation bench). Helper methods cover the command subset
//! the workflow queues use.

use crate::engine::Shared;
use crate::resp::{self, Frame};
use d4py_sync::ByteBuf;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed RESP from the server.
    Protocol(resp::RespError),
    /// The server answered with `-ERR ...`.
    Server(String),
    /// Reply shape didn't match the helper's expectation.
    UnexpectedReply(String),
    /// A transient socket failure persisted across the single
    /// reconnect-and-retry the client attempts for idempotent commands.
    RetryExhausted {
        /// The command verb that was being retried (e.g. `"GET"`).
        command: String,
        /// The I/O error that ended the retry.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::UnexpectedReply(msg) => write!(f, "unexpected reply: {msg}"),
            ClientError::RetryExhausted { command, source } => {
                write!(f, "retry exhausted for {command}: {source}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Anything that can execute Redis commands.
pub trait Connection: Send {
    /// Sends one command and returns the raw reply frame. Error frames are
    /// returned as frames, not `Err` — helpers decide what's fatal.
    fn request(&mut self, args: &[&[u8]]) -> Result<Frame, ClientError>;
}

/// A blocking TCP client.
///
/// For **idempotent** commands, a transient connection drop (EOF, reset,
/// broken pipe) is absorbed by exactly one reconnect-and-retry; commands
/// with side effects that re-running could duplicate (`XADD`,
/// `XREADGROUP`) are never retried — their failure is surfaced so the
/// caller's at-least-once recovery (pending-entry reclaim) handles it.
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    inbox: ByteBuf,
}

impl Client {
    /// Connects to a redis-lite (or Redis) server.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let stream = Self::open(addr)?;
        Ok(Client {
            addr,
            stream,
            inbox: ByteBuf::with_capacity(4096),
        })
    }

    fn open(addr: SocketAddr) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Drops the old socket and dials the server again. Any partial reply
    /// buffered from the dead connection is stale and must be discarded.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.stream = Self::open(self.addr)?;
        self.inbox.clear();
        Ok(())
    }

    fn request_once(&mut self, args: &[&[u8]]) -> Result<Frame, ClientError> {
        let mut out = ByteBuf::with_capacity(64);
        resp::encode_command(args, &mut out);
        self.stream.write_all(&out)?;
        self.read_frame()
    }

    fn read_frame(&mut self) -> Result<Frame, ClientError> {
        let mut chunk = [0u8; 4096];
        loop {
            match resp::decode(&self.inbox).map_err(ClientError::Protocol)? {
                Some((frame, used)) => {
                    let _ = self.inbox.split_to(used);
                    return Ok(frame);
                }
                None => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed connection",
                        )));
                    }
                    self.inbox.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }
}

/// Commands that are safe to re-issue blindly after a dropped connection:
/// either read-only, absolute writes (`SET`, `FLUSHALL`), or naturally
/// at-most-once-per-id (`XACK`, `XGROUP CREATE`). `XADD` would duplicate
/// the entry and `XREADGROUP` would double-deliver, so both are excluded.
fn is_idempotent(cmd: &[u8]) -> bool {
    const IDEMPOTENT: &[&[u8]] = &[
        b"PING",
        b"GET",
        b"SET",
        b"XLEN",
        b"XACK",
        b"XGROUP",
        b"XINFO",
        b"XAUTOCLAIM",
        b"FLUSHALL",
    ];
    IDEMPOTENT.iter().any(|c| cmd.eq_ignore_ascii_case(c))
}

/// A connection-level failure worth one reconnect; anything else (protocol
/// garbage, server errors) would only repeat on a fresh socket.
fn is_transient(e: &ClientError) -> bool {
    use std::io::ErrorKind;
    matches!(
        e,
        ClientError::Io(io) if matches!(
            io.kind(),
            ErrorKind::UnexpectedEof
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::BrokenPipe
        )
    )
}

fn exhausted(command: &[u8], e: ClientError) -> ClientError {
    match e {
        ClientError::Io(source) => ClientError::RetryExhausted {
            command: String::from_utf8_lossy(command).into_owned(),
            source,
        },
        other => other,
    }
}

impl Connection for Client {
    fn request(&mut self, args: &[&[u8]]) -> Result<Frame, ClientError> {
        match self.request_once(args) {
            Err(e) if is_transient(&e) && args.first().copied().is_some_and(is_idempotent) => {
                // One bounded reconnect-and-retry; a second failure is
                // surfaced as RetryExhausted so callers can tell "the
                // server is gone" from a one-off drop.
                if let Err(re) = self.reconnect() {
                    return Err(exhausted(args[0], re));
                }
                self.request_once(args).map_err(|re| exhausted(args[0], re))
            }
            other => other,
        }
    }
}

/// An in-process client: dispatches straight into a [`Shared`] engine with
/// no sockets or serialization (though commands still pass the full command
/// dispatch path).
pub struct InProcClient {
    shared: Arc<Shared>,
}

impl InProcClient {
    /// Creates a client over shared engine state.
    pub fn new(shared: Arc<Shared>) -> Self {
        Self { shared }
    }
}

impl Connection for InProcClient {
    fn request(&mut self, args: &[&[u8]]) -> Result<Frame, ClientError> {
        let owned: Vec<Vec<u8>> = args.iter().map(|a| a.to_vec()).collect();
        Ok(self.shared.dispatch(&owned))
    }
}

/// Typed helpers over any [`Connection`].
pub trait RedisOps: Connection {
    /// `PING` → "PONG".
    fn ping(&mut self) -> Result<String, ClientError> {
        expect_text(self.request(&[b"PING"])?)
    }

    /// `SET key value`.
    fn set(&mut self, key: &[u8], value: &[u8]) -> Result<(), ClientError> {
        expect_ok(self.request(&[b"SET", key, value])?)
    }

    /// `GET key`.
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ClientError> {
        match self.request(&[b"GET", key])? {
            Frame::Null => Ok(None),
            Frame::Bulk(b) => Ok(Some(b)),
            other => fail(other),
        }
    }

    /// `XADD key * field value` → assigned id.
    fn xadd(&mut self, key: &[u8], field: &[u8], value: &[u8]) -> Result<String, ClientError> {
        expect_text(self.request(&[b"XADD", key, b"*", field, value])?)
    }

    /// `XLEN key`.
    fn xlen(&mut self, key: &[u8]) -> Result<i64, ClientError> {
        expect_int(self.request(&[b"XLEN", key])?)
    }

    /// `XGROUP CREATE key group 0 MKSTREAM`, tolerating BUSYGROUP.
    fn xgroup_create(&mut self, key: &[u8], group: &[u8]) -> Result<(), ClientError> {
        match self.request(&[b"XGROUP", b"CREATE", key, group, b"0", b"MKSTREAM"])? {
            Frame::Simple(_) => Ok(()),
            Frame::Error(e) if e.starts_with("BUSYGROUP") => Ok(()),
            other => fail(other),
        }
    }

    /// `XREADGROUP GROUP g c COUNT 1 BLOCK ms [NOACK] STREAMS key >`
    /// → `Some((entry_id, field_value_pairs))` or `None` on timeout.
    #[allow(clippy::type_complexity)]
    fn xreadgroup_one(
        &mut self,
        key: &[u8],
        group: &[u8],
        consumer: &[u8],
        block: Duration,
        noack: bool,
    ) -> Result<Option<(String, Vec<(Vec<u8>, Vec<u8>)>)>, ClientError> {
        let block_ms = block.as_millis().max(1).to_string();
        let mut cmd: Vec<&[u8]> = vec![
            b"XREADGROUP",
            b"GROUP",
            group,
            consumer,
            b"COUNT",
            b"1",
            b"BLOCK",
            block_ms.as_bytes(),
        ];
        if noack {
            cmd.push(b"NOACK");
        }
        cmd.extend_from_slice(&[b"STREAMS", key, b">"]);
        match self.request(&cmd)? {
            Frame::Null | Frame::NullArray => Ok(None),
            Frame::Error(e) => Err(ClientError::Server(e)),
            Frame::Array(streams) => {
                // [[key, [[id, [f, v, ...]], ...]], ...] — take the first entry.
                let first_stream = streams.first().and_then(Frame::as_array);
                let entries = first_stream
                    .and_then(|s| s.get(1))
                    .and_then(Frame::as_array);
                let Some(entry) = entries.and_then(|e| e.first()).and_then(Frame::as_array) else {
                    return Ok(None);
                };
                let id = entry
                    .first()
                    .and_then(Frame::as_text)
                    .ok_or_else(|| ClientError::UnexpectedReply("missing entry id".into()))?;
                let body = entry
                    .get(1)
                    .and_then(Frame::as_array)
                    .ok_or_else(|| ClientError::UnexpectedReply("missing entry body".into()))?;
                let mut pairs = Vec::with_capacity(body.len() / 2);
                let mut it = body.iter();
                while let (Some(Frame::Bulk(f)), Some(Frame::Bulk(v))) = (it.next(), it.next()) {
                    pairs.push((f.clone(), v.clone()));
                }
                Ok(Some((id, pairs)))
            }
            other => fail(other),
        }
    }

    /// `XACK key group id`.
    fn xack(&mut self, key: &[u8], group: &[u8], id: &str) -> Result<i64, ClientError> {
        expect_int(self.request(&[b"XACK", key, group, id.as_bytes()])?)
    }

    /// `XAUTOCLAIM key group consumer min-idle 0 COUNT 1` → the first
    /// reclaimed entry, if any.
    #[allow(clippy::type_complexity)]
    fn xautoclaim_one(
        &mut self,
        key: &[u8],
        group: &[u8],
        consumer: &[u8],
        min_idle: Duration,
    ) -> Result<Option<(String, Vec<(Vec<u8>, Vec<u8>)>)>, ClientError> {
        let idle_ms = min_idle.as_millis().to_string();
        let reply = self.request(&[
            b"XAUTOCLAIM",
            key,
            group,
            consumer,
            idle_ms.as_bytes(),
            b"0",
            b"COUNT",
            b"1",
        ])?;
        match reply {
            Frame::Error(e) => Err(ClientError::Server(e)),
            Frame::Array(parts) => {
                // [next-cursor, [entries]]
                let entries = parts.get(1).and_then(Frame::as_array).unwrap_or(&[]);
                let Some(entry) = entries.first().and_then(Frame::as_array) else {
                    return Ok(None);
                };
                let id = entry
                    .first()
                    .and_then(Frame::as_text)
                    .ok_or_else(|| ClientError::UnexpectedReply("missing entry id".into()))?;
                let body = entry
                    .get(1)
                    .and_then(Frame::as_array)
                    .ok_or_else(|| ClientError::UnexpectedReply("missing body".into()))?;
                let mut pairs = Vec::with_capacity(body.len() / 2);
                let mut it = body.iter();
                while let (Some(Frame::Bulk(f)), Some(Frame::Bulk(v))) = (it.next(), it.next()) {
                    pairs.push((f.clone(), v.clone()));
                }
                Ok(Some((id, pairs)))
            }
            other => fail(other),
        }
    }

    /// `XINFO CONSUMERS key group` → (name, pending, idle) rows.
    #[allow(clippy::type_complexity)]
    fn xinfo_consumers(
        &mut self,
        key: &[u8],
        group: &[u8],
    ) -> Result<Vec<(String, i64, Duration)>, ClientError> {
        match self.request(&[b"XINFO", b"CONSUMERS", key, group])? {
            Frame::Error(e) => Err(ClientError::Server(e)),
            Frame::Array(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let Some(fields) = row.as_array() else {
                        continue;
                    };
                    // ["name", n, "pending", p, "idle", ms]
                    let name = fields.get(1).and_then(Frame::as_text).unwrap_or_default();
                    let pending = fields.get(3).and_then(Frame::as_int).unwrap_or(0);
                    let idle_ms = fields.get(5).and_then(Frame::as_int).unwrap_or(0);
                    out.push((name, pending, Duration::from_millis(idle_ms.max(0) as u64)));
                }
                Ok(out)
            }
            other => fail(other),
        }
    }

    /// `FLUSHALL`.
    fn flushall(&mut self) -> Result<(), ClientError> {
        expect_ok(self.request(&[b"FLUSHALL"])?)
    }
}

impl<T: Connection + ?Sized> RedisOps for T {}

fn fail<T>(frame: Frame) -> Result<T, ClientError> {
    match frame {
        Frame::Error(e) => Err(ClientError::Server(e)),
        other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
    }
}

fn expect_ok(frame: Frame) -> Result<(), ClientError> {
    match frame {
        Frame::Simple(_) => Ok(()),
        other => fail(other),
    }
}

fn expect_text(frame: Frame) -> Result<String, ClientError> {
    match frame {
        Frame::Simple(s) => Ok(s),
        Frame::Bulk(b) => {
            String::from_utf8(b).map_err(|_| ClientError::UnexpectedReply("non-UTF8 text".into()))
        }
        other => fail(other),
    }
}

fn expect_int(frame: Frame) -> Result<i64, ClientError> {
    match frame {
        Frame::Integer(i) => Ok(i),
        other => fail(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inproc() -> InProcClient {
        InProcClient::new(Arc::new(Shared::new()))
    }

    #[test]
    fn inproc_basic_ops() {
        let mut c = inproc();
        assert_eq!(c.ping().unwrap(), "PONG");
        c.set(b"k", b"v").unwrap();
        assert_eq!(c.get(b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(c.get(b"none").unwrap(), None);
    }

    #[test]
    fn inproc_stream_workflow() {
        let mut c = inproc();
        c.xgroup_create(b"q", b"workers").unwrap();
        c.xgroup_create(b"q", b"workers").unwrap(); // BUSYGROUP tolerated
        let id = c.xadd(b"q", b"task", b"payload").unwrap();
        assert_eq!(c.xlen(b"q").unwrap(), 1);
        let (got_id, pairs) = c
            .xreadgroup_one(b"q", b"workers", b"w0", Duration::from_millis(50), false)
            .unwrap()
            .unwrap();
        assert_eq!(got_id, id);
        assert_eq!(pairs, vec![(b"task".to_vec(), b"payload".to_vec())]);
        assert_eq!(c.xack(b"q", b"workers", &got_id).unwrap(), 1);
        // Queue drained: the next read times out.
        assert!(c
            .xreadgroup_one(b"q", b"workers", b"w0", Duration::from_millis(20), false)
            .unwrap()
            .is_none());
    }

    #[test]
    fn inproc_consumer_idle_info() {
        let mut c = inproc();
        c.xgroup_create(b"q", b"g").unwrap();
        c.xadd(b"q", b"t", b"1").unwrap();
        c.xreadgroup_one(b"q", b"g", b"w0", Duration::from_millis(20), true)
            .unwrap()
            .unwrap();
        std::thread::sleep(Duration::from_millis(15));
        let rows = c.xinfo_consumers(b"q", b"g").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "w0");
        assert!(rows[0].2 >= Duration::from_millis(10));
    }

    #[test]
    fn server_error_is_surfaced() {
        let mut c = inproc();
        c.set(b"s", b"x").unwrap();
        // XADD against a string key → WRONGTYPE server error.
        let err = c.xadd(b"s", b"f", b"v").unwrap_err();
        assert!(matches!(err, ClientError::Server(_)));
    }

    mod reconnect {
        use super::super::*;
        use std::net::{TcpListener, TcpStream};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::thread::JoinHandle;

        /// A fault-injecting server: one entry per expected connection.
        /// `false` → accept and slam the socket shut; `true` → read one
        /// command and answer `+PONG\r\n`.
        fn fault_server(plan: &'static [bool]) -> (SocketAddr, Arc<AtomicUsize>, JoinHandle<()>) {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let accepted = Arc::new(AtomicUsize::new(0));
            let counter = accepted.clone();
            let handle = std::thread::spawn(move || {
                for &serve in plan {
                    let Ok((mut sock, _)) = listener.accept() else {
                        return;
                    };
                    counter.fetch_add(1, Ordering::SeqCst);
                    if serve {
                        let mut buf = [0u8; 1024];
                        let _ = sock.read(&mut buf);
                        let _ = sock.write_all(b"+PONG\r\n");
                    }
                    // `sock` drops here; a `false` slot closes before replying.
                }
            });
            (addr, accepted, handle)
        }

        #[test]
        fn idempotent_command_survives_one_dropped_connection() {
            let (addr, accepted, server) = fault_server(&[false, true]);
            let mut c = Client::connect(addr).expect("connect");
            // First request hits the dying socket, the bounded retry
            // reconnects and succeeds against the healthy second accept.
            assert_eq!(c.ping().expect("retried ping"), "PONG");
            assert_eq!(accepted.load(Ordering::SeqCst), 2);
            server.join().expect("server");
        }

        #[test]
        fn second_drop_reports_retry_exhausted() {
            let (addr, _accepted, server) = fault_server(&[false, false]);
            let mut c = Client::connect(addr).expect("connect");
            let err = c.ping().expect_err("both connections dropped");
            match err {
                ClientError::RetryExhausted { command, .. } => assert_eq!(command, "PING"),
                other => panic!("expected RetryExhausted, got {other}"),
            }
            server.join().expect("server");
        }

        #[test]
        fn non_idempotent_command_is_never_retried() {
            let (addr, accepted, server) = fault_server(&[false, false]);
            let mut c = Client::connect(addr).expect("connect");
            // XADD could duplicate the entry, so the drop must surface as a
            // plain I/O error without a second connection being dialed.
            let err = c.xadd(b"q", b"f", b"v").expect_err("dropped connection");
            assert!(matches!(err, ClientError::Io(_)), "got {err}");
            assert_eq!(accepted.load(Ordering::SeqCst), 1);
            // Unblock the server's second planned accept, then join.
            let _ = TcpStream::connect(addr);
            server.join().expect("server");
        }
    }
}
