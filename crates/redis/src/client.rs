//! Client connections: TCP and in-process.
//!
//! [`Connection`] abstracts "send a command, get a frame", so the dispel4py
//! Redis mappings work identically over a real socket ([`Client`]) and the
//! in-process transport ([`InProcClient`], for tests and the
//! TCP-vs-in-proc ablation bench). Helper methods cover the command subset
//! the workflow queues use.
//!
//! Two throughput levers live here. [`Connection::request_many`] is RESP
//! **pipelining**: N commands encoded into one socket write, N replies
//! decoded from the buffered inbox — one round-trip instead of N (the
//! server drains every complete frame in its read buffer before blocking,
//! so no server cooperation is needed). [`ClientConfig`] bounds every
//! socket read/write so a hung-but-open server surfaces as a transient
//! `TimedOut` instead of blocking the worker forever.

use crate::engine::Shared;
use crate::resp::{self, Frame};
use d4py_sync::ByteBuf;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed RESP from the server.
    Protocol(resp::RespError),
    /// The server answered with `-ERR ...`.
    Server(String),
    /// Reply shape didn't match the helper's expectation.
    UnexpectedReply(String),
    /// A transient socket failure persisted across the single
    /// reconnect-and-retry the client attempts for idempotent commands.
    RetryExhausted {
        /// The command verb that was being retried (e.g. `"GET"`).
        command: String,
        /// The I/O error that ended the retry.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::UnexpectedReply(msg) => write!(f, "unexpected reply: {msg}"),
            ClientError::RetryExhausted { command, source } => {
                write!(f, "retry exhausted for {command}: {source}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Anything that can execute Redis commands.
pub trait Connection: Send {
    /// Sends one command and returns the raw reply frame. Error frames are
    /// returned as frames, not `Err` — helpers decide what's fatal.
    fn request(&mut self, args: &[&[u8]]) -> Result<Frame, ClientError>;

    /// Sends `cmds` as one RESP pipeline and returns one reply per command,
    /// in order. The default degrades to sequential [`request`] calls;
    /// transports with a real wire override it to pay one round-trip for
    /// the whole batch. Per-command error frames are returned in place, not
    /// as `Err` — a transport-level `Err` means the batch outcome is
    /// unknown.
    ///
    /// [`request`]: Connection::request
    fn request_many(&mut self, cmds: &[&[&[u8]]]) -> Result<Vec<Frame>, ClientError> {
        cmds.iter().map(|c| self.request(c)).collect()
    }
}

/// Socket-timeout configuration for [`Client`].
///
/// Every read and write is bounded: a server that accepts the connection
/// and then never replies surfaces as `ErrorKind::TimedOut` (classified
/// transient, so idempotent commands get the bounded reconnect-retry)
/// instead of blocking the calling worker forever. Blocking reads
/// (`XREADGROUP ... BLOCK ms`, `BLPOP`) automatically extend the read
/// deadline by their server-side block time, so a legitimate long poll is
/// never misread as a stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Per-read deadline; `None` disables the bound (pre-timeout behavior).
    pub read_timeout: Option<Duration>,
    /// Per-write deadline; `None` disables the bound.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// A blocking TCP client.
///
/// For **idempotent** commands, a transient connection drop (EOF, reset,
/// broken pipe) or a bounded-read timeout is absorbed by exactly one
/// reconnect-and-retry; commands with side effects that re-running could
/// duplicate (`XADD`, `XREADGROUP`) are never retried — their failure is
/// surfaced so the caller's at-least-once recovery (pending-entry reclaim)
/// handles it.
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    inbox: ByteBuf,
    config: ClientConfig,
}

impl Client {
    /// Connects to a redis-lite (or Redis) server with default timeouts.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit socket timeouts.
    pub fn connect_with(addr: SocketAddr, config: ClientConfig) -> Result<Client, ClientError> {
        let stream = Self::open(addr, &config)?;
        Ok(Client {
            addr,
            stream,
            inbox: ByteBuf::with_capacity(4096),
            config,
        })
    }

    fn open(addr: SocketAddr, config: &ClientConfig) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        Ok(stream)
    }

    /// Drops the old socket and dials the server again. Any partial reply
    /// buffered from the dead connection is stale and must be discarded.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.stream = Self::open(self.addr, &self.config)?;
        self.inbox.clear();
        Ok(())
    }

    /// Temporarily widens the read deadline for a command that legitimately
    /// blocks server-side; restores the configured deadline afterwards.
    fn with_block_hint<T>(
        &mut self,
        hint: BlockHint,
        f: impl FnOnce(&mut Self) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let widened = match (hint, self.config.read_timeout) {
            (BlockHint::None, _) | (_, None) => None,
            (BlockHint::Forever, Some(_)) => Some(None),
            (BlockHint::Extra(d), Some(base)) => Some(Some(base.saturating_add(d))),
        };
        if let Some(t) = widened {
            self.stream.set_read_timeout(t)?;
        }
        let result = f(self);
        if widened.is_some() {
            // Best-effort restore: if it fails the next request errors and
            // the reconnect path re-applies the configured timeouts.
            let _ = self.stream.set_read_timeout(self.config.read_timeout);
        }
        result
    }

    fn request_once(&mut self, args: &[&[u8]]) -> Result<Frame, ClientError> {
        self.with_block_hint(block_hint(args), |this| {
            let mut out = ByteBuf::with_capacity(64);
            resp::encode_command(args, &mut out);
            this.stream.write_all(&out)?;
            this.read_frame()
        })
    }

    fn request_many_once(&mut self, cmds: &[&[&[u8]]]) -> Result<Vec<Frame>, ClientError> {
        let hint = cmds
            .iter()
            .map(|c| block_hint(c))
            .fold(BlockHint::None, BlockHint::max);
        self.with_block_hint(hint, |this| {
            let mut out = ByteBuf::with_capacity(64 * cmds.len());
            for cmd in cmds {
                resp::encode_command(cmd, &mut out);
            }
            this.stream.write_all(&out)?;
            let mut replies = Vec::with_capacity(cmds.len());
            for _ in 0..cmds.len() {
                replies.push(this.read_frame()?);
            }
            Ok(replies)
        })
    }

    fn read_frame(&mut self) -> Result<Frame, ClientError> {
        let mut chunk = [0u8; 4096];
        loop {
            match resp::decode(&self.inbox).map_err(ClientError::Protocol)? {
                Some((frame, used)) => {
                    let _ = self.inbox.split_to(used);
                    return Ok(frame);
                }
                None => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed connection",
                        )));
                    }
                    self.inbox.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }
}

/// How long a command may legitimately sit server-side before replying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockHint {
    /// Replies immediately — the configured read deadline applies as-is.
    None,
    /// Blocks up to this long (`BLOCK ms`, `BLPOP secs`).
    Extra(Duration),
    /// Blocks indefinitely (`BLOCK 0`, `BLPOP key 0`).
    Forever,
}

impl BlockHint {
    fn max(self, other: BlockHint) -> BlockHint {
        match (self, other) {
            (BlockHint::Forever, _) | (_, BlockHint::Forever) => BlockHint::Forever,
            (BlockHint::Extra(a), BlockHint::Extra(b)) => BlockHint::Extra(a.max(b)),
            (BlockHint::Extra(d), BlockHint::None) | (BlockHint::None, BlockHint::Extra(d)) => {
                BlockHint::Extra(d)
            }
            (BlockHint::None, BlockHint::None) => BlockHint::None,
        }
    }
}

/// Extracts the server-side blocking budget of a command, so the client's
/// read deadline can be widened past it.
fn block_hint(args: &[&[u8]]) -> BlockHint {
    let Some(verb) = args.first() else {
        return BlockHint::None;
    };
    if verb.eq_ignore_ascii_case(b"XREAD") || verb.eq_ignore_ascii_case(b"XREADGROUP") {
        for pair in args.windows(2) {
            if pair[0].eq_ignore_ascii_case(b"BLOCK") {
                let ms = std::str::from_utf8(pair[1])
                    .ok()
                    .and_then(|s| s.parse::<u64>().ok());
                return match ms {
                    Some(0) => BlockHint::Forever,
                    Some(ms) => BlockHint::Extra(Duration::from_millis(ms)),
                    None => BlockHint::None,
                };
            }
        }
        BlockHint::None
    } else if verb.eq_ignore_ascii_case(b"BLPOP") || verb.eq_ignore_ascii_case(b"BRPOP") {
        let secs = args
            .last()
            .and_then(|raw| std::str::from_utf8(raw).ok())
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| s.is_finite() && *s >= 0.0);
        match secs {
            Some(0.0) => BlockHint::Forever,
            Some(s) => BlockHint::Extra(Duration::from_secs_f64(s)),
            None => BlockHint::None,
        }
    } else {
        BlockHint::None
    }
}

/// Commands that are safe to re-issue blindly after a dropped connection:
/// either read-only, absolute writes (`SET`, `FLUSHALL`), or naturally
/// at-most-once-per-id (`XACK`, `XGROUP CREATE`). `XADD` would duplicate
/// the entry and `XREADGROUP` would double-deliver, so both are excluded.
fn is_idempotent(cmd: &[u8]) -> bool {
    const IDEMPOTENT: &[&[u8]] = &[
        b"PING",
        b"GET",
        b"SET",
        b"XLEN",
        b"XACK",
        b"XGROUP",
        b"XINFO",
        b"XAUTOCLAIM",
        b"FLUSHALL",
    ];
    IDEMPOTENT.iter().any(|c| cmd.eq_ignore_ascii_case(c))
}

/// A connection-level failure worth one reconnect; anything else (protocol
/// garbage, server errors) would only repeat on a fresh socket. `TimedOut`
/// and `WouldBlock` are the two kinds a bounded socket read/write produces
/// on a stalled-but-open server (which one depends on the platform).
fn is_transient(e: &ClientError) -> bool {
    use std::io::ErrorKind;
    matches!(
        e,
        ClientError::Io(io) if matches!(
            io.kind(),
            ErrorKind::UnexpectedEof
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::BrokenPipe
                | ErrorKind::TimedOut
                | ErrorKind::WouldBlock
        )
    )
}

fn exhausted(command: &[u8], e: ClientError) -> ClientError {
    match e {
        ClientError::Io(source) => ClientError::RetryExhausted {
            command: String::from_utf8_lossy(command).into_owned(),
            source,
        },
        other => other,
    }
}

impl Connection for Client {
    fn request(&mut self, args: &[&[u8]]) -> Result<Frame, ClientError> {
        match self.request_once(args) {
            Err(e) if is_transient(&e) && args.first().copied().is_some_and(is_idempotent) => {
                // One bounded reconnect-and-retry; a second failure is
                // surfaced as RetryExhausted so callers can tell "the
                // server is gone" from a one-off drop.
                if let Err(re) = self.reconnect() {
                    return Err(exhausted(args[0], re));
                }
                self.request_once(args).map_err(|re| exhausted(args[0], re))
            }
            other => other,
        }
    }

    fn request_many(&mut self, cmds: &[&[&[u8]]]) -> Result<Vec<Frame>, ClientError> {
        if cmds.is_empty() {
            return Ok(Vec::new());
        }
        match self.request_many_once(cmds) {
            Err(e)
                if is_transient(&e)
                    && cmds
                        .iter()
                        .all(|c| c.first().copied().is_some_and(is_idempotent)) =>
            {
                // The whole pipeline is retried as a unit: replies decoded
                // before the failure are discarded (the reconnect clears
                // the inbox) and every command re-executes — safe only
                // because every command in the batch is idempotent.
                if let Err(re) = self.reconnect() {
                    return Err(exhausted(cmds[0][0], re));
                }
                self.request_many_once(cmds)
                    .map_err(|re| exhausted(cmds[0][0], re))
            }
            other => other,
        }
    }
}

/// An in-process client: dispatches straight into a [`Shared`] engine with
/// no sockets or serialization (though commands still pass the full command
/// dispatch path).
pub struct InProcClient {
    shared: Arc<Shared>,
}

impl InProcClient {
    /// Creates a client over shared engine state.
    pub fn new(shared: Arc<Shared>) -> Self {
        Self { shared }
    }
}

impl Connection for InProcClient {
    fn request(&mut self, args: &[&[u8]]) -> Result<Frame, ClientError> {
        let owned: Vec<d4py_sync::SharedBuf> = args
            .iter()
            .map(|a| d4py_sync::SharedBuf::from(*a))
            .collect();
        Ok(self.shared.dispatch(&owned))
    }
}

/// Typed helpers over any [`Connection`].
pub trait RedisOps: Connection {
    /// `PING` → "PONG".
    fn ping(&mut self) -> Result<String, ClientError> {
        expect_text(self.request(&[b"PING"])?)
    }

    /// `SET key value`.
    fn set(&mut self, key: &[u8], value: &[u8]) -> Result<(), ClientError> {
        expect_ok(self.request(&[b"SET", key, value])?)
    }

    /// `GET key`.
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ClientError> {
        match self.request(&[b"GET", key])? {
            Frame::Null => Ok(None),
            Frame::Bulk(b) => Ok(Some(b.to_vec())),
            other => fail(other),
        }
    }

    /// `XADD key * field value` → assigned id.
    fn xadd(&mut self, key: &[u8], field: &[u8], value: &[u8]) -> Result<String, ClientError> {
        expect_text(self.request(&[b"XADD", key, b"*", field, value])?)
    }

    /// `XLEN key`.
    fn xlen(&mut self, key: &[u8]) -> Result<i64, ClientError> {
        expect_int(self.request(&[b"XLEN", key])?)
    }

    /// `XGROUP CREATE key group 0 MKSTREAM`, tolerating BUSYGROUP.
    fn xgroup_create(&mut self, key: &[u8], group: &[u8]) -> Result<(), ClientError> {
        match self.request(&[b"XGROUP", b"CREATE", key, group, b"0", b"MKSTREAM"])? {
            Frame::Simple(_) => Ok(()),
            Frame::Error(e) if e.starts_with("BUSYGROUP") => Ok(()),
            other => fail(other),
        }
    }

    /// `XREADGROUP GROUP g c COUNT 1 BLOCK ms [NOACK] STREAMS key >`
    /// → `Some((entry_id, field_value_pairs))` or `None` on timeout.
    #[allow(clippy::type_complexity)]
    fn xreadgroup_one(
        &mut self,
        key: &[u8],
        group: &[u8],
        consumer: &[u8],
        block: Duration,
        noack: bool,
    ) -> Result<Option<(String, Vec<(Vec<u8>, Vec<u8>)>)>, ClientError> {
        Ok(self
            .xreadgroup_many(key, group, consumer, 1, block, noack)?
            .into_iter()
            .next())
    }

    /// `XREADGROUP GROUP g c COUNT n BLOCK ms [NOACK] STREAMS key >` — up
    /// to `count` entries in one round-trip; empty on timeout.
    #[allow(clippy::type_complexity)]
    fn xreadgroup_many(
        &mut self,
        key: &[u8],
        group: &[u8],
        consumer: &[u8],
        count: usize,
        block: Duration,
        noack: bool,
    ) -> Result<Vec<(String, Vec<(Vec<u8>, Vec<u8>)>)>, ClientError> {
        let count = count.max(1).to_string();
        let block_ms = block.as_millis().max(1).to_string();
        let mut cmd: Vec<&[u8]> = vec![
            b"XREADGROUP",
            b"GROUP",
            group,
            consumer,
            b"COUNT",
            count.as_bytes(),
            b"BLOCK",
            block_ms.as_bytes(),
        ];
        if noack {
            cmd.push(b"NOACK");
        }
        cmd.extend_from_slice(&[b"STREAMS", key, b">"]);
        parse_read_reply(self.request(&cmd)?)
    }

    /// `XACK key group id`.
    fn xack(&mut self, key: &[u8], group: &[u8], id: &str) -> Result<i64, ClientError> {
        expect_int(self.request(&[b"XACK", key, group, id.as_bytes()])?)
    }

    /// `XAUTOCLAIM key group consumer min-idle 0 COUNT 1` → the first
    /// reclaimed entry, if any.
    #[allow(clippy::type_complexity)]
    fn xautoclaim_one(
        &mut self,
        key: &[u8],
        group: &[u8],
        consumer: &[u8],
        min_idle: Duration,
    ) -> Result<Option<(String, Vec<(Vec<u8>, Vec<u8>)>)>, ClientError> {
        let idle_ms = min_idle.as_millis().to_string();
        let reply = self.request(&[
            b"XAUTOCLAIM",
            key,
            group,
            consumer,
            idle_ms.as_bytes(),
            b"0",
            b"COUNT",
            b"1",
        ])?;
        Ok(parse_claim_reply(reply)?.into_iter().next())
    }

    /// `XINFO CONSUMERS key group` → (name, pending, idle) rows.
    #[allow(clippy::type_complexity)]
    fn xinfo_consumers(
        &mut self,
        key: &[u8],
        group: &[u8],
    ) -> Result<Vec<(String, i64, Duration)>, ClientError> {
        match self.request(&[b"XINFO", b"CONSUMERS", key, group])? {
            Frame::Error(e) => Err(ClientError::Server(e)),
            Frame::Array(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let Some(fields) = row.as_array() else {
                        continue;
                    };
                    // ["name", n, "pending", p, "idle", ms]
                    let name = fields.get(1).and_then(Frame::as_text).unwrap_or_default();
                    let pending = fields.get(3).and_then(Frame::as_int).unwrap_or(0);
                    let idle_ms = fields.get(5).and_then(Frame::as_int).unwrap_or(0);
                    out.push((name, pending, Duration::from_millis(idle_ms.max(0) as u64)));
                }
                Ok(out)
            }
            other => fail(other),
        }
    }

    /// `FLUSHALL`.
    fn flushall(&mut self) -> Result<(), ClientError> {
        expect_ok(self.request(&[b"FLUSHALL"])?)
    }
}

impl<T: Connection + ?Sized> RedisOps for T {}

/// One delivered stream entry: `(id, field/value pairs)`.
pub type StreamEntry = (String, Vec<(Vec<u8>, Vec<u8>)>);

fn parse_entry(entry: &[Frame]) -> Result<StreamEntry, ClientError> {
    let id = entry
        .first()
        .and_then(Frame::as_text)
        .ok_or_else(|| ClientError::UnexpectedReply("missing entry id".into()))?;
    let body = entry
        .get(1)
        .and_then(Frame::as_array)
        .ok_or_else(|| ClientError::UnexpectedReply("missing entry body".into()))?;
    let mut pairs = Vec::with_capacity(body.len() / 2);
    let mut it = body.iter();
    while let (Some(Frame::Bulk(f)), Some(Frame::Bulk(v))) = (it.next(), it.next()) {
        pairs.push((f.to_vec(), v.to_vec()));
    }
    Ok((id, pairs))
}

/// Parses an `XREADGROUP`/`XREAD` reply into the first stream's entries
/// (the workflow queues always read exactly one stream). `Null`/`NullArray`
/// (timeout) parse to an empty vec; error frames become
/// [`ClientError::Server`].
pub fn parse_read_reply(reply: Frame) -> Result<Vec<StreamEntry>, ClientError> {
    match reply {
        Frame::Null | Frame::NullArray => Ok(Vec::new()),
        Frame::Error(e) => Err(ClientError::Server(e)),
        Frame::Array(streams) => {
            // [[key, [[id, [f, v, ...]], ...]], ...] — first stream only.
            let entries = streams
                .first()
                .and_then(Frame::as_array)
                .and_then(|s| s.get(1))
                .and_then(Frame::as_array)
                .unwrap_or(&[]);
            entries
                .iter()
                .filter_map(Frame::as_array)
                .map(parse_entry)
                .collect()
        }
        other => fail(other),
    }
}

/// Parses an `XAUTOCLAIM` reply (`[next-cursor, [entries]]`) into the
/// reclaimed entries; error frames become [`ClientError::Server`].
pub fn parse_claim_reply(reply: Frame) -> Result<Vec<StreamEntry>, ClientError> {
    match reply {
        Frame::Error(e) => Err(ClientError::Server(e)),
        Frame::Array(parts) => {
            let entries = parts.get(1).and_then(Frame::as_array).unwrap_or(&[]);
            entries
                .iter()
                .filter_map(Frame::as_array)
                .map(parse_entry)
                .collect()
        }
        other => fail(other),
    }
}

fn fail<T>(frame: Frame) -> Result<T, ClientError> {
    match frame {
        Frame::Error(e) => Err(ClientError::Server(e)),
        other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
    }
}

fn expect_ok(frame: Frame) -> Result<(), ClientError> {
    match frame {
        Frame::Simple(_) => Ok(()),
        other => fail(other),
    }
}

fn expect_text(frame: Frame) -> Result<String, ClientError> {
    match frame {
        Frame::Simple(s) => Ok(s),
        Frame::Bulk(b) => String::from_utf8(b.to_vec())
            .map_err(|_| ClientError::UnexpectedReply("non-UTF8 text".into())),
        other => fail(other),
    }
}

fn expect_int(frame: Frame) -> Result<i64, ClientError> {
    match frame {
        Frame::Integer(i) => Ok(i),
        other => fail(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inproc() -> InProcClient {
        InProcClient::new(Arc::new(Shared::new()))
    }

    #[test]
    fn inproc_basic_ops() {
        let mut c = inproc();
        assert_eq!(c.ping().unwrap(), "PONG");
        c.set(b"k", b"v").unwrap();
        assert_eq!(c.get(b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(c.get(b"none").unwrap(), None);
    }

    #[test]
    fn inproc_stream_workflow() {
        let mut c = inproc();
        c.xgroup_create(b"q", b"workers").unwrap();
        c.xgroup_create(b"q", b"workers").unwrap(); // BUSYGROUP tolerated
        let id = c.xadd(b"q", b"task", b"payload").unwrap();
        assert_eq!(c.xlen(b"q").unwrap(), 1);
        let (got_id, pairs) = c
            .xreadgroup_one(b"q", b"workers", b"w0", Duration::from_millis(50), false)
            .unwrap()
            .unwrap();
        assert_eq!(got_id, id);
        assert_eq!(pairs, vec![(b"task".to_vec(), b"payload".to_vec())]);
        assert_eq!(c.xack(b"q", b"workers", &got_id).unwrap(), 1);
        // Queue drained: the next read times out.
        assert!(c
            .xreadgroup_one(b"q", b"workers", b"w0", Duration::from_millis(20), false)
            .unwrap()
            .is_none());
    }

    #[test]
    fn inproc_consumer_idle_info() {
        let mut c = inproc();
        c.xgroup_create(b"q", b"g").unwrap();
        c.xadd(b"q", b"t", b"1").unwrap();
        c.xreadgroup_one(b"q", b"g", b"w0", Duration::from_millis(20), true)
            .unwrap()
            .unwrap();
        std::thread::sleep(Duration::from_millis(15));
        let rows = c.xinfo_consumers(b"q", b"g").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "w0");
        assert!(rows[0].2 >= Duration::from_millis(10));
    }

    #[test]
    fn server_error_is_surfaced() {
        let mut c = inproc();
        c.set(b"s", b"x").unwrap();
        // XADD against a string key → WRONGTYPE server error.
        let err = c.xadd(b"s", b"f", b"v").unwrap_err();
        assert!(matches!(err, ClientError::Server(_)));
    }

    mod reconnect {
        use super::super::*;
        use std::net::{TcpListener, TcpStream};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::thread::JoinHandle;
        use std::time::Instant;

        /// What the fault server does with one accepted connection.
        #[derive(Clone, Copy)]
        enum Plan {
            /// Accept and slam the socket shut before replying.
            Drop,
            /// Read one command and answer `+PONG\r\n`.
            Serve,
            /// Read the command, then hold the socket open without ever
            /// replying — the hung-but-open server shape. The slot ends
            /// when the client abandons the connection.
            Stall,
        }

        /// A fault-injecting server: one plan entry per expected connection.
        fn fault_server(plan: &'static [Plan]) -> (SocketAddr, Arc<AtomicUsize>, JoinHandle<()>) {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let accepted = Arc::new(AtomicUsize::new(0));
            let counter = accepted.clone();
            let handle = std::thread::spawn(move || {
                for &entry in plan {
                    let Ok((mut sock, _)) = listener.accept() else {
                        return;
                    };
                    counter.fetch_add(1, Ordering::SeqCst);
                    let mut buf = [0u8; 1024];
                    match entry {
                        Plan::Drop => {}
                        Plan::Serve => {
                            let _ = sock.read(&mut buf);
                            let _ = sock.write_all(b"+PONG\r\n");
                        }
                        Plan::Stall => {
                            let _ = sock.read(&mut buf);
                            // Never reply; wait for the peer to hang up so
                            // the next plan slot starts cleanly.
                            while sock.read(&mut buf).map(|n| n > 0).unwrap_or(false) {}
                        }
                    }
                    // `sock` drops here; a Drop slot closes before replying.
                }
            });
            (addr, accepted, handle)
        }

        /// Tight timeouts so stall tests finish in tens of milliseconds.
        fn fast_timeouts() -> ClientConfig {
            ClientConfig {
                read_timeout: Some(Duration::from_millis(50)),
                write_timeout: Some(Duration::from_millis(50)),
            }
        }

        #[test]
        fn idempotent_command_survives_one_dropped_connection() {
            let (addr, accepted, server) = fault_server(&[Plan::Drop, Plan::Serve]);
            let mut c = Client::connect(addr).expect("connect");
            // First request hits the dying socket, the bounded retry
            // reconnects and succeeds against the healthy second accept.
            assert_eq!(c.ping().expect("retried ping"), "PONG");
            assert_eq!(accepted.load(Ordering::SeqCst), 2);
            server.join().expect("server");
        }

        #[test]
        fn second_drop_reports_retry_exhausted() {
            let (addr, _accepted, server) = fault_server(&[Plan::Drop, Plan::Drop]);
            let mut c = Client::connect(addr).expect("connect");
            let err = c.ping().expect_err("both connections dropped");
            match err {
                ClientError::RetryExhausted { command, .. } => assert_eq!(command, "PING"),
                other => panic!("expected RetryExhausted, got {other}"),
            }
            server.join().expect("server");
        }

        #[test]
        fn non_idempotent_command_is_never_retried() {
            let (addr, accepted, server) = fault_server(&[Plan::Drop, Plan::Drop]);
            let mut c = Client::connect(addr).expect("connect");
            // XADD could duplicate the entry, so the drop must surface as a
            // plain I/O error without a second connection being dialed.
            let err = c.xadd(b"q", b"f", b"v").expect_err("dropped connection");
            assert!(matches!(err, ClientError::Io(_)), "got {err}");
            assert_eq!(accepted.load(Ordering::SeqCst), 1);
            // Unblock the server's second planned accept, then join.
            let _ = TcpStream::connect(addr);
            server.join().expect("server");
        }

        #[test]
        fn stalled_server_times_out_instead_of_hanging() {
            // Regression: read_frame had no deadline, so a server that
            // accepted and then went silent blocked the worker forever.
            // With bounded reads the stall is one transient TimedOut, the
            // idempotent PING gets its reconnect-retry, and the second
            // stall surfaces as RetryExhausted.
            let (addr, accepted, server) = fault_server(&[Plan::Stall, Plan::Stall]);
            let mut c = Client::connect_with(addr, fast_timeouts()).expect("connect");
            let start = Instant::now();
            let err = c.ping().expect_err("server never replies");
            match err {
                ClientError::RetryExhausted { command, source } => {
                    assert_eq!(command, "PING");
                    assert!(
                        matches!(
                            source.kind(),
                            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                        ),
                        "expected a timeout kind, got {source:?}"
                    );
                }
                other => panic!("expected RetryExhausted, got {other}"),
            }
            assert_eq!(accepted.load(Ordering::SeqCst), 2, "one bounded retry");
            // timing: generous upper bound pinning "bounded, not forever" —
            // two 50 ms read timeouts must not take anywhere near 10 s.
            assert!(start.elapsed() < Duration::from_secs(10));
            // The second stall slot waits for the peer to hang up.
            drop(c);
            server.join().expect("server");
        }

        #[test]
        fn stalled_server_non_idempotent_times_out_without_retry() {
            let (addr, accepted, server) = fault_server(&[Plan::Stall]);
            let mut c = Client::connect_with(addr, fast_timeouts()).expect("connect");
            let err = c.xadd(b"q", b"f", b"v").expect_err("server never replies");
            match err {
                ClientError::Io(io) => assert!(
                    matches!(
                        io.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ),
                    "expected a timeout kind, got {io:?}"
                ),
                other => panic!("expected Io, got {other}"),
            }
            assert_eq!(accepted.load(Ordering::SeqCst), 1, "no second dial");
            drop(c);
            server.join().expect("server");
        }

        #[test]
        fn blocking_read_deadline_extends_past_block_budget() {
            // An XREADGROUP with BLOCK longer than the read timeout must
            // not be misread as a stall: the client widens the deadline by
            // the server-side block budget for that one request.
            let server = crate::server::Server::start(0).expect("server");
            let mut c = Client::connect_with(server.addr(), fast_timeouts()).expect("connect");
            c.xgroup_create(b"q", b"g").expect("group");
            let got = c
                .xreadgroup_one(b"q", b"g", b"w0", Duration::from_millis(150), true)
                .expect("legitimate long poll must not time out");
            assert_eq!(got, None, "stream is empty: server-side timeout");
        }
    }

    mod hints {
        use super::super::*;

        #[test]
        fn block_hint_reads_xreadgroup_and_blpop() {
            assert_eq!(block_hint(&[b"GET", b"k"]), BlockHint::None);
            assert_eq!(
                block_hint(&[b"XREADGROUP", b"GROUP", b"g", b"c", b"BLOCK", b"250"]),
                BlockHint::Extra(Duration::from_millis(250))
            );
            assert_eq!(
                block_hint(&[b"xread", b"block", b"0", b"STREAMS", b"s", b"$"]),
                BlockHint::Forever
            );
            assert_eq!(
                block_hint(&[b"BLPOP", b"q", b"1.5"]),
                BlockHint::Extra(Duration::from_millis(1500))
            );
            assert_eq!(block_hint(&[b"BRPOP", b"q", b"0"]), BlockHint::Forever);
            assert_eq!(
                block_hint(&[b"XREADGROUP", b"GROUP", b"g", b"c", b"STREAMS", b"s", b">"]),
                BlockHint::None
            );
        }

        #[test]
        fn block_hint_max_prefers_longest_wait() {
            let a = BlockHint::Extra(Duration::from_millis(10));
            let b = BlockHint::Extra(Duration::from_millis(90));
            assert_eq!(a.max(b), b);
            assert_eq!(b.max(BlockHint::None), b);
            assert_eq!(b.max(BlockHint::Forever), BlockHint::Forever);
            assert_eq!(BlockHint::None.max(BlockHint::None), BlockHint::None);
        }
    }

    mod pipeline {
        use super::super::*;
        use super::inproc;
        use crate::server::Server;

        #[test]
        fn request_many_answers_every_command_in_order() {
            let server = Server::start(0).expect("server");
            let mut c = Client::connect(server.addr()).expect("connect");
            let cmds: Vec<Vec<Vec<u8>>> = (0..10)
                .map(|i| {
                    vec![
                        b"SET".to_vec(),
                        format!("pk{i}").into_bytes(),
                        format!("v{i}").into_bytes(),
                    ]
                })
                .chain((0..10).map(|i| vec![b"GET".to_vec(), format!("pk{i}").into_bytes()]))
                .collect();
            let borrowed: Vec<Vec<&[u8]>> = cmds
                .iter()
                .map(|c| c.iter().map(Vec::as_slice).collect())
                .collect();
            let batch: Vec<&[&[u8]]> = borrowed.iter().map(Vec::as_slice).collect();
            let replies = c.request_many(&batch).expect("pipeline");
            assert_eq!(replies.len(), 20);
            for reply in &replies[..10] {
                assert_eq!(*reply, Frame::ok());
            }
            for (i, reply) in replies[10..].iter().enumerate() {
                assert_eq!(*reply, Frame::bulk(format!("v{i}")), "reply {i}");
            }
        }

        #[test]
        fn request_many_surfaces_per_command_errors_in_place() {
            let mut c = inproc();
            c.set(b"s", b"x").expect("set");
            let batch: Vec<&[&[u8]]> = vec![
                &[b"PING"],
                &[b"XADD", b"s", b"*", b"f", b"v"], // WRONGTYPE
                &[b"GET", b"s"],
            ];
            let replies = c.request_many(&batch).expect("transport must not fail");
            assert_eq!(replies.len(), 3);
            assert_eq!(replies[0], Frame::Simple("PONG".into()));
            assert!(replies[1].is_error(), "WRONGTYPE stays an in-place frame");
            assert_eq!(replies[2], Frame::bulk("x"));
        }

        #[test]
        fn empty_pipeline_is_a_no_op() {
            let mut c = inproc();
            assert!(c.request_many(&[]).expect("empty").is_empty());
        }
    }
}
