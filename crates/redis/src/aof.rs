//! Append-only-file persistence (Redis's AOF).
//!
//! The paper attributes part of the Redis mappings' overhead to Redis being
//! "more resource-intensive" thanks to features like "robust data
//! persistence" (§5.2). redis-lite makes that cost explicit and switchable:
//! with an [`Aof`] attached, every write command is appended to a log in
//! RESP command format (exactly like Redis's AOF, so the file is replayable
//! by any RESP speaker) and replayed on startup.
//!
//! Fsync policy mirrors Redis's `appendfsync`: [`FsyncPolicy::Always`]
//! (durable, slow) or [`FsyncPolicy::No`] (buffered, fast; the OS decides).

use crate::resp;
use d4py_sync::Mutex;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// When to fsync the AOF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every write command (Redis `appendfsync always`).
    Always,
    /// Never fsync explicitly (Redis `appendfsync no`).
    No,
}

/// An append-only command log.
pub struct Aof {
    path: PathBuf,
    writer: Mutex<BufWriter<std::fs::File>>,
    policy: FsyncPolicy,
}

impl Aof {
    /// Opens (creating if missing) the AOF at `path` for appending.
    pub fn open(path: impl AsRef<Path>, policy: FsyncPolicy) -> std::io::Result<Aof> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Aof {
            path,
            writer: Mutex::new(BufWriter::new(file)),
            policy,
        })
    }

    /// The log's location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one command (array-of-bulk-strings form). Accepts any
    /// byte-slice-like argument type (`Vec<u8>`, `SharedBuf`, ...).
    pub fn append<T: AsRef<[u8]>>(&self, args: &[T]) -> std::io::Result<()> {
        let borrowed: Vec<&[u8]> = args.iter().map(|a| a.as_ref()).collect();
        let mut buf = d4py_sync::ByteBuf::with_capacity(64);
        resp::encode_command(&borrowed, &mut buf);
        let mut writer = self.writer.lock();
        writer.write_all(&buf)?;
        match self.policy {
            FsyncPolicy::Always => {
                writer.flush()?;
                writer.get_ref().sync_data()?;
            }
            FsyncPolicy::No => {}
        }
        Ok(())
    }

    /// Flushes buffered commands to the OS.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().flush()
    }

    /// Reads every command stored at `path` (for replay). Tolerates a
    /// truncated trailing command — the crash case AOF exists for.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Vec<Vec<Vec<u8>>>> {
        let mut bytes = Vec::new();
        match std::fs::File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(vec![]),
            Err(e) => return Err(e),
        }
        let mut commands = Vec::new();
        let mut offset = 0;
        while offset < bytes.len() {
            match resp::decode(&bytes[offset..]) {
                Ok(Some((frame, used))) => {
                    offset += used;
                    if let Some(items) = frame.as_array() {
                        let args: Vec<Vec<u8>> = items
                            .iter()
                            .filter_map(|f| match f {
                                resp::Frame::Bulk(b) => Some(b.to_vec()),
                                _ => None,
                            })
                            .collect();
                        if args.len() == items.len() {
                            commands.push(args);
                        }
                    }
                }
                Ok(None) => break, // truncated tail: stop cleanly
                Err(_) => break,   // corrupt tail: keep what replayed
            }
        }
        Ok(commands)
    }
}

impl Drop for Aof {
    fn drop(&mut self) {
        let _ = self.writer.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("d4py_aof_{}_{tag}.aof", std::process::id()))
    }

    fn cmd(parts: &[&str]) -> Vec<Vec<u8>> {
        parts.iter().map(|p| p.as_bytes().to_vec()).collect()
    }

    #[test]
    fn append_and_load_roundtrip() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let aof = Aof::open(&path, FsyncPolicy::No).unwrap();
            aof.append(&cmd(&["SET", "k", "v"])).unwrap();
            aof.append(&cmd(&["LPUSH", "q", "a", "b"])).unwrap();
            aof.flush().unwrap();
        }
        let commands = Aof::load(&path).unwrap();
        assert_eq!(commands.len(), 2);
        assert_eq!(commands[0], cmd(&["SET", "k", "v"]));
        assert_eq!(commands[1], cmd(&["LPUSH", "q", "a", "b"]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_loads_empty() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        assert!(Aof::load(&path).unwrap().is_empty());
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
            aof.append(&cmd(&["SET", "a", "1"])).unwrap();
            aof.append(&cmd(&["SET", "b", "2"])).unwrap();
        }
        // Chop bytes off the end, simulating a crash mid-append.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let commands = Aof::load(&path).unwrap();
        assert_eq!(commands.len(), 1, "only the complete command survives");
        assert_eq!(commands[0], cmd(&["SET", "a", "1"]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsync_always_survives_without_flush() {
        let path = temp_path("fsync");
        let _ = std::fs::remove_file(&path);
        let aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
        aof.append(&cmd(&["SET", "k", "v"])).unwrap();
        // No explicit flush: Always policy already flushed.
        let commands = Aof::load(&path).unwrap();
        assert_eq!(commands.len(), 1);
        drop(aof);
        let _ = std::fs::remove_file(&path);
    }
}
