//! Reactor-mode integration tests: resumable parsing on the real wire,
//! connection churn, the connection cap, half-open reaping, and shutdown
//! draining parked blocking commands.

use redis_lite::client::{Client, Connection, RedisOps};
use redis_lite::resp::{self, Frame};
use redis_lite::server::{Server, ServerConfig, ServerMode};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn reactor_config() -> ServerConfig {
    ServerConfig {
        mode: ServerMode::Reactor,
        ..ServerConfig::default()
    }
}

fn read_replies(sock: &mut TcpStream, n: usize) -> Vec<Frame> {
    let mut inbox = d4py_sync::ByteBuf::new();
    let mut chunk = [0u8; 4096];
    let mut replies = Vec::with_capacity(n);
    while replies.len() < n {
        match resp::decode(&inbox).expect("well-formed reply stream") {
            Some((frame, used)) => {
                let _ = inbox.split_to(used);
                replies.push(frame);
            }
            None => {
                let got = sock.read(&mut chunk).expect("read");
                assert!(got > 0, "server closed mid-reply");
                inbox.extend_from_slice(&chunk[..got]);
            }
        }
    }
    replies
}

/// The resumable-parser satellite, pinned on the real wire: a 20-command
/// pipeline split into two TCP writes at EVERY byte offset must parse into
/// exactly 20 in-order replies, no matter where the boundary falls (mid
/// header, mid length, mid payload, mid CRLF).
#[test]
fn pipeline_split_at_every_byte_offset_parses_on_the_wire() {
    let server = Server::start_with(0, reactor_config()).expect("server");
    let addr = server.addr();

    let mut wire = d4py_sync::ByteBuf::new();
    let n = 20usize;
    for i in 0..n / 2 {
        let key = format!("w{i}");
        resp::encode_command(
            &[b"SET", key.as_bytes(), format!("v{i}").as_bytes()],
            &mut wire,
        );
    }
    for i in 0..n / 2 {
        let key = format!("w{i}");
        resp::encode_command(&[b"GET", key.as_bytes()], &mut wire);
    }

    for split in 1..wire.len() {
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.set_nodelay(true).expect("nodelay");
        sock.write_all(&wire[..split]).expect("first half");
        // Let the server consume the first fragment as its own read so the
        // parser genuinely suspends mid-command, then resume.
        std::thread::sleep(Duration::from_micros(300));
        sock.write_all(&wire[split..]).expect("second half");
        let replies = read_replies(&mut sock, n);
        for (i, reply) in replies[..n / 2].iter().enumerate() {
            assert_eq!(*reply, Frame::ok(), "split {split}, SET {i}");
        }
        for (i, reply) in replies[n / 2..].iter().enumerate() {
            assert_eq!(
                *reply,
                Frame::bulk(format!("v{i}")),
                "split {split}, GET {i}"
            );
        }
    }
}

/// Accept/close storms past the connection cap: the server must neither
/// wedge its accept loop nor leak tracked connections.
#[test]
fn connection_churn_storm_at_the_cap() {
    let server = Server::start_with(
        0,
        ServerConfig {
            max_connections: 8,
            ..reactor_config()
        },
    )
    .expect("server");
    let addr = server.addr();

    for _round in 0..25 {
        // Open a full house plus a few rejects, then slam everything shut.
        let held: Vec<TcpStream> = (0..12)
            .filter_map(|_| TcpStream::connect(addr).ok())
            .collect();
        assert!(held.len() >= 8, "connects must succeed at the TCP level");
        drop(held);
    }

    // The table drains as workers reap the closed sockets. The kernel's
    // accept backlog may still be feeding stale (already-closed) sockets to
    // the accept thread, so poll until a fresh client is admitted.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut recovered = false;
    while Instant::now() < deadline && !recovered {
        if let Ok(mut c) = Client::connect(addr) {
            recovered = matches!(c.ping().as_deref(), Ok("PONG"));
        }
        if !recovered {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    assert!(recovered, "server must admit clients after the storm");

    // And with the storm fully drained, no tracked entries may leak.
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && server.live_connections() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.live_connections(), 0, "no leaked connection entries");
}

/// Past `max_connections`, a new client gets the Redis maxclients error and
/// an immediate close; once a slot frees, new clients are admitted again.
#[test]
fn connection_cap_rejects_with_error_then_recovers() {
    let server = Server::start_with(
        0,
        ServerConfig {
            max_connections: 2,
            ..reactor_config()
        },
    )
    .expect("server");
    let addr = server.addr();

    let mut a = Client::connect(addr).expect("first");
    let mut b = Client::connect(addr).expect("second");
    assert_eq!(a.ping().expect("a"), "PONG");
    assert_eq!(b.ping().expect("b"), "PONG");

    // Third client: TCP connects, but the protocol answer is the error.
    let mut rejected = TcpStream::connect(addr).expect("tcp connect");
    rejected
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut text = Vec::new();
    let mut chunk = [0u8; 256];
    loop {
        match rejected.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => text.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    assert!(
        String::from_utf8_lossy(&text).contains("max number of clients reached"),
        "got: {:?}",
        String::from_utf8_lossy(&text)
    );

    // Free a slot; a new client must be admitted.
    drop(b);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut admitted = false;
    while Instant::now() < deadline && !admitted {
        if let Ok(mut c) = Client::connect(addr) {
            admitted = c.ping().is_ok();
        }
        if !admitted {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    assert!(admitted, "slot must be reusable after a client leaves");
    assert_eq!(a.ping().expect("a again"), "PONG");
}

/// A half-open peer (connected, then silent forever) is reaped by the idle
/// deadline instead of holding its slot until process exit.
#[test]
fn half_open_connection_is_reaped_by_idle_deadline() {
    let server = Server::start_with(
        0,
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(80)),
            ..reactor_config()
        },
    )
    .expect("server");

    let mut half_open = TcpStream::connect(server.addr()).expect("connect");
    half_open
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    // An ACTIVE connection must survive well past the idle limit.
    let mut active = Client::connect(server.addr()).expect("active");
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(active.ping().expect("active ping"), "PONG");
    }

    // The silent one observes the server-side close as EOF.
    let mut chunk = [0u8; 16];
    match half_open.read(&mut chunk) {
        Ok(0) => {}
        Ok(n) => panic!("unexpected {n} bytes on a silent connection"),
        Err(e) => panic!("expected EOF from the reap, got {e}"),
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && server.live_connections() > 1 {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        server.live_connections(),
        1,
        "only the active client remains"
    );
}

/// `shutdown()` must sever connections parked in a blocking command —
/// a BLPOP-forever waiter sees its connection die instead of the server
/// hanging on join.
#[test]
fn shutdown_drains_parked_block_waiters() {
    let mut server = Server::start_with(0, reactor_config()).expect("server");
    let addr = server.addr();

    let waiter = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        // BLPOP 0 = wait forever; the reply only comes if shutdown severs.
        c.request(&[b"BLPOP".as_ref(), b"never".as_ref(), b"0".as_ref()])
    });

    // Give the BLPOP time to reach the server and park.
    std::thread::sleep(Duration::from_millis(100));
    let start = Instant::now();
    server.shutdown();
    // timing: generous bound pinning "shutdown does not hang on parked
    // waiters" — severing one connection must not take anywhere near 10 s.
    assert!(start.elapsed() < Duration::from_secs(10));

    let result = waiter.join().expect("waiter thread");
    assert!(
        result.is_err(),
        "parked BLPOP must observe the severed connection, got {result:?}"
    );
}

/// Reactor-mode XREAD BLOCK wakes across connections (the parked-connection
/// wait list stands in for the old parked thread).
#[test]
fn xread_block_wakes_across_reactor_connections() {
    let server = Server::start_with(0, reactor_config()).expect("server");
    let addr = server.addr();

    let mut seeder = Client::connect(addr).expect("seeder");
    seeder
        .request(&[
            b"XADD".as_ref(),
            b"st".as_ref(),
            b"*".as_ref(),
            b"f".as_ref(),
            b"seed".as_ref(),
        ])
        .expect("seed");

    let waiter = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.request(&[
            b"XREAD".as_ref(),
            b"BLOCK".as_ref(),
            b"5000".as_ref(),
            b"STREAMS".as_ref(),
            b"st".as_ref(),
            b"$".as_ref(),
        ])
        .expect("xread")
    });
    std::thread::sleep(Duration::from_millis(100));
    seeder
        .request(&[
            b"XADD".as_ref(),
            b"st".as_ref(),
            b"*".as_ref(),
            b"f".as_ref(),
            b"fresh".as_ref(),
        ])
        .expect("fresh");
    let reply = waiter.join().expect("waiter");
    let text = format!("{reply:?}");
    assert!(text.contains("fresh"), "parked XREAD must deliver: {text}");
    assert!(
        !text.contains("seed"),
        "XREAD from $ must not replay history"
    );
}
