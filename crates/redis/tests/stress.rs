//! Concurrency and protocol stress tests for redis-lite.

use redis_lite::client::{Client, Connection, RedisOps};
use redis_lite::engine::Shared;
use redis_lite::resp::Frame;
use redis_lite::server::Server;
use std::sync::Arc;
use std::time::Duration;

fn f(parts: &[&str]) -> Vec<d4py_sync::SharedBuf> {
    parts
        .iter()
        .map(|p| d4py_sync::SharedBuf::from(p.as_bytes()))
        .collect()
}

#[test]
fn concurrent_increments_are_atomic() {
    let shared = Arc::new(Shared::new());
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let s = shared.clone();
            std::thread::spawn(move || {
                for _ in 0..250 {
                    s.dispatch(&f(&["INCR", "counter"]));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        shared.dispatch(&f(&["GET", "counter"])),
        Frame::bulk("2000")
    );
}

#[test]
fn concurrent_stream_consumers_see_each_entry_once() {
    let shared = Arc::new(Shared::new());
    shared.dispatch(&f(&["XGROUP", "CREATE", "s", "g", "0", "MKSTREAM"]));
    for i in 0..200 {
        shared.dispatch(&f(&["XADD", "s", "*", "n", &i.to_string()]));
    }
    let handles: Vec<_> = (0..4)
        .map(|c| {
            let s = shared.clone();
            std::thread::spawn(move || {
                let consumer = format!("c{c}");
                let mut got = Vec::new();
                loop {
                    let reply = s.dispatch(&f(&[
                        "XREADGROUP",
                        "GROUP",
                        "g",
                        &consumer,
                        "COUNT",
                        "1",
                        "NOACK",
                        "STREAMS",
                        "s",
                        ">",
                    ]));
                    match reply {
                        Frame::NullArray | Frame::Null => break,
                        Frame::Array(streams) => {
                            let text = format!("{streams:?}");
                            got.push(text);
                        }
                        other => panic!("unexpected: {other:?}"),
                    }
                }
                got.len()
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 200, "every entry delivered to exactly one consumer");
}

#[test]
fn many_parallel_tcp_clients() {
    let server = Server::start(0).unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..10)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for j in 0..50 {
                    let key = format!("k:{i}:{j}");
                    c.set(key.as_bytes(), b"v").unwrap();
                    assert_eq!(c.get(key.as_bytes()).unwrap(), Some(b"v".to_vec()));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut c = Client::connect(addr).unwrap();
    let reply = c.request(&[b"DBSIZE"]).unwrap();
    assert_eq!(reply, Frame::Integer(500));
}

#[test]
fn blocking_readers_all_wake_as_data_arrives() {
    let server = Server::start(0).unwrap();
    let addr = server.addr();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.request(&[b"BLPOP".as_ref(), b"work".as_ref(), b"3".as_ref()])
                    .unwrap()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let mut pusher = Client::connect(addr).unwrap();
    for i in 0..4 {
        pusher
            .request(&[
                b"RPUSH".as_ref(),
                b"work".as_ref(),
                format!("job{i}").as_bytes(),
            ])
            .unwrap();
    }
    let mut delivered = 0;
    for r in readers {
        let reply = r.join().unwrap();
        if reply != Frame::NullArray {
            delivered += 1;
        }
    }
    assert_eq!(delivered, 4, "each blocked reader gets exactly one job");
}

#[test]
fn mixed_type_commands_under_contention_never_corrupt() {
    let shared = Arc::new(Shared::new());
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let s = shared.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    match t % 3 {
                        0 => {
                            s.dispatch(&f(&["LPUSH", "list", &i.to_string()]));
                            s.dispatch(&f(&["RPOP", "list"]));
                        }
                        1 => {
                            s.dispatch(&f(&["HSET", "hash", &format!("f{i}"), "v"]));
                        }
                        _ => {
                            s.dispatch(&f(&["SADD", "set", &i.to_string()]));
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Hash has 100 distinct fields (written twice each), set 100 members.
    assert_eq!(shared.dispatch(&f(&["HLEN", "hash"])), Frame::Integer(100));
    assert_eq!(shared.dispatch(&f(&["SCARD", "set"])), Frame::Integer(100));
    // List drained to 0 or small residue; type must be intact (no WRONGTYPE).
    let llen = shared.dispatch(&f(&["LLEN", "list"]));
    assert!(matches!(llen, Frame::Integer(n) if n >= 0));
}

#[test]
fn oversized_pipeline_on_one_connection() {
    let server = Server::start(0).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    // 1000 sequential commands over one connection.
    for i in 0..1000 {
        let reply = c
            .request(&[b"APPEND".as_ref(), b"log".as_ref(), b"x".as_ref()])
            .unwrap();
        assert_eq!(reply, Frame::Integer(i + 1));
    }
}

#[test]
fn aof_persists_state_across_restarts() {
    use redis_lite::aof::FsyncPolicy;
    let path = std::env::temp_dir().join(format!("d4py_aof_restart_{}.aof", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let shared = Shared::with_aof(&path, FsyncPolicy::Always).unwrap();
        shared.dispatch(&f(&["SET", "config:mode", "hybrid"]));
        shared.dispatch(&f(&["RPUSH", "jobs", "j1", "j2"]));
        shared.dispatch(&f(&["XADD", "stream", "*", "task", "payload"]));
        shared.dispatch(&f(&["HSET", "state", "happyState#0", "snapshot"]));
        // A consumed job (blocking pop) must not reappear after replay.
        shared.dispatch(&f(&["BLPOP", "jobs", "1"]));
    }
    let revived = Shared::with_aof(&path, FsyncPolicy::Always).unwrap();
    assert_eq!(
        revived.dispatch(&f(&["GET", "config:mode"])),
        Frame::bulk("hybrid")
    );
    assert_eq!(revived.dispatch(&f(&["LLEN", "jobs"])), Frame::Integer(1));
    assert_eq!(
        revived.dispatch(&f(&["LRANGE", "jobs", "0", "-1"])),
        Frame::Array(vec![Frame::bulk("j2")]),
        "the BLPOP-consumed j1 must not be replayed back"
    );
    assert_eq!(revived.dispatch(&f(&["XLEN", "stream"])), Frame::Integer(1));
    assert_eq!(
        revived.dispatch(&f(&["HGET", "state", "happyState#0"])),
        Frame::bulk("snapshot")
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn aof_ignores_failed_writes_and_reads() {
    use redis_lite::aof::{Aof, FsyncPolicy};
    let path = std::env::temp_dir().join(format!("d4py_aof_filter_{}.aof", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let shared = Shared::with_aof(&path, FsyncPolicy::Always).unwrap();
        shared.dispatch(&f(&["SET", "k", "v"]));
        shared.dispatch(&f(&["GET", "k"])); // read: not logged
        shared.dispatch(&f(&["INCR", "k"])); // fails (not an int): not logged
    }
    let commands = Aof::load(&path).unwrap();
    assert_eq!(commands.len(), 1, "{commands:?}");
    assert_eq!(commands[0][0], b"SET".to_vec());
    let _ = std::fs::remove_file(&path);
}
