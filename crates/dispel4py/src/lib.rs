//! # dispel4py-rs
//!
//! A production-quality Rust reproduction of **"Optimization towards
//! Efficiency and Stateful of dispel4py"** (SC 2023 workshops): the
//! dispel4py stream-based workflow system with the paper's contributions —
//! Redis-backed dynamic scheduling, an auto-scaling optimization, and the
//! hybrid mapping for stateful applications — plus everything they stand
//! on, including a from-scratch Redis server ([`redis_lite`]).
//!
//! ## The seven mappings
//!
//! | Mapping | Where | Stateful? | Auto-scaling? |
//! |---|---|---|---|
//! | `simple` | [`mappings::Simple`] | ✓ (sequential) | – |
//! | `multi` | [`mappings::Multi`] | ✓ | – |
//! | `dyn_multi` | [`mappings::DynMulti`] | ✗ | – |
//! | `dyn_auto_multi` | [`mappings::DynAutoMulti`] | ✗ | queue size |
//! | `dyn_redis` | [`redis::DynRedis`] | ✗ | – |
//! | `dyn_auto_redis` | [`redis::DynAutoRedis`] | ✗ | idle time |
//! | `hybrid_redis` | [`redis::HybridRedis`] | ✓ | – |
//!
//! ## Quickstart
//!
//! ```
//! use dispel4py::prelude::*;
//!
//! let mut g = WorkflowGraph::new("hello");
//! let src = g.add_pe(PeSpec::source("numbers", "out"));
//! let sq = g.add_pe(PeSpec::transform("square", "in", "out"));
//! let snk = g.add_pe(PeSpec::sink("collect", "in"));
//! g.connect(src, "out", sq, "in", Grouping::Shuffle).unwrap();
//! g.connect(sq, "out", snk, "in", Grouping::Shuffle).unwrap();
//!
//! let (_, results) = Collector::new();
//! let r = results.clone();
//! let mut exe = Executable::new(g).unwrap();
//! exe.register(src, || Box::new(FnSource(|ctx: &mut dyn Context| {
//!     for i in 1..=5 { ctx.emit("out", Value::Int(i)); }
//! })));
//! exe.register(sq, || Box::new(FnTransform(|_: &str, v: Value, ctx: &mut dyn Context| {
//!     let x = v.as_int().unwrap();
//!     ctx.emit("out", Value::Int(x * x));
//! })));
//! exe.register(snk, move || Box::new(Collector::into_handle(r.clone())));
//! let exe = exe.seal().unwrap();
//!
//! let report = DynMulti.execute(&exe, &ExecutionOptions::new(4)).unwrap();
//! let mut got: Vec<i64> = results.lock().iter().map(|v| v.as_int().unwrap()).collect();
//! got.sort();
//! assert_eq!(got, vec![1, 4, 9, 16, 25]);
//! println!("{report}");
//! ```

#![warn(missing_docs)]

/// The abstract-workflow layer (re-export of `d4py-graph`).
pub use d4py_graph as graph;

/// The runtime: values, PEs, metrics, core mappings (re-export of `d4py-core`).
pub use d4py_core as core;

/// The from-scratch Redis substrate (re-export of `redis-lite`).
pub use redis_lite;

/// The Redis mappings (re-export of `d4py-redis`).
pub use d4py_redis as redis;

/// The paper's three evaluation workflows (re-export of `d4py-workflows`).
pub use d4py_workflows as workflows;

/// Core mapping implementations.
pub use d4py_core::mappings;

/// One-stop imports for building and running workflows.
pub mod prelude {
    pub use d4py_core::autoscale::AutoscaleConfig;
    pub use d4py_core::error::CoreError;
    pub use d4py_core::executable::Executable;
    pub use d4py_core::fusion::{fuse, fuse_staged};
    pub use d4py_core::mapping::Mapping;
    pub use d4py_core::mappings::dyn_auto_multi::ScalingStrategyKind;
    pub use d4py_core::mappings::{DynAutoMulti, DynMulti, HybridMulti, Multi, Simple};
    pub use d4py_core::metrics::{RunReport, TracePoint};
    pub use d4py_core::options::{ExecutionOptions, TerminationConfig};
    pub use d4py_core::pe::{
        Collector, Context, CountingSink, FnSource, FnTransform, ProcessingElement,
    };
    pub use d4py_core::platform::Platform;
    pub use d4py_core::value::Value;
    pub use d4py_core::workload::{BetaSampler, WorkUnit};
    pub use d4py_graph::{Grouping, PeSpec, WorkflowGraph};
    pub use d4py_redis::{DynAutoRedis, DynRedis, HybridRedis, RedisBackend};
    pub use d4py_workflows::WorkloadConfig;
}
