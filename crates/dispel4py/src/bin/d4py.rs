//! `d4py` — command-line runner for the built-in workflows.
//!
//! ```sh
//! d4py list
//! d4py dot sentiment
//! d4py run galaxies --mapping dyn_auto_multi --workers 8 --platform server
//! d4py run sentiment --mapping hybrid_redis --workers 14 --redis tcp
//! d4py run seismic-phase2 --mapping hybrid_multi --workers 4 --time-scale 0
//! ```

use dispel4py::prelude::*;
use dispel4py::redis_lite::server::Server;
use dispel4py::workflows::{astro, seismic, sentiment};
use std::process::exit;

const WORKFLOWS: &[(&str, &str)] = &[
    (
        "galaxies",
        "Internal Extinction of Galaxies (4 PEs, stateless)",
    ),
    (
        "seismic",
        "Seismic Cross-Correlation phase 1 (9 PEs, stateless)",
    ),
    (
        "seismic-phase2",
        "Seismic Cross-Correlation phase 2 (stateful pairing)",
    ),
    (
        "sentiment",
        "Sentiment Analyses for News Articles (stateful)",
    ),
];

const MAPPINGS: &[&str] = &[
    "simple",
    "multi",
    "dyn_multi",
    "dyn_auto_multi",
    "dyn_redis",
    "dyn_auto_redis",
    "hybrid_multi",
    "hybrid_redis",
];

fn usage() -> ! {
    eprintln!(
        "usage:\n  d4py list\n  d4py dot <workflow>\n  d4py run <workflow> \
         [--mapping M] [--workers N] [--platform server|cloud|hpc]\n\
         \x20              [--scale S] [--heavy] [--time-scale F] [--seed U]\n\
         \x20              [--redis tcp|inproc]\n\nworkflows: {}\nmappings:  {}",
        WORKFLOWS
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(", "),
        MAPPINGS.join(", ")
    );
    exit(2)
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

struct BuiltWorkflow {
    exe: Executable,
    /// Prints a summary of the run's outputs.
    describe: Box<dyn FnOnce()>,
}

fn build_workflow(name: &str, cfg: &WorkloadConfig) -> BuiltWorkflow {
    match name {
        "galaxies" => {
            let (exe, results) = astro::build(cfg);
            BuiltWorkflow {
                exe,
                describe: Box::new(move || {
                    let got = results.lock();
                    println!("{} galaxies processed", got.len());
                    for r in got.iter().take(3) {
                        println!(
                            "  galaxy {}: A_int = {:.4} mag",
                            r.get("id").unwrap(),
                            r.get("extinction").unwrap().as_float().unwrap()
                        );
                    }
                }),
            }
        }
        "seismic" => {
            let (exe, written) = seismic::build(cfg);
            BuiltWorkflow {
                exe,
                describe: Box::new(move || {
                    println!("{} station traces written to disk", written.lock().len());
                }),
            }
        }
        "seismic-phase2" => {
            let (exe, results, pairs) = seismic::phase2::build(cfg);
            BuiltWorkflow {
                exe,
                describe: Box::new(move || {
                    println!("{pairs} station pairs correlated; strongest couplings:");
                    for r in results.lock().iter().take(5) {
                        println!(
                            "  {}: r = {:+.4} at lag {}",
                            r.get("pair").unwrap().as_str().unwrap(),
                            r.get("r").unwrap().as_float().unwrap(),
                            r.get("lag").unwrap().as_int().unwrap()
                        );
                    }
                }),
            }
        }
        "sentiment" => {
            let (exe, results) = sentiment::build(cfg);
            BuiltWorkflow {
                exe,
                describe: Box::new(move || {
                    println!("top 3 happiest states:");
                    for r in results.lock().iter() {
                        println!(
                            "  #{} {:<12} mean {:+.3} ({} articles)",
                            r.get("rank").unwrap(),
                            r.get("state").unwrap().as_str().unwrap(),
                            r.get("mean").unwrap().as_float().unwrap(),
                            r.get("count").unwrap()
                        );
                    }
                }),
            }
        }
        other => {
            eprintln!("unknown workflow '{other}'");
            usage()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };

    match command.as_str() {
        "list" => {
            println!("built-in workflows:");
            for (name, blurb) in WORKFLOWS {
                println!("  {name:<16} {blurb}");
            }
        }
        "dot" => {
            let Some(name) = args.get(1) else { usage() };
            let built = build_workflow(name, &WorkloadConfig::standard());
            print!("{}", built.exe.graph().to_dot());
        }
        "run" => {
            let Some(name) = args.get(1) else { usage() };
            let mapping_name = arg_value(&args, "--mapping").unwrap_or_else(|| "dyn_multi".into());
            let workers: usize = arg_value(&args, "--workers")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(8);
            let platform = match arg_value(&args, "--platform").as_deref() {
                None => None,
                Some("server") => Some(Platform::SERVER),
                Some("cloud") => Some(Platform::CLOUD),
                Some("hpc") | Some("HPC") => Some(Platform::HPC),
                Some(other) => {
                    eprintln!("unknown platform '{other}'");
                    usage()
                }
            };
            let scale: u32 = arg_value(&args, "--scale")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(1);
            let time_scale: f64 = arg_value(&args, "--time-scale")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(0.1);
            let seed: u64 = arg_value(&args, "--seed")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(42);

            let mut cfg = WorkloadConfig::standard()
                .with_scale(scale)
                .with_time_scale(time_scale)
                .with_seed(seed);
            if args.iter().any(|a| a == "--heavy") {
                cfg = cfg.heavy();
            }
            if let Some(p) = platform {
                cfg = cfg.with_limiter(p.limiter());
            }

            // Redis backend: a fresh TCP server (default) or in-process.
            let needs_redis = mapping_name.contains("redis");
            let server = (needs_redis && arg_value(&args, "--redis").as_deref() != Some("inproc"))
                .then(|| Server::start(0).expect("start redis-lite"));
            let backend = || match &server {
                Some(s) => RedisBackend::Tcp(s.addr()),
                None => RedisBackend::in_proc(),
            };
            if let Some(s) = &server {
                eprintln!("redis-lite on {}", s.addr());
            }

            let mapping: Box<dyn Mapping> = match mapping_name.as_str() {
                "simple" => Box::new(Simple),
                "multi" => Box::new(Multi),
                "dyn_multi" => Box::new(DynMulti),
                "dyn_auto_multi" => Box::new(DynAutoMulti::new()),
                "dyn_redis" => Box::new(DynRedis::new(backend())),
                "dyn_auto_redis" => Box::new(DynAutoRedis::new(backend())),
                "hybrid_multi" => Box::new(HybridMulti),
                "hybrid_redis" => Box::new(HybridRedis::new(backend())),
                other => {
                    eprintln!("unknown mapping '{other}'");
                    usage()
                }
            };

            let built = build_workflow(name, &cfg);
            match mapping.execute(&built.exe, &ExecutionOptions::new(workers)) {
                Ok(report) => {
                    println!("{report}");
                    if let (Some(p50), Some(p99)) =
                        (report.task_latency.p50, report.task_latency.p99)
                    {
                        println!(
                            "task service time: p50 ≤ {:.1?}, p99 ≤ {:.1?} over {} tasks",
                            p50, p99, report.task_latency.count
                        );
                    }
                    println!("per-PE breakdown:");
                    for (pe, n) in &report.per_pe_tasks {
                        println!("  {pe:<20} {n:>8} items");
                    }
                    if report.failed_tasks > 0 {
                        eprintln!("warning: {} task(s) failed", report.failed_tasks);
                    }
                    (built.describe)();
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    exit(1);
                }
            }
        }
        _ => usage(),
    }
}
