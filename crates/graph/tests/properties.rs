//! Property-based tests over random workflow DAGs.

use d4py_graph::{partition, Grouping, PeId, PeSpec, WorkflowGraph};
use proptest::prelude::*;

/// Builds a random layered DAG: `n` PEs where PE i may feed PE j only if
/// i < j (guaranteeing acyclicity), every non-source has at least one
/// input edge, and every edge carries a random grouping.
fn arb_dag() -> impl Strategy<Value = WorkflowGraph> {
    (2usize..12).prop_flat_map(|n| {
        // For each PE j ≥ 1, pick a non-empty set of predecessors < j.
        let preds = proptest::collection::vec(
            proptest::collection::vec(any::<proptest::sample::Index>(), 1..3),
            n - 1,
        );
        let groupings = proptest::collection::vec(0u8..4, (n - 1) * 3);
        (Just(n), preds, groupings).prop_map(|(n, preds, groupings)| {
            let mut g = WorkflowGraph::new("random");
            let mut gi = 0usize;
            let mut pick_grouping = |gs: &[u8]| {
                let k = gs[gi % gs.len()];
                gi += 1;
                match k {
                    0 => Grouping::Shuffle,
                    1 => Grouping::group_by("k"),
                    2 => Grouping::Global,
                    _ => Grouping::OneToAll,
                }
            };
            // Node 0 is always a pure source.
            let first = g.add_pe(PeSpec::source("pe0", "out"));
            let mut ids = vec![first];
            for j in 1..n {
                let spec = if j == n - 1 {
                    PeSpec::sink(format!("pe{j}"), "in")
                } else {
                    PeSpec::transform(format!("pe{j}"), "in", "out")
                };
                let id = g.add_pe(spec);
                ids.push(id);
            }
            for (j, pred_choices) in preds.iter().enumerate() {
                let j = j + 1; // consumer index
                let mut used = Vec::new();
                for choice in pred_choices {
                    // Predecessor with an output port: any transform/source.
                    let candidates: Vec<usize> =
                        (0..j).filter(|&i| i < n - 1).collect();
                    if candidates.is_empty() {
                        continue;
                    }
                    let i = candidates[choice.index(candidates.len())];
                    if used.contains(&i) {
                        continue;
                    }
                    used.push(i);
                    let grouping = pick_grouping(&groupings);
                    g.connect(ids[i], "out", ids[j], "in", grouping).unwrap();
                }
                if used.is_empty() {
                    g.connect(ids[0], "out", ids[j], "in", Grouping::Shuffle).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn random_dags_validate(g in arb_dag()) {
        prop_assert!(g.validate().is_ok(), "{:?}", g.validate());
    }

    #[test]
    fn topological_order_respects_every_edge(g in arb_dag()) {
        let order = g.topological_order().unwrap();
        prop_assert_eq!(order.len(), g.pe_count());
        let pos = |id: PeId| order.iter().position(|&x| x == id).unwrap();
        for c in g.connections() {
            prop_assert!(pos(c.from_pe) < pos(c.to_pe));
        }
    }

    #[test]
    fn layers_partition_the_graph(g in arb_dag()) {
        let layers = g.layers().unwrap();
        let mut all: Vec<PeId> = layers.iter().flatten().copied().collect();
        all.sort();
        let expected: Vec<PeId> = g.pe_ids().collect();
        prop_assert_eq!(all, expected);
        // Every PE sits strictly below all of its successors' layers.
        for c in g.connections() {
            let lf = layers.iter().position(|l| l.contains(&c.from_pe)).unwrap();
            let lt = layers.iter().position(|l| l.contains(&c.to_pe)).unwrap();
            prop_assert!(lf < lt);
        }
    }

    #[test]
    fn partition_covers_every_pe_at_minimum_processes(g in arb_dag()) {
        let needed = partition::minimum_processes(&g);
        let plan = partition::partition(&g, needed).unwrap();
        for pe in g.pe_ids() {
            prop_assert!(plan.instances_of(pe) >= 1);
        }
        prop_assert_eq!(plan.total_instances(), needed);
        prop_assert_eq!(plan.idle_processes(), 0);
    }

    #[test]
    fn partition_never_oversubscribes(g in arb_dag(), extra in 0usize..20) {
        let workers = partition::minimum_processes(&g) + extra;
        let plan = partition::partition(&g, workers).unwrap();
        // No process hosts two instances.
        let mut procs: Vec<usize> = plan
            .instances()
            .iter()
            .map(|&i| plan.process_of(i).unwrap())
            .collect();
        let before = procs.len();
        procs.sort_unstable();
        procs.dedup();
        prop_assert_eq!(before, procs.len());
        prop_assert!(plan.processes_used() <= workers);
    }

    #[test]
    fn staging_clusters_partition_the_pes(g in arb_dag()) {
        let clustering = d4py_graph::optimize::staging(&g);
        let mut all: Vec<PeId> = clustering.clusters.iter().flatten().copied().collect();
        let before = all.len();
        all.sort();
        all.dedup();
        prop_assert_eq!(before, all.len(), "a PE appeared in two clusters");
        prop_assert_eq!(all.len(), g.pe_count());
        // Affinity edges are never fused.
        for c in g.connections() {
            if c.grouping.requires_affinity() {
                prop_assert!(!clustering.fused(c.from_pe, c.to_pe));
            }
        }
    }

    #[test]
    fn dot_export_mentions_every_pe(g in arb_dag()) {
        let dot = g.to_dot();
        for (_, pe) in g.pes() {
            prop_assert!(dot.contains(&pe.name));
        }
    }

    #[test]
    fn stateful_and_stateless_partition_cleanly(g in arb_dag()) {
        let stateful = g.stateful_pes();
        let stateless = g.stateless_pes();
        prop_assert_eq!(stateful.len() + stateless.len(), g.pe_count());
        for pe in stateful {
            prop_assert!(g.is_effectively_stateful(pe));
        }
    }
}
