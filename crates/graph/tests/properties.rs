//! Property-based tests over random workflow DAGs.
//!
//! Runs on the in-repo seeded harness (`d4py_sync::prop`): every case is
//! deterministic, and a failing case prints the seed to replay it.

use d4py_graph::{partition, Grouping, PeId, PeSpec, WorkflowGraph};
use d4py_sync::prop::{for_all, Gen};

/// Builds a random layered DAG: `n` PEs where PE i may feed PE j only if
/// i < j (guaranteeing acyclicity), every non-source has at least one
/// input edge, and every edge carries a random grouping.
fn gen_dag(g: &mut Gen) -> WorkflowGraph {
    let n = g.usize_in(2..12);
    let mut wg = WorkflowGraph::new("random");
    let pick_grouping = |g: &mut Gen| match g.usize_in(0..4) {
        0 => Grouping::Shuffle,
        1 => Grouping::group_by("k"),
        2 => Grouping::Global,
        _ => Grouping::OneToAll,
    };
    // Node 0 is always a pure source.
    let first = wg.add_pe(PeSpec::source("pe0", "out"));
    let mut ids = vec![first];
    for j in 1..n {
        let spec = if j == n - 1 {
            PeSpec::sink(format!("pe{j}"), "in")
        } else {
            PeSpec::transform(format!("pe{j}"), "in", "out")
        };
        let id = wg.add_pe(spec);
        ids.push(id);
    }
    for j in 1..n {
        // For each PE j ≥ 1, pick a non-empty set of predecessors < j,
        // restricted to PEs that actually have an output port.
        let mut used = Vec::new();
        for _ in 0..g.usize_in(1..3) {
            let candidates: Vec<usize> = (0..j).filter(|&i| i < n - 1).collect();
            if candidates.is_empty() {
                continue;
            }
            let i = *g.pick(&candidates);
            if used.contains(&i) {
                continue;
            }
            used.push(i);
            let grouping = pick_grouping(g);
            wg.connect(ids[i], "out", ids[j], "in", grouping).unwrap();
        }
        if used.is_empty() {
            wg.connect(ids[0], "out", ids[j], "in", Grouping::Shuffle)
                .unwrap();
        }
    }
    wg
}

#[test]
fn random_dags_validate() {
    for_all(|g| {
        let dag = gen_dag(g);
        assert!(dag.validate().is_ok(), "{:?}", dag.validate());
    });
}

#[test]
fn topological_order_respects_every_edge() {
    for_all(|g| {
        let dag = gen_dag(g);
        let order = dag.topological_order().unwrap();
        assert_eq!(order.len(), dag.pe_count());
        let pos = |id: PeId| order.iter().position(|&x| x == id).unwrap();
        for c in dag.connections() {
            assert!(pos(c.from_pe) < pos(c.to_pe));
        }
    });
}

#[test]
fn layers_partition_the_graph() {
    for_all(|g| {
        let dag = gen_dag(g);
        let layers = dag.layers().unwrap();
        let mut all: Vec<PeId> = layers.iter().flatten().copied().collect();
        all.sort();
        let expected: Vec<PeId> = dag.pe_ids().collect();
        assert_eq!(all, expected);
        // Every PE sits strictly below all of its successors' layers.
        for c in dag.connections() {
            let lf = layers.iter().position(|l| l.contains(&c.from_pe)).unwrap();
            let lt = layers.iter().position(|l| l.contains(&c.to_pe)).unwrap();
            assert!(lf < lt);
        }
    });
}

#[test]
fn partition_covers_every_pe_at_minimum_processes() {
    for_all(|g| {
        let dag = gen_dag(g);
        let needed = partition::minimum_processes(&dag);
        let plan = partition::partition(&dag, needed).unwrap();
        for pe in dag.pe_ids() {
            assert!(plan.instances_of(pe) >= 1);
        }
        assert_eq!(plan.total_instances(), needed);
        assert_eq!(plan.idle_processes(), 0);
    });
}

#[test]
fn partition_never_oversubscribes() {
    for_all(|g| {
        let dag = gen_dag(g);
        let extra = g.usize_in(0..20);
        let workers = partition::minimum_processes(&dag) + extra;
        let plan = partition::partition(&dag, workers).unwrap();
        // No process hosts two instances.
        let mut procs: Vec<usize> = plan
            .instances()
            .iter()
            .map(|&i| plan.process_of(i).unwrap())
            .collect();
        let before = procs.len();
        procs.sort_unstable();
        procs.dedup();
        assert_eq!(before, procs.len());
        assert!(plan.processes_used() <= workers);
    });
}

#[test]
fn staging_clusters_partition_the_pes() {
    for_all(|g| {
        let dag = gen_dag(g);
        let clustering = d4py_graph::optimize::staging(&dag);
        let mut all: Vec<PeId> = clustering.clusters.iter().flatten().copied().collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(before, all.len(), "a PE appeared in two clusters");
        assert_eq!(all.len(), dag.pe_count());
        // Affinity edges are never fused.
        for c in dag.connections() {
            if c.grouping.requires_affinity() {
                assert!(!clustering.fused(c.from_pe, c.to_pe));
            }
        }
    });
}

#[test]
fn dot_export_mentions_every_pe() {
    for_all(|g| {
        let dag = gen_dag(g);
        let dot = dag.to_dot();
        for (_, pe) in dag.pes() {
            assert!(dot.contains(&pe.name));
        }
    });
}

#[test]
fn stateful_and_stateless_partition_cleanly() {
    for_all(|g| {
        let dag = gen_dag(g);
        let stateful = dag.stateful_pes();
        let stateless = dag.stateless_pes();
        assert_eq!(stateful.len() + stateless.len(), dag.pe_count());
        for pe in stateful {
            assert!(dag.is_effectively_stateful(pe));
        }
    });
}
