//! Golden diagnostics: one fixture per rule code, pinning the exact
//! code, severity, and message the analyzer emits. These are the contract
//! for downstream consumers (`repro check --json`, CI gating, waivers) —
//! any wording change must be deliberate and show up here.

use d4py_graph::analyze::{AnalysisContext, Diagnostic, Severity};
use d4py_graph::{Grouping, PeSpec, PortDecl, WorkflowGraph};

/// Analyzes under the strictest context and returns the findings matching
/// `code`, asserting there is at least one.
fn findings(g: &WorkflowGraph, code: &str) -> Vec<Diagnostic> {
    let diags = g.analyze(&AnalysisContext::full());
    let hits: Vec<Diagnostic> = diags
        .findings
        .iter()
        .filter(|d| d.code == code)
        .cloned()
        .collect();
    assert!(
        !hits.is_empty(),
        "expected {code} to fire; got:\n{}",
        diags.render()
    );
    hits
}

fn linear() -> WorkflowGraph {
    let mut g = WorkflowGraph::new("golden");
    let a = g.add_pe(PeSpec::source("a", "out"));
    let b = g.add_pe(PeSpec::sink("b", "in"));
    g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
    g
}

#[test]
fn d4py001_duplicate_pe_name() {
    let mut g = linear();
    g.add_pe(PeSpec::source("a", "out"));
    let hits = findings(&g, "D4PY001");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe.as_deref(), Some("a"));
    assert_eq!(
        hits[0].message,
        "duplicate PE name 'a' (first declared as PE0)"
    );
}

#[test]
fn d4py002_isolated_pe() {
    let mut g = linear();
    g.add_pe(PeSpec::new("island", vec![]));
    let hits = findings(&g, "D4PY002");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe.as_deref(), Some("island"));
    assert_eq!(hits[0].message, "PE 'island' declares no ports");
}

#[test]
fn d4py003_no_source() {
    let mut g = WorkflowGraph::new("golden");
    let a = g.add_pe(PeSpec::transform("a", "in", "out"));
    let b = g.add_pe(PeSpec::transform("b", "in", "out"));
    g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
    g.connect(b, "out", a, "in", Grouping::Shuffle).unwrap();
    let hits = findings(&g, "D4PY003");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe, None);
    assert_eq!(hits[0].message, "workflow has no source PE");
}

#[test]
fn d4py004_cycle() {
    let mut g = WorkflowGraph::new("golden");
    let s = g.add_pe(PeSpec::source("s", "out"));
    let a = g.add_pe(PeSpec::transform("a", "in", "out").with_port(PortDecl::input("loop")));
    let b = g.add_pe(PeSpec::transform("b", "in", "out"));
    g.connect(s, "out", a, "in", Grouping::Shuffle).unwrap();
    g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
    g.connect(b, "out", a, "loop", Grouping::Shuffle).unwrap();
    let hits = findings(&g, "D4PY004");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe, None, "cycles are graph-level");
    assert_eq!(hits[0].message, "workflow contains a cycle through: a, b");
}

#[test]
fn d4py005_unreachable() {
    let mut g = linear();
    g.add_pe(PeSpec::sink("orphan", "in"));
    let hits = findings(&g, "D4PY005");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe.as_deref(), Some("orphan"));
    assert_eq!(
        hits[0].message,
        "PE 'orphan' is not reachable from any source"
    );
}

#[test]
fn d4py006_dangling_input() {
    let mut g = WorkflowGraph::new("golden");
    let a = g.add_pe(PeSpec::source("a", "out"));
    let b = g.add_pe(PeSpec::sink("b", "in").with_port(PortDecl::input("extra")));
    g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
    let hits = findings(&g, "D4PY006");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe.as_deref(), Some("b"));
    assert_eq!(hits[0].port.as_deref(), Some("extra"));
    assert_eq!(
        hits[0].message,
        "input port 'extra' of PE 'b' has no incoming connection"
    );
}

#[test]
fn d4py007_zero_instances() {
    let mut g = linear();
    g.pe_mut(d4py_graph::PeId(0)).unwrap().instances = Some(0);
    let hits = findings(&g, "D4PY007");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe.as_deref(), Some("a"));
    assert_eq!(hits[0].message, "PE 'a' requests zero instances");
}

#[test]
fn d4py008_stale_port_reference() {
    let mut g = linear();
    // connect() validated the ports, but a later mutation renames the
    // source's output — the stored connection now dangles.
    g.pe_mut(d4py_graph::PeId(0)).unwrap().ports[0].name = "renamed".to_string();
    let hits = findings(&g, "D4PY008");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe.as_deref(), Some("a"));
    assert_eq!(hits[0].port.as_deref(), Some("out"));
    assert_eq!(
        hits[0].message,
        "connection references missing output port 'out' on PE 'a'"
    );
}

#[test]
fn d4py101_stateful_multi_instance_under_shuffle() {
    let mut g = WorkflowGraph::new("golden");
    let a = g.add_pe(PeSpec::source("a", "out"));
    let b = g.add_pe(PeSpec::sink("b", "in").stateful().with_instances(4));
    g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
    let hits = findings(&g, "D4PY101");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe.as_deref(), Some("b"));
    assert_eq!(hits[0].port.as_deref(), Some("in"));
    assert_eq!(
        hits[0].message,
        "stateful PE 'b' runs 4 instances but input port 'in' is shuffle-routed"
    );
    // Keyed routing fixes it.
    let mut g = WorkflowGraph::new("golden");
    let a = g.add_pe(PeSpec::source("a", "out"));
    let b = g.add_pe(PeSpec::sink("b", "in").stateful().with_instances(4));
    g.connect(a, "out", b, "in", Grouping::group_by("key"))
        .unwrap();
    assert!(!g.analyze(&AnalysisContext::full()).has_errors());
}

#[test]
fn d4py102_stateful_fused_behind_unkeyed_entry() {
    // s → t1 → t2(stateful) → k, all shuffle: staging fuses {t1, t2} and
    // the stage entry (s→t1) carries no key.
    let mut g = WorkflowGraph::new("golden");
    let s = g.add_pe(PeSpec::source("s", "out"));
    let t1 = g.add_pe(PeSpec::transform("t1", "in", "out"));
    let t2 = g.add_pe(PeSpec::transform("t2", "in", "out").stateful());
    let k = g.add_pe(PeSpec::sink("k", "in"));
    g.connect(s, "out", t1, "in", Grouping::Shuffle).unwrap();
    g.connect(t1, "out", t2, "in", Grouping::Shuffle).unwrap();
    g.connect(t2, "out", k, "in", Grouping::Shuffle).unwrap();
    let hits = findings(&g, "D4PY102");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe.as_deref(), Some("t2"));
    assert_eq!(
        hits[0].message,
        "stateful PE 't2' is fused into a stage whose entry grouping is not keyed"
    );
    // Gated off when the deployment does not fuse.
    let no_fusion = AnalysisContext {
        workers: None,
        autoscaling: false,
        fusion: false,
    };
    assert!(!g
        .analyze(&no_fusion)
        .findings
        .iter()
        .any(|d| d.code == "D4PY102"));
}

#[test]
fn d4py103_autoscaling_over_unkeyed_stateful() {
    let mut g = WorkflowGraph::new("golden");
    let a = g.add_pe(PeSpec::source("a", "out"));
    let b = g.add_pe(PeSpec::sink("b", "in").stateful());
    g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
    let hits = findings(&g, "D4PY103");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe.as_deref(), Some("b"));
    assert_eq!(
        hits[0].message,
        "autoscaling over stateful PE 'b' without a keyed input grouping"
    );
    // Global routing satisfies the rule, and the gate disables it.
    let mut keyed = WorkflowGraph::new("golden");
    let a = keyed.add_pe(PeSpec::source("a", "out"));
    let b = keyed.add_pe(PeSpec::sink("b", "in").stateful());
    keyed.connect(a, "out", b, "in", Grouping::Global).unwrap();
    assert!(!keyed.analyze(&AnalysisContext::full()).has_errors());
    assert!(!g
        .analyze(&AnalysisContext::preflight(4, false))
        .has_errors());
}

#[test]
fn d4py104_undeclared_group_by_key() {
    let mut g = WorkflowGraph::new("golden");
    let a = g.add_pe(PeSpec::source("a", "out").with_output_fields("out", ["key", "weight"]));
    let b = g.add_pe(PeSpec::sink("b", "in").stateful());
    g.connect(a, "out", b, "in", Grouping::group_by("state"))
        .unwrap();
    let hits = findings(&g, "D4PY104");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].pe.as_deref(), Some("b"));
    assert_eq!(hits[0].port.as_deref(), Some("in"));
    assert_eq!(
        hits[0].message,
        "group-by key 'state' is not declared by upstream port 'a.out'"
    );
    // A declared key passes; an undeclared field list is not checked.
    let mut ok = WorkflowGraph::new("golden");
    let a = ok.add_pe(PeSpec::source("a", "out").with_output_fields("out", ["key"]));
    let b = ok.add_pe(PeSpec::sink("b", "in").stateful());
    ok.connect(a, "out", b, "in", Grouping::group_by("key"))
        .unwrap();
    assert!(!ok.analyze(&AnalysisContext::full()).has_errors());
    let mut unknown = WorkflowGraph::new("golden");
    let a = unknown.add_pe(PeSpec::source("a", "out"));
    let b = unknown.add_pe(PeSpec::sink("b", "in").stateful());
    unknown
        .connect(a, "out", b, "in", Grouping::group_by("anything"))
        .unwrap();
    assert!(!unknown.analyze(&AnalysisContext::full()).has_errors());
}

#[test]
fn d4py201_fan_in_into_stateful_sink() {
    let mut g = WorkflowGraph::new("golden");
    let s = g.add_pe(PeSpec::source("s", "out"));
    let l = g.add_pe(PeSpec::transform("l", "in", "out"));
    let r = g.add_pe(PeSpec::transform("r", "in", "out"));
    let k = g.add_pe(PeSpec::sink("k", "in").stateful());
    g.connect(s, "out", l, "in", Grouping::Shuffle).unwrap();
    g.connect(s, "out", r, "in", Grouping::Shuffle).unwrap();
    g.connect(l, "out", k, "in", Grouping::Global).unwrap();
    g.connect(r, "out", k, "in", Grouping::Global).unwrap();
    let hits = findings(&g, "D4PY201");
    assert_eq!(hits[0].severity, Severity::Warning);
    assert_eq!(hits[0].pe.as_deref(), Some("k"));
    assert_eq!(
        hits[0].message,
        "stateful sink 'k' merges 2 upstream branches; arrival order across branches is nondeterministic"
    );
}

#[test]
fn d4py202_dead_output_port() {
    let mut g = linear();
    g.pe_mut(d4py_graph::PeId(0))
        .unwrap()
        .ports
        .push(PortDecl::output("debug"));
    let hits = findings(&g, "D4PY202");
    assert_eq!(hits[0].severity, Severity::Warning);
    assert_eq!(hits[0].pe.as_deref(), Some("a"));
    assert_eq!(hits[0].port.as_deref(), Some("debug"));
    assert_eq!(
        hits[0].message,
        "output port 'debug' of PE 'a' is never connected"
    );
}

#[test]
fn d4py301_instance_oversubscription() {
    let mut g = WorkflowGraph::new("golden");
    let a = g.add_pe(PeSpec::source("a", "out").with_instances(3));
    let b = g.add_pe(PeSpec::sink("b", "in").with_instances(3));
    g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
    let diags = g.analyze(&AnalysisContext::preflight(4, false));
    let hits: Vec<&Diagnostic> = diags
        .findings
        .iter()
        .filter(|d| d.code == "D4PY301")
        .collect();
    assert_eq!(hits.len(), 1, "{}", diags.render());
    assert_eq!(hits[0].severity, Severity::Info);
    assert_eq!(hits[0].pe, None);
    assert_eq!(
        hits[0].message,
        "explicit instance requests total 6 but only 4 worker(s) are configured"
    );
    // Fits → silent; unknown worker count → rule skipped.
    assert!(g
        .analyze(&AnalysisContext::preflight(8, false))
        .findings
        .is_empty());
    assert!(!g
        .analyze(&AnalysisContext::full())
        .findings
        .iter()
        .any(|d| d.code == "D4PY301"));
}

#[test]
fn three_violations_reported_in_one_pass() {
    // Acceptance criterion: a graph seeded with 3 distinct rule violations
    // yields 3 diagnostics, not 1 (validate() would stop at the first).
    let mut g = WorkflowGraph::new("golden");
    let a = g.add_pe(PeSpec::source("a", "out"));
    // Violation 1 (D4PY101): stateful ×4 under Shuffle.
    let b = g.add_pe(
        PeSpec::transform("b", "in", "out")
            .stateful()
            .with_instances(4),
    );
    // Violation 2 (D4PY006): dangling input port.
    let c = g.add_pe(PeSpec::sink("c", "in").with_port(PortDecl::input("extra")));
    g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
    g.connect(b, "out", c, "in", Grouping::Shuffle).unwrap();
    // Violation 3 (D4PY002): isolated PE.
    g.add_pe(PeSpec::new("island", vec![]));

    assert!(
        g.validate().is_err(),
        "validate sees only the first problem"
    );
    let diags = g.analyze(&AnalysisContext::preflight(8, false));
    let codes: Vec<&str> = diags.errors().map(|d| d.code).collect();
    assert!(codes.contains(&"D4PY101"), "{codes:?}");
    assert!(codes.contains(&"D4PY006"), "{codes:?}");
    assert!(codes.contains(&"D4PY002"), "{codes:?}");
    assert!(codes.len() >= 3);
}

#[test]
fn waiver_is_per_pe_and_counted() {
    let mut g = linear();
    g.pe_mut(d4py_graph::PeId(0))
        .unwrap()
        .ports
        .push(PortDecl::output("debug"));
    let noisy = g.analyze(&AnalysisContext::full());
    assert_eq!(noisy.count(Severity::Warning), 1);

    let mut g = WorkflowGraph::new("golden");
    let a = g.add_pe(
        PeSpec::source("a", "out")
            .with_port(PortDecl::output("debug"))
            .allow("D4PY202"),
    );
    let b = g.add_pe(PeSpec::sink("b", "in"));
    g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
    let waived = g.analyze(&AnalysisContext::full());
    assert!(waived.findings.is_empty(), "{}", waived.render());
    assert_eq!(waived.waived, 1);
}
