//! Property tests for the workflow analyzer.
//!
//! Over 1000 seeded random graphs (replay any failure with
//! `D4PY_PROP_SEED=<seed> D4PY_PROP_CASES=1 cargo test`):
//!
//! 1. `analyze()` never panics, under either the full-audit or a
//!    pre-flight context;
//! 2. `validate()` errors are a subset of analyzer errors — whenever the
//!    first-error-only pass rejects a graph, the multi-diagnostic pass
//!    reports the corresponding rule code at Error severity.

use d4py_graph::analyze::AnalysisContext;
use d4py_graph::{GraphError, Grouping, PeSpec, PortDecl, WorkflowGraph};
use d4py_sync::prop::{for_all_cases, Gen};

/// The analyzer rule code that corresponds to each `validate()` error.
/// (`UnknownPe`/`UnknownPort` are composition-time errors `connect()`
/// raises; `validate()` never returns them.)
fn expected_code(err: &GraphError) -> &'static str {
    match err {
        GraphError::DuplicateName(_) => "D4PY001",
        GraphError::IsolatedPe(_) => "D4PY002",
        GraphError::NoSource => "D4PY003",
        GraphError::Cycle(_) => "D4PY004",
        GraphError::Unreachable(_) => "D4PY005",
        GraphError::DanglingInput { .. } => "D4PY006",
        GraphError::ZeroInstances(_) => "D4PY007",
        GraphError::UnknownPe(_) | GraphError::UnknownPort { .. } => {
            unreachable!("validate() does not produce composition-time errors")
        }
    }
}

/// Builds an arbitrary (frequently invalid) workflow graph: duplicate
/// names, port-less PEs, zero-instance requests, random wiring including
/// self-loops and back-edges, and occasional post-connect port renames
/// that stale out stored connections.
fn arbitrary_graph(g: &mut Gen) -> WorkflowGraph {
    const NAMES: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
    let mut wf = WorkflowGraph::new("prop");
    let n = g.usize_in(1..8);
    for _ in 0..n {
        let name = *g.pick(&NAMES);
        let mut ports = Vec::new();
        if g.any::<bool>() {
            ports.push(PortDecl::input("in"));
        }
        if g.any::<bool>() {
            let fields = if g.any::<bool>() {
                vec!["key".to_string()]
            } else {
                Vec::new()
            };
            ports.push(PortDecl::output("out").with_fields(fields));
        }
        let mut pe = PeSpec::new(name, ports);
        if g.any::<bool>() {
            pe = pe.stateful();
        }
        match g.usize_in(0..5) {
            0 => pe = pe.with_instances(0),
            1 => pe = pe.with_instances(g.usize_in(1..6)),
            _ => {}
        }
        wf.add_pe(pe);
    }
    let ids: Vec<_> = wf.pe_ids().collect();
    let attempts = g.usize_in(0..10);
    for _ in 0..attempts {
        let from = *g.pick(&ids);
        let to = *g.pick(&ids);
        let grouping = match g.usize_in(0..4) {
            0 => Grouping::group_by(*g.pick(&["key", "state"])),
            1 => Grouping::Global,
            2 => Grouping::OneToAll,
            _ => Grouping::Shuffle,
        };
        // connect() rejects missing ports; invalid attempts just drop.
        let _ = wf.connect(from, "out", to, "in", grouping);
    }
    // Occasionally rename a port after wiring: stored connections go stale
    // (analyzer D4PY008 territory, which validate() cannot see).
    if g.any::<bool>() && !ids.is_empty() {
        let victim = *g.pick(&ids);
        if let Some(pe) = wf.pe_mut(victim) {
            if let Some(port) = pe.ports.first_mut() {
                port.name = "renamed".to_string();
            }
        }
    }
    wf
}

#[test]
fn analyzer_never_panics_and_subsumes_validate() {
    for_all_cases(1000, |g| {
        let wf = arbitrary_graph(g);
        let full = wf.analyze(&AnalysisContext::full());
        let preflight = wf.analyze(&AnalysisContext::preflight(
            g.usize_in(0..9),
            g.any::<bool>(),
        ));
        // Rendering paths must not panic either.
        let _ = full.render();
        let _ = full.to_json();
        let _ = wf.to_dot_diagnosed(&full);

        if let Err(err) = wf.validate() {
            let code = expected_code(&err);
            assert!(
                full.errors().any(|d| d.code == code),
                "validate() rejected with {err:?} but the analyzer has no \
                 {code} error:\n{}",
                full.render()
            );
            assert!(full.has_errors() && preflight.has_errors());
        }
    });
}
