//! The abstract workflow graph.
//!
//! [`WorkflowGraph`] is a DAG whose nodes are [`PeSpec`]s and whose edges are
//! [`Connection`]s (output port → input port, annotated with a
//! [`Grouping`]). It is the artifact the user composes; mappings consume it
//! (usually via a [`PartitionPlan`](crate::partition::PartitionPlan)) to
//! build a concrete, executable workflow.

use crate::grouping::Grouping;
use crate::node::{PeId, PeSpec};
use crate::port::PortDirection;
use crate::validate::GraphError;

/// Identifier of a connection within a workflow graph (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnectionId(pub usize);

/// A directed edge from one PE's output port to another PE's input port.
#[derive(Debug, Clone, PartialEq)]
pub struct Connection {
    /// Producing PE.
    pub from_pe: PeId,
    /// Name of the producing PE's output port.
    pub from_port: String,
    /// Consuming PE.
    pub to_pe: PeId,
    /// Name of the consuming PE's input port.
    pub to_port: String,
    /// Routing policy across the consuming PE's instances.
    pub grouping: Grouping,
}

/// An abstract dispel4py workflow: a DAG of PE specifications.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowGraph {
    name: String,
    nodes: Vec<PeSpec>,
    connections: Vec<Connection>,
}

impl WorkflowGraph {
    /// Creates an empty workflow with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            connections: Vec::new(),
        }
    }

    /// The workflow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a PE and returns its id. Names need not be unique at insertion
    /// time; [`validate`](crate::validate) rejects duplicates.
    pub fn add_pe(&mut self, spec: PeSpec) -> PeId {
        let id = PeId(self.nodes.len());
        self.nodes.push(spec);
        id
    }

    /// Connects `from_pe.from_port` to `to_pe.to_port` with the given
    /// grouping. Fails fast if either endpoint doesn't exist.
    pub fn connect(
        &mut self,
        from_pe: PeId,
        from_port: impl Into<String>,
        to_pe: PeId,
        to_port: impl Into<String>,
        grouping: Grouping,
    ) -> Result<ConnectionId, GraphError> {
        let from_port = from_port.into();
        let to_port = to_port.into();
        let from = self.pe(from_pe).ok_or(GraphError::UnknownPe(from_pe))?;
        if from.port(&from_port, PortDirection::Output).is_none() {
            return Err(GraphError::UnknownPort {
                pe: from.name.clone(),
                port: from_port,
                direction: PortDirection::Output,
            });
        }
        let to = self.pe(to_pe).ok_or(GraphError::UnknownPe(to_pe))?;
        if to.port(&to_port, PortDirection::Input).is_none() {
            return Err(GraphError::UnknownPort {
                pe: to.name.clone(),
                port: to_port,
                direction: PortDirection::Input,
            });
        }
        let id = ConnectionId(self.connections.len());
        self.connections.push(Connection {
            from_pe,
            from_port,
            to_pe,
            to_port,
            grouping,
        });
        Ok(id)
    }

    /// The PE spec for an id, if it exists.
    pub fn pe(&self, id: PeId) -> Option<&PeSpec> {
        self.nodes.get(id.0)
    }

    /// Mutable access to a PE spec.
    pub fn pe_mut(&mut self, id: PeId) -> Option<&mut PeSpec> {
        self.nodes.get_mut(id.0)
    }

    /// Finds a PE id by name.
    pub fn pe_by_name(&self, name: &str) -> Option<PeId> {
        self.nodes.iter().position(|n| n.name == name).map(PeId)
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.nodes.len()
    }

    /// All PE ids in insertion order.
    pub fn pe_ids(&self) -> impl Iterator<Item = PeId> {
        (0..self.nodes.len()).map(PeId)
    }

    /// All PE specs with their ids.
    pub fn pes(&self) -> impl Iterator<Item = (PeId, &PeSpec)> {
        self.nodes.iter().enumerate().map(|(i, n)| (PeId(i), n))
    }

    /// All connections in insertion order.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Connections leaving `pe` (optionally restricted to one output port).
    pub fn outgoing(&self, pe: PeId) -> impl Iterator<Item = (ConnectionId, &Connection)> {
        self.connections
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.from_pe == pe)
            .map(|(i, c)| (ConnectionId(i), c))
    }

    /// Connections leaving `pe` from the named output port.
    pub fn outgoing_from_port<'a>(
        &'a self,
        pe: PeId,
        port: &'a str,
    ) -> impl Iterator<Item = (ConnectionId, &'a Connection)> + 'a {
        self.outgoing(pe).filter(move |(_, c)| c.from_port == port)
    }

    /// Connections arriving at `pe`.
    pub fn incoming(&self, pe: PeId) -> impl Iterator<Item = (ConnectionId, &Connection)> {
        self.connections
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.to_pe == pe)
            .map(|(i, c)| (ConnectionId(i), c))
    }

    /// PEs with no incoming connections (stream producers).
    pub fn sources(&self) -> Vec<PeId> {
        self.pe_ids()
            .filter(|&id| self.incoming(id).next().is_none())
            .collect()
    }

    /// PEs with no outgoing connections (stream consumers).
    pub fn sinks(&self) -> Vec<PeId> {
        self.pe_ids()
            .filter(|&id| self.outgoing(id).next().is_none())
            .collect()
    }

    /// Direct successors of a PE (deduplicated, insertion order).
    pub fn successors(&self, pe: PeId) -> Vec<PeId> {
        let mut out = Vec::new();
        for (_, c) in self.outgoing(pe) {
            if !out.contains(&c.to_pe) {
                out.push(c.to_pe);
            }
        }
        out
    }

    /// Direct predecessors of a PE (deduplicated, insertion order).
    pub fn predecessors(&self, pe: PeId) -> Vec<PeId> {
        let mut out = Vec::new();
        for (_, c) in self.incoming(pe) {
            if !out.contains(&c.from_pe) {
                out.push(c.from_pe);
            }
        }
        out
    }

    /// Returns true if any input connection of `pe` carries an
    /// affinity-requiring grouping (group-by / global), or the PE itself is
    /// declared stateful. Such PEs need dedicated workers under dynamic
    /// scheduling (the hybrid mapping's core rule).
    pub fn is_effectively_stateful(&self, pe: PeId) -> bool {
        self.pe(pe).map(|s| s.stateful).unwrap_or(false)
            || self
                .incoming(pe)
                .any(|(_, c)| c.grouping.requires_affinity())
    }

    /// Ids of all effectively-stateful PEs.
    pub fn stateful_pes(&self) -> Vec<PeId> {
        self.pe_ids()
            .filter(|&id| self.is_effectively_stateful(id))
            .collect()
    }

    /// Ids of all effectively-stateless PEs.
    pub fn stateless_pes(&self) -> Vec<PeId> {
        self.pe_ids()
            .filter(|&id| !self.is_effectively_stateful(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PeSpec;

    fn linear3() -> (WorkflowGraph, PeId, PeId, PeId) {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out"));
        let b = g.add_pe(PeSpec::transform("b", "in", "out"));
        let c = g.add_pe(PeSpec::sink("c", "in"));
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        g.connect(b, "out", c, "in", Grouping::Shuffle).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn connect_rejects_unknown_output_port() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out"));
        let b = g.add_pe(PeSpec::sink("b", "in"));
        let err = g
            .connect(a, "nope", b, "in", Grouping::Shuffle)
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownPort { .. }));
    }

    #[test]
    fn connect_rejects_unknown_input_port() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out"));
        let b = g.add_pe(PeSpec::sink("b", "in"));
        assert!(g.connect(a, "out", b, "nope", Grouping::Shuffle).is_err());
    }

    #[test]
    fn connect_rejects_unknown_pe() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out"));
        let err = g
            .connect(a, "out", PeId(99), "in", Grouping::Shuffle)
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownPe(PeId(99))));
    }

    #[test]
    fn sources_and_sinks() {
        let (g, a, _, c) = linear3();
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![c]);
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, a, b, c) = linear3();
        assert_eq!(g.successors(a), vec![b]);
        assert_eq!(g.predecessors(c), vec![b]);
        assert_eq!(g.predecessors(a), vec![]);
    }

    #[test]
    fn successors_deduplicated_on_parallel_edges() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "x").with_port(crate::port::PortDecl::output("y")));
        let b = g.add_pe(PeSpec::sink("b", "in"));
        g.connect(a, "x", b, "in", Grouping::Shuffle).unwrap();
        g.connect(a, "y", b, "in", Grouping::Shuffle).unwrap();
        assert_eq!(g.successors(a), vec![b]);
    }

    #[test]
    fn effectively_stateful_via_grouping() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out"));
        let b = g.add_pe(PeSpec::sink("b", "in"));
        g.connect(a, "out", b, "in", Grouping::group_by("state"))
            .unwrap();
        assert!(!g.is_effectively_stateful(a));
        assert!(g.is_effectively_stateful(b));
        assert_eq!(g.stateful_pes(), vec![b]);
        assert_eq!(g.stateless_pes(), vec![a]);
    }

    #[test]
    fn effectively_stateful_via_flag() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out").stateful());
        assert!(g.is_effectively_stateful(a));
    }

    #[test]
    fn pe_by_name_roundtrip() {
        let (g, a, b, _) = linear3();
        assert_eq!(g.pe_by_name("a"), Some(a));
        assert_eq!(g.pe_by_name("b"), Some(b));
        assert_eq!(g.pe_by_name("zzz"), None);
    }

    #[test]
    fn outgoing_from_port_filters() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "x").with_port(crate::port::PortDecl::output("y")));
        let b = g.add_pe(PeSpec::sink("b", "in"));
        let c = g.add_pe(PeSpec::sink("c", "in"));
        g.connect(a, "x", b, "in", Grouping::Shuffle).unwrap();
        g.connect(a, "y", c, "in", Grouping::Shuffle).unwrap();
        let from_x: Vec<_> = g.outgoing_from_port(a, "x").collect();
        assert_eq!(from_x.len(), 1);
        assert_eq!(from_x[0].1.to_pe, b);
    }
}
