//! Workflow validation.
//!
//! dispel4py validates abstract workflows before mapping them: names must be
//! unique, the graph must be a DAG, every PE must be reachable from a source,
//! and isolated (port-less) PEs are rejected. Validation runs once at
//! composition time so the mappings can assume a well-formed graph.

use crate::graph::WorkflowGraph;
use crate::node::{PeId, PeKind};
use crate::port::PortDirection;

/// Errors produced while composing or validating a workflow graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A referenced PE id does not exist in the graph.
    UnknownPe(PeId),
    /// A referenced port does not exist on the PE.
    UnknownPort {
        /// Owning PE name.
        pe: String,
        /// Port name that failed to resolve.
        port: String,
        /// Direction the port was expected to have.
        direction: PortDirection,
    },
    /// Two PEs share a name.
    DuplicateName(String),
    /// The graph contains a directed cycle through the named PE.
    Cycle(String),
    /// The graph has no source PE (no node without inputs).
    NoSource,
    /// A PE declares no ports at all.
    IsolatedPe(String),
    /// A PE is not reachable from any source.
    Unreachable(String),
    /// A PE has an input port with no incoming connection.
    DanglingInput {
        /// Owning PE name.
        pe: String,
        /// Unconnected input port.
        port: String,
    },
    /// An explicit instance request is zero.
    ZeroInstances(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownPe(id) => write!(f, "unknown PE {id}"),
            GraphError::UnknownPort {
                pe,
                port,
                direction,
            } => {
                write!(f, "PE '{pe}' has no {direction:?} port '{port}'")
            }
            GraphError::DuplicateName(n) => write!(f, "duplicate PE name '{n}'"),
            GraphError::Cycle(n) => write!(f, "workflow contains a cycle through '{n}'"),
            GraphError::NoSource => write!(f, "workflow has no source PE"),
            GraphError::IsolatedPe(n) => write!(f, "PE '{n}' declares no ports"),
            GraphError::Unreachable(n) => {
                write!(f, "PE '{n}' is not reachable from any source")
            }
            GraphError::DanglingInput { pe, port } => {
                write!(
                    f,
                    "input port '{port}' of PE '{pe}' has no incoming connection"
                )
            }
            GraphError::ZeroInstances(n) => {
                write!(f, "PE '{n}' requests zero instances")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl WorkflowGraph {
    /// Validates the workflow, returning the first problem found.
    ///
    /// Checks, in order: non-empty, unique names, no isolated PEs, at least
    /// one source, acyclicity, reachability from sources, no dangling input
    /// ports, and positive explicit instance counts.
    pub fn validate(&self) -> Result<(), GraphError> {
        self.check_names()?;
        self.check_shapes()?;
        self.check_acyclic()?;
        self.check_reachability()?;
        self.check_inputs_connected()?;
        Ok(())
    }

    fn check_names(&self) -> Result<(), GraphError> {
        let mut seen = std::collections::HashSet::new();
        for (_, pe) in self.pes() {
            if !seen.insert(pe.name.as_str()) {
                return Err(GraphError::DuplicateName(pe.name.clone()));
            }
        }
        Ok(())
    }

    fn check_shapes(&self) -> Result<(), GraphError> {
        for (_, pe) in self.pes() {
            if pe.kind() == PeKind::Isolated {
                return Err(GraphError::IsolatedPe(pe.name.clone()));
            }
            if pe.instances == Some(0) {
                return Err(GraphError::ZeroInstances(pe.name.clone()));
            }
        }
        if self.pe_count() > 0 && self.sources().is_empty() {
            return Err(GraphError::NoSource);
        }
        Ok(())
    }

    fn check_acyclic(&self) -> Result<(), GraphError> {
        // Kahn's algorithm; leftover nodes are on a cycle.
        let n = self.pe_count();
        let mut indegree = vec![0usize; n];
        for c in self.connections() {
            indegree[c.to_pe.0] += 1;
        }
        let mut queue: Vec<PeId> = self.pe_ids().filter(|id| indegree[id.0] == 0).collect();
        let mut visited = 0usize;
        while let Some(id) = queue.pop() {
            visited += 1;
            for succ in self.successors(id) {
                // Parallel-edge audit: `successors()` DEDUPLICATES, yielding
                // each successor once no matter how many connections reach
                // it, while the indegree seeding above counts one per
                // connection. Decrementing by the parallel-edge count here
                // is therefore exactly balanced — NOT a double-subtract. If
                // `successors()` ever switched to per-edge yields this would
                // underflow; the parallel-edge regression tests below pin
                // the invariant.
                let edges = self.outgoing(id).filter(|(_, c)| c.to_pe == succ).count();
                indegree[succ.0] -= edges;
                if indegree[succ.0] == 0 {
                    queue.push(succ);
                }
            }
        }
        if visited != n {
            let on_cycle = self
                .pes()
                .find(|(id, _)| indegree[id.0] > 0)
                .map(|(_, pe)| pe.name.clone())
                .unwrap_or_default();
            return Err(GraphError::Cycle(on_cycle));
        }
        Ok(())
    }

    fn check_reachability(&self) -> Result<(), GraphError> {
        let mut reachable = vec![false; self.pe_count()];
        // Start from true stream producers (no input ports), not merely from
        // nodes without incoming connections: a sink whose input is never
        // connected must be flagged unreachable, not treated as a source.
        let mut stack: Vec<PeId> = self
            .pes()
            .filter(|(_, pe)| pe.kind() == PeKind::Source)
            .map(|(id, _)| id)
            .collect();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id.0], true) {
                continue;
            }
            stack.extend(self.successors(id));
        }
        if let Some((_, pe)) = self.pes().find(|(id, _)| !reachable[id.0]) {
            return Err(GraphError::Unreachable(pe.name.clone()));
        }
        Ok(())
    }

    fn check_inputs_connected(&self) -> Result<(), GraphError> {
        for (id, pe) in self.pes() {
            for port in pe.inputs() {
                let fed = self.incoming(id).any(|(_, c)| c.to_port == port.name);
                if !fed {
                    return Err(GraphError::DanglingInput {
                        pe: pe.name.clone(),
                        port: port.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::Grouping;
    use crate::node::PeSpec;
    use crate::port::PortDecl;

    fn valid_linear() -> WorkflowGraph {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out"));
        let b = g.add_pe(PeSpec::transform("b", "in", "out"));
        let c = g.add_pe(PeSpec::sink("c", "in"));
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        g.connect(b, "out", c, "in", Grouping::Shuffle).unwrap();
        g
    }

    #[test]
    fn valid_graph_passes() {
        valid_linear().validate().unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = valid_linear();
        g.add_pe(PeSpec::source("a", "out"));
        assert!(matches!(g.validate(), Err(GraphError::DuplicateName(_))));
    }

    #[test]
    fn cycle_rejected() {
        let mut g = WorkflowGraph::new("t");
        let s = g.add_pe(PeSpec::source("s", "out"));
        let a = g.add_pe(PeSpec::transform("a", "in", "out").with_port(PortDecl::input("loop")));
        let b = g.add_pe(PeSpec::transform("b", "in", "out"));
        g.connect(s, "out", a, "in", Grouping::Shuffle).unwrap();
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        g.connect(b, "out", a, "loop", Grouping::Shuffle).unwrap();
        assert!(matches!(g.validate(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn no_source_rejected() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::transform("a", "in", "out"));
        let b = g.add_pe(PeSpec::transform("b", "in", "out"));
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        g.connect(b, "out", a, "in", Grouping::Shuffle).unwrap();
        assert!(matches!(g.validate(), Err(GraphError::NoSource)));
    }

    #[test]
    fn isolated_pe_rejected() {
        let mut g = valid_linear();
        g.add_pe(PeSpec::new("island", vec![]));
        assert!(matches!(g.validate(), Err(GraphError::IsolatedPe(_))));
    }

    #[test]
    fn unreachable_pe_rejected() {
        let mut g = valid_linear();
        // A second component that is itself source-rooted is fine; make one
        // whose transform is orphaned (input never fed → dangling first).
        g.add_pe(PeSpec::source("s2", "out"));
        // s2 is a source with no successors — reachable trivially. Now add a
        // sink fed by nothing.
        g.add_pe(PeSpec::sink("orphan", "in"));
        let err = g.validate().unwrap_err();
        assert!(
            matches!(err, GraphError::Unreachable(ref n) if n == "orphan"),
            "{err:?}"
        );
    }

    #[test]
    fn dangling_input_rejected() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out"));
        let b = g.add_pe(PeSpec::transform("b", "in", "out").with_port(PortDecl::input("extra")));
        let c = g.add_pe(PeSpec::sink("c", "in"));
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        g.connect(b, "out", c, "in", Grouping::Shuffle).unwrap();
        // reachable, acyclic, but b.extra is never fed
        let err = g.validate().unwrap_err();
        assert!(matches!(err, GraphError::DanglingInput { ref port, .. } if port == "extra"));
    }

    #[test]
    fn zero_instances_rejected() {
        let mut g = WorkflowGraph::new("t");
        g.add_pe(PeSpec::source("a", "out").with_instances(0));
        assert!(matches!(g.validate(), Err(GraphError::ZeroInstances(_))));
    }

    #[test]
    fn diamond_graph_passes() {
        let mut g = WorkflowGraph::new("t");
        let s = g.add_pe(PeSpec::source("s", "out"));
        let l = g.add_pe(PeSpec::transform("l", "in", "out"));
        let r = g.add_pe(PeSpec::transform("r", "in", "out"));
        let k = g.add_pe(PeSpec::sink("k", "in"));
        g.connect(s, "out", l, "in", Grouping::Shuffle).unwrap();
        g.connect(s, "out", r, "in", Grouping::Shuffle).unwrap();
        g.connect(l, "out", k, "in", Grouping::Shuffle).unwrap();
        g.connect(r, "out", k, "in", Grouping::Shuffle).unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn parallel_edges_between_same_pair_pass() {
        // Two connections a→b (distinct ports): indegree[b] seeds to 2 and
        // must be decremented by exactly 2 when a is visited. If the Kahn
        // loop ever double-subtracted per (successor × edge) this would
        // underflow-panic or misreport a cycle.
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out").with_port(PortDecl::output("aux")));
        let b = g.add_pe(PeSpec::sink("b", "in").with_port(PortDecl::input("side")));
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        g.connect(a, "aux", b, "side", Grouping::Shuffle).unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn parallel_edge_cycle_still_detected() {
        // Parallel edges a→b plus a back-edge b→a: the parallel pair must
        // not mask the cycle.
        let mut g = WorkflowGraph::new("t");
        let s = g.add_pe(PeSpec::source("s", "out"));
        let a = g.add_pe(
            PeSpec::transform("a", "in", "out")
                .with_port(PortDecl::output("aux"))
                .with_port(PortDecl::input("loop")),
        );
        let b = g.add_pe(PeSpec::transform("b", "in", "out").with_port(PortDecl::input("side")));
        g.connect(s, "out", a, "in", Grouping::Shuffle).unwrap();
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        g.connect(a, "aux", b, "side", Grouping::Shuffle).unwrap();
        g.connect(b, "out", a, "loop", Grouping::Shuffle).unwrap();
        assert!(matches!(g.validate(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::DanglingInput {
            pe: "x".into(),
            port: "p".into(),
        };
        assert!(e.to_string().contains("x"));
        assert!(e.to_string().contains("p"));
    }
}
