//! Groupings: how data items are routed between PE instances.
//!
//! A grouping is a property of a connection's *receiving* input port. When a
//! PE has more than one instance, the grouping decides which instance each
//! data item is delivered to. The variants mirror dispel4py's grouping
//! vocabulary (§2.1 of the paper):
//!
//! * [`Grouping::Shuffle`] — load-balanced delivery; any instance may receive
//!   any item. This is the default and the only grouping the plain dynamic
//!   scheduling optimization supports.
//! * [`Grouping::GroupBy`] — items whose key fields match are always routed
//!   to the same instance (the "MapReduce-like" `group_by` in the paper; the
//!   sentiment workflow groups `happy State` by the `state` field).
//! * [`Grouping::Global`] — every item goes to a single instance (instance
//!   0), used for the `top 3 happiest` reducer.
//! * [`Grouping::OneToAll`] — every item is broadcast to *all* instances.
//!
//! `GroupBy` and `Global` introduce *state affinity*: the receiving PE must
//! be treated as stateful by mappings that move tasks between workers.

/// Routing policy for a connection into a multi-instance PE.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub enum Grouping {
    /// Load-balanced delivery to any instance (round-robin or queue-pull).
    #[default]
    Shuffle,
    /// Deterministic delivery keyed on the named fields of the data item.
    GroupBy(Vec<String>),
    /// All items delivered to instance 0.
    Global,
    /// Every item broadcast to all instances.
    OneToAll,
}

impl Grouping {
    /// Returns true if this grouping pins items to specific instances, which
    /// means the receiving PE carries per-instance state that dynamic
    /// scheduling must respect (routes through a private queue in the hybrid
    /// mapping).
    pub fn requires_affinity(&self) -> bool {
        matches!(self, Grouping::GroupBy(_) | Grouping::Global)
    }

    /// Returns true if this grouping duplicates items across instances.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, Grouping::OneToAll)
    }

    /// Convenience constructor for a single-field group-by.
    pub fn group_by(field: impl Into<String>) -> Self {
        Grouping::GroupBy(vec![field.into()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_default_and_stateless() {
        assert_eq!(Grouping::default(), Grouping::Shuffle);
        assert!(!Grouping::Shuffle.requires_affinity());
        assert!(!Grouping::Shuffle.is_broadcast());
    }

    #[test]
    fn group_by_requires_affinity() {
        let g = Grouping::group_by("state");
        assert!(g.requires_affinity());
        assert_eq!(g, Grouping::GroupBy(vec!["state".to_string()]));
    }

    #[test]
    fn global_requires_affinity() {
        assert!(Grouping::Global.requires_affinity());
    }

    #[test]
    fn one_to_all_is_broadcast_but_not_affine() {
        assert!(Grouping::OneToAll.is_broadcast());
        assert!(!Grouping::OneToAll.requires_affinity());
    }
}
