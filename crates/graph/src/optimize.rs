//! Static workflow optimizations: *naive assignment* and *staging*.
//!
//! These are the two static optimizations from the authors' prior work
//! ([13, 14] in the paper, summarised in §2.2) that the optimization module
//! applies to the *abstract* workflow before mapping, so they compose with
//! every enactment engine:
//!
//! * **Naive assignment** analyses execution logs (an [`ExecutionProfile`])
//!   and consolidates interconnected PEs whose communication time surpasses
//!   their execution time — fusing them removes the channel between them.
//! * **Staging** clusters consecutive operations that do not require data
//!   shuffling, purely from the graph's shape: a chain link is fusable when
//!   the downstream PE has a single predecessor and the connection's
//!   grouping neither pins instances (group-by / global) nor broadcasts.
//!
//! Both produce a [`Clustering`]: a partition of PEs into fusion groups that
//! mappings may execute inside a single worker without inter-worker traffic.

use crate::graph::WorkflowGraph;
use crate::node::PeId;
use std::collections::HashMap;
use std::time::Duration;

/// Measured (or estimated) costs from previous executions of a workflow.
#[derive(Debug, Clone, Default)]
pub struct ExecutionProfile {
    /// Mean per-item execution time of each PE.
    pub exec_time: HashMap<PeId, Duration>,
    /// Mean per-item communication time of each connection, keyed by
    /// (producer, consumer).
    pub comm_time: HashMap<(PeId, PeId), Duration>,
}

impl ExecutionProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a PE's mean execution time (builder style).
    pub fn with_exec(mut self, pe: PeId, t: Duration) -> Self {
        self.exec_time.insert(pe, t);
        self
    }

    /// Records a connection's mean communication time (builder style).
    pub fn with_comm(mut self, from: PeId, to: PeId, t: Duration) -> Self {
        self.comm_time.insert((from, to), t);
        self
    }
}

/// A partition of the workflow's PEs into fusion groups.
///
/// Every PE appears in exactly one cluster; clusters are listed in
/// topological order of their first member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Fusion groups; each inner vector is in topological order.
    pub clusters: Vec<Vec<PeId>>,
}

impl Clustering {
    /// The cluster index containing `pe`.
    pub fn cluster_of(&self, pe: PeId) -> Option<usize> {
        self.clusters.iter().position(|c| c.contains(&pe))
    }

    /// True if two PEs were fused into the same cluster.
    pub fn fused(&self, a: PeId, b: PeId) -> bool {
        match (self.cluster_of(a), self.cluster_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True if there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }
}

/// Union-find over PE indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

fn clusters_from_dsu(graph: &WorkflowGraph, dsu: &mut Dsu) -> Clustering {
    let order = graph
        .topological_order()
        .unwrap_or_else(|_| graph.pe_ids().collect());
    let mut by_root: HashMap<usize, Vec<PeId>> = HashMap::new();
    let mut roots_in_order = Vec::new();
    for id in order {
        let root = dsu.find(id.0);
        let entry = by_root.entry(root).or_default();
        if entry.is_empty() {
            roots_in_order.push(root);
        }
        entry.push(id);
    }
    Clustering {
        clusters: roots_in_order
            .into_iter()
            .map(|r| {
                by_root
                    .remove(&r)
                    .expect("every recorded root owns a cluster")
            })
            .collect(),
    }
}

/// *Naive assignment*: fuse every connected pair whose communication time
/// exceeds the combined mean execution time of its endpoints.
///
/// Pairs missing from the profile are left unfused (no evidence, no fusion).
pub fn naive_assignment(graph: &WorkflowGraph, profile: &ExecutionProfile) -> Clustering {
    let mut dsu = Dsu::new(graph.pe_count());
    for c in graph.connections() {
        let comm = match profile.comm_time.get(&(c.from_pe, c.to_pe)) {
            Some(t) => *t,
            None => continue,
        };
        let exec = profile
            .exec_time
            .get(&c.from_pe)
            .copied()
            .unwrap_or_default()
            .max(profile.exec_time.get(&c.to_pe).copied().unwrap_or_default());
        if comm > exec {
            dsu.union(c.from_pe.0, c.to_pe.0);
        }
    }
    clusters_from_dsu(graph, &mut dsu)
}

/// *Staging*: fuse pipeline links that require no data shuffling.
///
/// A connection `u → v` is fused when `v` has exactly one predecessor, `u`
/// has exactly one successor, and the grouping neither pins instances nor
/// broadcasts. This collapses straight-line pipeline segments into stages
/// while keeping fan-in/fan-out and grouping boundaries intact.
///
/// Source PEs always form their own stage: a source's "operation" is
/// generating the whole stream, and fusing it with consumers would collapse
/// the stream into a single unit of work, destroying data parallelism.
pub fn staging(graph: &WorkflowGraph) -> Clustering {
    let mut dsu = Dsu::new(graph.pe_count());
    for c in graph.connections() {
        let from_is_source = graph
            .pe(c.from_pe)
            .map(|s| s.kind() == crate::node::PeKind::Source)
            .unwrap_or(false);
        let single_pred = graph.predecessors(c.to_pe).len() == 1;
        let single_succ = graph.successors(c.from_pe).len() == 1;
        let no_shuffle_needed = !c.grouping.requires_affinity() && !c.grouping.is_broadcast();
        if !from_is_source && single_pred && single_succ && no_shuffle_needed {
            dsu.union(c.from_pe.0, c.to_pe.0);
        }
    }
    clusters_from_dsu(graph, &mut dsu)
}

/// The critical path: the source-to-sink chain maximising summed per-item
/// cost (PE execution + edge communication), from an [`ExecutionProfile`].
///
/// This is the lower bound on per-item latency no amount of added
/// parallelism can beat, and the chain the fusion optimizations should
/// target first. PEs or edges missing from the profile cost zero.
pub fn critical_path(graph: &WorkflowGraph, profile: &ExecutionProfile) -> (Vec<PeId>, Duration) {
    let Ok(order) = graph.topological_order() else {
        return (vec![], Duration::ZERO);
    };
    let mut best: HashMap<PeId, (Duration, Option<PeId>)> = HashMap::new();
    for &id in &order {
        let own = profile.exec_time.get(&id).copied().unwrap_or_default();
        let mut incoming_best: (Duration, Option<PeId>) = (Duration::ZERO, None);
        for pred in graph.predecessors(id) {
            let upstream = best.get(&pred).map(|(d, _)| *d).unwrap_or_default();
            let comm = profile
                .comm_time
                .get(&(pred, id))
                .copied()
                .unwrap_or_default();
            let via = upstream + comm;
            if via > incoming_best.0 {
                incoming_best = (via, Some(pred));
            }
        }
        best.insert(id, (incoming_best.0 + own, incoming_best.1));
    }
    // Deterministic maximum: scan in topological order with >=, so among
    // equal-cost endpoints the furthest-downstream PE (e.g. the sink after
    // a free final hop) wins.
    let mut end_total: Option<(PeId, Duration)> = None;
    for &id in &order {
        let d = best[&id].0;
        if end_total.map(|(_, t)| d >= t).unwrap_or(true) {
            end_total = Some((id, d));
        }
    }
    let Some((end, total)) = end_total else {
        return (vec![], Duration::ZERO);
    };
    let mut path = vec![end];
    let mut cursor = end;
    while let Some(&(_, Some(prev))) = best.get(&cursor) {
        path.push(prev);
        cursor = prev;
    }
    path.reverse();
    (path, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::Grouping;
    use crate::node::PeSpec;

    fn pipeline(n: usize) -> WorkflowGraph {
        let mut g = WorkflowGraph::new("p");
        let mut prev = g.add_pe(PeSpec::source("pe0", "out"));
        for i in 1..n {
            let pe = if i == n - 1 {
                g.add_pe(PeSpec::sink(format!("pe{i}"), "in"))
            } else {
                g.add_pe(PeSpec::transform(format!("pe{i}"), "in", "out"))
            };
            g.connect(prev, "out", pe, "in", Grouping::Shuffle).unwrap();
            prev = pe;
        }
        g
    }

    #[test]
    fn staging_fuses_straight_pipeline_after_the_source() {
        let g = pipeline(5);
        let c = staging(&g);
        assert_eq!(c.len(), 2, "source stage + fused body");
        assert_eq!(c.clusters[0], vec![PeId(0)], "the source stands alone");
        assert_eq!(c.clusters[1].len(), 4);
    }

    #[test]
    fn staging_breaks_at_group_by() {
        let mut g = WorkflowGraph::new("t");
        let s = g.add_pe(PeSpec::source("s", "out"));
        let a = g.add_pe(PeSpec::transform("a", "in", "out"));
        let a2 = g.add_pe(PeSpec::transform("a2", "in", "out"));
        let b = g.add_pe(PeSpec::sink("b", "in"));
        g.connect(s, "out", a, "in", Grouping::Shuffle).unwrap();
        g.connect(a, "out", a2, "in", Grouping::Shuffle).unwrap();
        g.connect(a2, "out", b, "in", Grouping::group_by("k"))
            .unwrap();
        let c = staging(&g);
        assert!(!c.fused(s, a), "sources stand alone");
        assert!(c.fused(a, a2), "transform chain fuses");
        assert!(!c.fused(a2, b), "group-by boundary");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn staging_never_fuses_a_source() {
        let g = pipeline(2);
        let c = staging(&g);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn staging_breaks_at_fan_out() {
        let mut g = WorkflowGraph::new("t");
        let s = g.add_pe(PeSpec::source("s", "out"));
        let l = g.add_pe(PeSpec::sink("l", "in"));
        let r = g.add_pe(PeSpec::sink("r", "in"));
        g.connect(s, "out", l, "in", Grouping::Shuffle).unwrap();
        g.connect(s, "out", r, "in", Grouping::Shuffle).unwrap();
        let c = staging(&g);
        assert_eq!(c.len(), 3, "fan-out must not be fused");
    }

    #[test]
    fn staging_breaks_at_fan_in() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out"));
        let b = g.add_pe(PeSpec::source("b", "out"));
        let k = g.add_pe(PeSpec::sink("k", "in"));
        g.connect(a, "out", k, "in", Grouping::Shuffle).unwrap();
        g.connect(b, "out", k, "in", Grouping::Shuffle).unwrap();
        let c = staging(&g);
        assert_eq!(c.len(), 3, "fan-in must not be fused");
    }

    #[test]
    fn naive_assignment_fuses_comm_dominated_links() {
        let g = pipeline(3);
        let (a, b, c) = (PeId(0), PeId(1), PeId(2));
        let profile = ExecutionProfile::new()
            .with_exec(a, Duration::from_millis(1))
            .with_exec(b, Duration::from_millis(1))
            .with_exec(c, Duration::from_millis(100))
            .with_comm(a, b, Duration::from_millis(50)) // comm >> exec: fuse
            .with_comm(b, c, Duration::from_millis(50)); // comm < exec(c): keep
        let clustering = naive_assignment(&g, &profile);
        assert!(clustering.fused(a, b));
        assert!(!clustering.fused(b, c));
    }

    #[test]
    fn naive_assignment_without_profile_fuses_nothing() {
        let g = pipeline(4);
        let c = naive_assignment(&g, &ExecutionProfile::new());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn clustering_covers_every_pe_exactly_once() {
        let g = pipeline(6);
        let c = staging(&g);
        let mut all: Vec<PeId> = c.clusters.iter().flatten().copied().collect();
        all.sort();
        let expected: Vec<PeId> = g.pe_ids().collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn critical_path_follows_the_expensive_branch() {
        // s → (cheap, costly) → k: the path must run through `costly`.
        let mut g = WorkflowGraph::new("t");
        let s = g.add_pe(PeSpec::source("s", "out"));
        let cheap = g.add_pe(PeSpec::transform("cheap", "in", "out"));
        let costly = g.add_pe(PeSpec::transform("costly", "in", "out"));
        let k = g.add_pe(PeSpec::sink("k", "in"));
        g.connect(s, "out", cheap, "in", Grouping::Shuffle).unwrap();
        g.connect(s, "out", costly, "in", Grouping::Shuffle)
            .unwrap();
        g.connect(cheap, "out", k, "in", Grouping::Shuffle).unwrap();
        g.connect(costly, "out", k, "in", Grouping::Shuffle)
            .unwrap();
        let profile = ExecutionProfile::new()
            .with_exec(s, Duration::from_millis(1))
            .with_exec(cheap, Duration::from_millis(1))
            .with_exec(costly, Duration::from_millis(50))
            .with_exec(k, Duration::from_millis(2));
        let (path, total) = critical_path(&g, &profile);
        assert_eq!(path, vec![s, costly, k]);
        assert_eq!(total, Duration::from_millis(53));
    }

    #[test]
    fn critical_path_counts_communication() {
        // Two parallel 2-hop paths with equal exec; the fat edge decides.
        let mut g = WorkflowGraph::new("t");
        let s = g.add_pe(PeSpec::source("s", "out"));
        let a = g.add_pe(PeSpec::transform("a", "in", "out"));
        let b = g.add_pe(PeSpec::transform("b", "in", "out"));
        let k = g.add_pe(PeSpec::sink("k", "in"));
        g.connect(s, "out", a, "in", Grouping::Shuffle).unwrap();
        g.connect(s, "out", b, "in", Grouping::Shuffle).unwrap();
        g.connect(a, "out", k, "in", Grouping::Shuffle).unwrap();
        g.connect(b, "out", k, "in", Grouping::Shuffle).unwrap();
        let profile = ExecutionProfile::new()
            .with_comm(s, a, Duration::from_millis(1))
            .with_comm(s, b, Duration::from_millis(30));
        let (path, total) = critical_path(&g, &profile);
        assert_eq!(path, vec![s, b, k]);
        assert_eq!(total, Duration::from_millis(30));
    }

    #[test]
    fn critical_path_of_empty_graph() {
        let g = WorkflowGraph::new("t");
        let (path, total) = critical_path(&g, &ExecutionProfile::new());
        assert!(path.is_empty());
        assert_eq!(total, Duration::ZERO);
    }

    #[test]
    fn cluster_of_unknown_pe_is_none() {
        let g = pipeline(2);
        let c = staging(&g);
        assert_eq!(c.cluster_of(PeId(99)), None);
        assert!(!c.fused(PeId(0), PeId(99)));
    }
}
