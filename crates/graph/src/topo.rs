//! Topological utilities over workflow graphs.
//!
//! Mappings need a deterministic topological order (static `multi` assigns
//! instances in that order) and stage layering (the `staging` optimization
//! clusters PEs by shuffle-free layers).

use crate::graph::WorkflowGraph;
use crate::node::PeId;
use crate::validate::GraphError;

impl WorkflowGraph {
    /// Deterministic topological order (Kahn's algorithm with a smallest-id
    /// tie-break). Errors if the graph has a cycle.
    pub fn topological_order(&self) -> Result<Vec<PeId>, GraphError> {
        let n = self.pe_count();
        let mut indegree = vec![0usize; n];
        for c in self.connections() {
            indegree[c.to_pe.0] += 1;
        }
        // Min-heap by id for determinism.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = self
            .pe_ids()
            .filter(|id| indegree[id.0] == 0)
            .map(|id| std::cmp::Reverse(id.0))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            let id = PeId(i);
            order.push(id);
            for c in self.connections().iter().filter(|c| c.from_pe == id) {
                indegree[c.to_pe.0] -= 1;
                if indegree[c.to_pe.0] == 0 {
                    ready.push(std::cmp::Reverse(c.to_pe.0));
                }
            }
        }
        if order.len() != n {
            let stuck = self
                .pes()
                .find(|(id, _)| indegree[id.0] > 0)
                .map(|(_, pe)| pe.name.clone())
                .unwrap_or_default();
            return Err(GraphError::Cycle(stuck));
        }
        Ok(order)
    }

    /// Groups PEs into dependency layers: layer 0 contains the sources,
    /// layer k the PEs all of whose predecessors are in layers < k and at
    /// least one is in layer k-1 (longest-path layering).
    pub fn layers(&self) -> Result<Vec<Vec<PeId>>, GraphError> {
        let order = self.topological_order()?;
        let mut depth = vec![0usize; self.pe_count()];
        for &id in &order {
            for pred in self.predecessors(id) {
                depth[id.0] = depth[id.0].max(depth[pred.0] + 1);
            }
        }
        let max = depth.iter().copied().max().unwrap_or(0);
        let mut layers = vec![Vec::new(); if self.pe_count() == 0 { 0 } else { max + 1 }];
        for &id in &order {
            layers[depth[id.0]].push(id);
        }
        Ok(layers)
    }

    /// Longest path length (in edges) from any source to `pe`.
    pub fn depth_of(&self, pe: PeId) -> Result<usize, GraphError> {
        let order = self.topological_order()?;
        let mut depth = vec![0usize; self.pe_count()];
        for &id in &order {
            for pred in self.predecessors(id) {
                depth[id.0] = depth[id.0].max(depth[pred.0] + 1);
            }
        }
        Ok(depth[pe.0])
    }

    /// All PEs reachable from `start` (excluding `start` itself unless it is
    /// on a path back to itself, which a DAG forbids).
    pub fn descendants(&self, start: PeId) -> Vec<PeId> {
        let mut seen = vec![false; self.pe_count()];
        let mut stack = self.successors(start);
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.0], true) {
                continue;
            }
            out.push(id);
            stack.extend(self.successors(id));
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::Grouping;
    use crate::node::PeSpec;

    fn diamond() -> (WorkflowGraph, [PeId; 4]) {
        let mut g = WorkflowGraph::new("t");
        let s = g.add_pe(PeSpec::source("s", "out"));
        let l = g.add_pe(PeSpec::transform("l", "in", "out"));
        let r = g.add_pe(PeSpec::transform("r", "in", "out"));
        let k = g.add_pe(PeSpec::sink("k", "in"));
        g.connect(s, "out", l, "in", Grouping::Shuffle).unwrap();
        g.connect(s, "out", r, "in", Grouping::Shuffle).unwrap();
        g.connect(l, "out", k, "in", Grouping::Shuffle).unwrap();
        g.connect(r, "out", k, "in", Grouping::Shuffle).unwrap();
        (g, [s, l, r, k])
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, [s, l, r, k]) = diamond();
        let order = g.topological_order().unwrap();
        let pos = |id: PeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(s) < pos(l));
        assert!(pos(s) < pos(r));
        assert!(pos(l) < pos(k));
        assert!(pos(r) < pos(k));
    }

    #[test]
    fn topo_order_is_deterministic() {
        let (g, _) = diamond();
        assert_eq!(
            g.topological_order().unwrap(),
            g.topological_order().unwrap()
        );
    }

    #[test]
    fn layers_of_diamond() {
        let (g, [s, l, r, k]) = diamond();
        let layers = g.layers().unwrap();
        assert_eq!(layers, vec![vec![s], vec![l, r], vec![k]]);
    }

    #[test]
    fn depth_uses_longest_path() {
        // s -> a -> k and s -> k directly: k's depth must be 2.
        let mut g = WorkflowGraph::new("t");
        let s = g.add_pe(PeSpec::source("s", "out"));
        let a = g.add_pe(PeSpec::transform("a", "in", "out"));
        let k = g.add_pe(PeSpec::sink("k", "in"));
        g.connect(s, "out", a, "in", Grouping::Shuffle).unwrap();
        g.connect(s, "out", k, "in", Grouping::Shuffle).unwrap();
        g.connect(a, "out", k, "in", Grouping::Shuffle).unwrap();
        assert_eq!(g.depth_of(k).unwrap(), 2);
    }

    #[test]
    fn descendants_of_source_cover_graph() {
        let (g, [s, l, r, k]) = diamond();
        assert_eq!(g.descendants(s), vec![l, r, k]);
        assert_eq!(g.descendants(k), vec![]);
    }

    #[test]
    fn empty_graph_has_empty_order() {
        let g = WorkflowGraph::new("t");
        assert!(g.topological_order().unwrap().is_empty());
        assert!(g.layers().unwrap().is_empty());
    }
}
