//! Fluent builders for common workflow shapes.
//!
//! Composing a linear pipeline through the raw
//! [`WorkflowGraph`](crate::WorkflowGraph) API means repeating
//! `connect(prev, "output", next, "input", …)` per stage. [`PipelineBuilder`]
//! removes the ceremony for the dominant case — a source, a chain of
//! transforms, a sink — while still allowing per-edge groupings.

use crate::graph::WorkflowGraph;
use crate::grouping::Grouping;
use crate::node::{PeId, PeSpec};
use crate::validate::GraphError;

/// Builder for linear pipelines (source → transforms… → sink).
pub struct PipelineBuilder {
    graph: WorkflowGraph,
    tail: Option<(PeId, String)>,
    pending_error: Option<GraphError>,
}

impl PipelineBuilder {
    /// Starts a pipeline with a source PE emitting on `output`.
    pub fn source(
        workflow_name: impl Into<String>,
        pe_name: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        let mut graph = WorkflowGraph::new(workflow_name);
        let output = output.into();
        let id = graph.add_pe(PeSpec::source(pe_name, output.clone()));
        Self {
            graph,
            tail: Some((id, output)),
            pending_error: None,
        }
    }

    /// Appends a transform (input `"input"`, output `"output"`) connected by
    /// a shuffle grouping.
    pub fn then(self, pe_name: impl Into<String>) -> Self {
        self.then_grouped(pe_name, Grouping::Shuffle)
    }

    /// Appends a transform connected with an explicit grouping.
    pub fn then_grouped(mut self, pe_name: impl Into<String>, grouping: Grouping) -> Self {
        if self.pending_error.is_some() {
            return self;
        }
        let mut spec = PeSpec::transform(pe_name, "input", "output");
        if grouping.requires_affinity() {
            spec = spec.stateful();
        }
        let id = self.graph.add_pe(spec);
        let (prev, prev_port) = self.tail.take().expect("pipeline has a tail");
        if let Err(e) = self.graph.connect(prev, prev_port, id, "input", grouping) {
            self.pending_error = Some(e);
        }
        self.tail = Some((id, "output".to_string()));
        self
    }

    /// Terminates with a sink and returns the finished, validated graph.
    pub fn sink(self, pe_name: impl Into<String>) -> Result<WorkflowGraph, GraphError> {
        self.sink_grouped(pe_name, Grouping::Shuffle)
    }

    /// Terminates with a sink connected by an explicit grouping.
    pub fn sink_grouped(
        mut self,
        pe_name: impl Into<String>,
        grouping: Grouping,
    ) -> Result<WorkflowGraph, GraphError> {
        if let Some(e) = self.pending_error {
            return Err(e);
        }
        let mut spec = PeSpec::sink(pe_name, "input");
        if grouping.requires_affinity() {
            spec = spec.stateful();
        }
        let id = self.graph.add_pe(spec);
        let (prev, prev_port) = self.tail.take().expect("pipeline has a tail");
        self.graph.connect(prev, prev_port, id, "input", grouping)?;
        self.graph.validate()?;
        Ok(self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_validated_pipeline() {
        let g = PipelineBuilder::source("wf", "read", "output")
            .then("clean")
            .then("score")
            .sink("write")
            .unwrap();
        assert_eq!(g.pe_count(), 4);
        assert_eq!(g.connections().len(), 3);
        assert_eq!(g.sources(), vec![PeId(0)]);
        assert_eq!(g.sinks(), vec![PeId(3)]);
        g.validate().unwrap();
    }

    #[test]
    fn grouped_stages_become_stateful() {
        let g = PipelineBuilder::source("wf", "read", "output")
            .then_grouped("aggregate", Grouping::group_by("key"))
            .sink_grouped("reduce", Grouping::Global)
            .unwrap();
        assert!(g.is_effectively_stateful(PeId(1)));
        assert!(g.is_effectively_stateful(PeId(2)));
        assert!(!g.is_effectively_stateful(PeId(0)));
    }

    #[test]
    fn port_names_are_the_defaults() {
        let g = PipelineBuilder::source("wf", "a", "out").sink("b").unwrap();
        let c = &g.connections()[0];
        assert_eq!(c.from_port, "out");
        assert_eq!(c.to_port, "input");
    }

    #[test]
    fn duplicate_names_surface_at_sink() {
        let result = PipelineBuilder::source("wf", "x", "output")
            .then("x")
            .sink("y");
        assert!(matches!(result, Err(GraphError::DuplicateName(_))));
    }
}
