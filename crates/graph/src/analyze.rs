//! Multi-diagnostic static analysis of abstract workflows.
//!
//! [`WorkflowGraph::validate`] stops at the first structural problem; this
//! module is the full pass behind it: [`WorkflowGraph::analyze`] walks the
//! graph once and gathers *every* finding as a rule-coded [`Diagnostic`],
//! so a workflow with three distinct mistakes reports three diagnostics,
//! not one. The engines run it pre-flight (aborting on errors, folding
//! warnings into `RunReport::warnings`), and `repro check` renders it for
//! every built-in workflow.
//!
//! # Rule catalog
//!
//! Structural rules (the `validate()` set, errors):
//!
//! * `D4PY001` — duplicate PE name
//! * `D4PY002` — PE declares no ports
//! * `D4PY003` — workflow has no source PE
//! * `D4PY004` — directed cycle
//! * `D4PY005` — PE unreachable from any source
//! * `D4PY006` — input port with no incoming connection
//! * `D4PY007` — explicit zero-instance request
//! * `D4PY008` — connection references a port that no longer exists
//!
//! Semantic rules grounded in the paper's stateful/grouping contract:
//!
//! * `D4PY101` (error) — stateful PE with ≥2 instances fed by a shuffle
//!   grouping: state partitions nondeterministically across instances.
//! * `D4PY102` (error, [`AnalysisContext::fusion`]) — a declared-stateful
//!   PE fused into a multi-PE stage (see [`crate::optimize::staging`])
//!   whose entry grouping is not keyed: fusion rewires its upstream
//!   routing and destroys key partitioning.
//! * `D4PY103` (error, [`AnalysisContext::autoscaling`]) — autoscaling
//!   over a declared-stateful PE without a keyed input grouping: scaling
//!   events re-route items across instances mid-run.
//! * `D4PY104` (error) — a `Grouping::GroupBy` key that the upstream
//!   output port's declared fields do not contain (skipped when the port
//!   declares no fields).
//! * `D4PY201` (warning) — fan-in merge into an order-sensitive stateful
//!   sink: arrival order across branches is nondeterministic.
//! * `D4PY202` (warning) — output port never connected (dead port).
//! * `D4PY301` (info) — explicit instance requests exceed the configured
//!   worker count (oversubscription; instances will time-share workers).
//!
//! # Waivers
//!
//! PE-attributed findings can be waived `#[allow]`-style on the spec:
//! `PeSpec::sink("debug", "in").allow("D4PY202")`. Waived findings are
//! counted ([`Diagnostics::waived`]) but not reported. Graph-level
//! findings (`D4PY003`, `D4PY004`, `D4PY301`) cannot be waived.

use crate::graph::WorkflowGraph;
use crate::grouping::Grouping;
use crate::node::{PeId, PeKind};
use crate::optimize::staging;
use crate::port::PortDirection;
use std::collections::HashMap;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The workflow must not run: the stateful/grouping contract or the
    /// graph structure is violated.
    Error,
    /// The workflow may run but a result-affecting hazard exists.
    Warning,
    /// Advisory only (e.g. resource oversubscription).
    Info,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Info => write!(f, "info"),
        }
    }
}

/// One rule finding, attributed as precisely as the rule allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`D4PY001`…); the contract for waivers, docs, and
    /// machine consumers.
    pub code: &'static str,
    /// Error / warning / info.
    pub severity: Severity,
    /// Name of the PE the finding is attributed to, if any.
    pub pe: Option<String>,
    /// Port on that PE, if the finding is port-precise.
    pub port: Option<String>,
    /// Human-readable statement of the problem.
    pub message: String,
    /// Suggested fix, when the rule has one.
    pub help: Option<String>,
}

/// Everything [`WorkflowGraph::analyze`] found, plus render helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostics {
    /// Name of the analyzed workflow.
    pub workflow: String,
    /// All non-waived findings, errors first, then by code.
    pub findings: Vec<Diagnostic>,
    /// Findings suppressed by per-PE waivers.
    pub waived: usize,
}

/// What the analyzer may assume about the deployment. Rules that depend on
/// the enactment configuration are gated here so engine pre-flight checks
/// only what that engine will actually do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisContext {
    /// Configured worker count, when known (`None` skips `D4PY301`).
    pub workers: Option<usize>,
    /// Whether the engine may autoscale PE instances (`D4PY102` gate's
    /// sibling: enables `D4PY103`).
    pub autoscaling: bool,
    /// Whether fusion/staging will be applied (enables `D4PY102`).
    pub fusion: bool,
}

impl AnalysisContext {
    /// Context for an engine pre-flight check: workers known, fusion not
    /// applied by the engine itself.
    pub fn preflight(workers: usize, autoscaling: bool) -> Self {
        Self {
            workers: Some(workers),
            autoscaling,
            fusion: false,
        }
    }

    /// The strictest audit: every deployment-gated rule enabled, worker
    /// count unknown. This is what `repro check` runs.
    pub fn full() -> Self {
        Self {
            workers: None,
            autoscaling: true,
            fusion: true,
        }
    }
}

impl Default for AnalysisContext {
    fn default() -> Self {
        Self::full()
    }
}

impl Diagnostics {
    /// True if any finding is error-severity.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.findings
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Renders all findings rustc-style, one block per finding, with a
    /// trailing per-severity summary line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.findings {
            let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
            let mut site = format!("workflow '{}'", self.workflow);
            if let Some(pe) = &d.pe {
                let _ = write!(site, ", PE '{pe}'");
            }
            if let Some(port) = &d.port {
                let _ = write!(site, ", port '{port}'");
            }
            let _ = writeln!(out, "  --> {site}");
            if let Some(help) = &d.help {
                let _ = writeln!(out, "  = help: {help}");
            }
        }
        let _ = writeln!(
            out,
            "workflow '{}': {} error(s), {} warning(s), {} info ({} waived)",
            self.workflow,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.waived
        );
        out
    }

    /// Machine-readable JSON object (hand-rolled; the workspace is
    /// serde-free by design).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"workflow\":{},\"errors\":{},\"warnings\":{},\"info\":{},\"waived\":{},\"findings\":[",
            json_str(&self.workflow),
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.waived
        );
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":{},\"severity\":{},\"pe\":{},\"port\":{},\"message\":{},\"help\":{}}}",
                json_str(d.code),
                json_str(&d.severity.to_string()),
                json_opt(d.pe.as_deref()),
                json_opt(d.port.as_deref()),
                json_str(&d.message),
                json_opt(d.help.as_deref()),
            );
        }
        out.push_str("]}");
        out
    }
}

/// JSON string literal with escaping for the characters that matter.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt(s: Option<&str>) -> String {
    match s {
        Some(s) => json_str(s),
        None => "null".to_string(),
    }
}

/// Accumulator that applies per-PE waivers at emission time.
struct Sink<'g> {
    graph: &'g WorkflowGraph,
    findings: Vec<Diagnostic>,
    waived: usize,
}

impl Sink<'_> {
    fn emit(
        &mut self,
        code: &'static str,
        severity: Severity,
        pe: Option<PeId>,
        port: Option<&str>,
        message: String,
        help: Option<&str>,
    ) {
        let spec = pe.and_then(|id| self.graph.pe(id));
        if let Some(spec) = spec {
            if spec.waives(code) {
                self.waived += 1;
                return;
            }
        }
        self.findings.push(Diagnostic {
            code,
            severity,
            pe: spec.map(|s| s.name.clone()),
            port: port.map(str::to_string),
            message,
            help: help.map(str::to_string),
        });
    }
}

impl WorkflowGraph {
    /// Runs every diagnostic rule and returns all findings.
    ///
    /// Unlike [`WorkflowGraph::validate`] this never stops early; a graph
    /// seeded with three distinct violations yields three diagnostics in
    /// one pass. See the module docs for the rule catalog.
    pub fn analyze(&self, ctx: &AnalysisContext) -> Diagnostics {
        let mut sink = Sink {
            graph: self,
            findings: Vec::new(),
            waived: 0,
        };

        self.rule_duplicate_names(&mut sink);
        self.rule_shapes(&mut sink);
        self.rule_cycle(&mut sink);
        self.rule_reachability(&mut sink);
        self.rule_dangling_inputs(&mut sink);
        self.rule_stale_port_refs(&mut sink);
        self.rule_stateful_shuffle(&mut sink);
        if ctx.fusion {
            self.rule_fusion_legality(&mut sink);
        }
        if ctx.autoscaling {
            self.rule_autoscale_stateful(&mut sink);
        }
        self.rule_group_by_fields(&mut sink);
        self.rule_fan_in_stateful_sink(&mut sink);
        self.rule_dead_outputs(&mut sink);
        if let Some(workers) = ctx.workers {
            self.rule_oversubscription(&mut sink, workers);
        }

        let mut findings = sink.findings;
        findings.sort_by(|a, b| {
            (a.severity, a.code, &a.pe, &a.port).cmp(&(b.severity, b.code, &b.pe, &b.port))
        });
        Diagnostics {
            workflow: self.name().to_string(),
            findings,
            waived: sink.waived,
        }
    }

    /// D4PY001: duplicate PE names (one finding per extra occurrence, so
    /// each offending PE can waive or fix independently).
    fn rule_duplicate_names(&self, sink: &mut Sink) {
        let mut seen: HashMap<&str, PeId> = HashMap::new();
        for (id, pe) in self.pes() {
            if let Some(&first) = seen.get(pe.name.as_str()) {
                sink.emit(
                    "D4PY001",
                    Severity::Error,
                    Some(id),
                    None,
                    format!(
                        "duplicate PE name '{}' (first declared as {first})",
                        pe.name
                    ),
                    Some("rename so every PE is uniquely addressable"),
                );
            } else {
                seen.insert(pe.name.as_str(), id);
            }
        }
    }

    /// D4PY002 (no ports), D4PY007 (zero instances), D4PY003 (no source).
    fn rule_shapes(&self, sink: &mut Sink) {
        for (id, pe) in self.pes() {
            if pe.kind() == PeKind::Isolated {
                sink.emit(
                    "D4PY002",
                    Severity::Error,
                    Some(id),
                    None,
                    format!("PE '{}' declares no ports", pe.name),
                    Some("declare at least one input or output port"),
                );
            }
            if pe.instances == Some(0) {
                sink.emit(
                    "D4PY007",
                    Severity::Error,
                    Some(id),
                    None,
                    format!("PE '{}' requests zero instances", pe.name),
                    Some("request at least one instance, or None to let the partitioner decide"),
                );
            }
        }
        if self.pe_count() > 0 && self.sources().is_empty() {
            sink.emit(
                "D4PY003",
                Severity::Error,
                None,
                None,
                "workflow has no source PE".to_string(),
                Some("at least one PE must have no incoming connections"),
            );
        }
    }

    /// D4PY004: Kahn's algorithm; leftovers are on (or behind) a cycle.
    /// One graph-level finding naming every involved PE — a cycle is a
    /// property of the edge set, not of any single node, so it cannot be
    /// waived per-PE.
    fn rule_cycle(&self, sink: &mut Sink) {
        let n = self.pe_count();
        let mut indegree = vec![0usize; n];
        for c in self.connections() {
            indegree[c.to_pe.0] += 1;
        }
        let mut queue: Vec<PeId> = self.pe_ids().filter(|id| indegree[id.0] == 0).collect();
        let mut visited = 0usize;
        while let Some(id) = queue.pop() {
            visited += 1;
            for succ in self.successors(id) {
                let edges = self.outgoing(id).filter(|(_, c)| c.to_pe == succ).count();
                indegree[succ.0] -= edges;
                if indegree[succ.0] == 0 {
                    queue.push(succ);
                }
            }
        }
        if visited != n {
            let names: Vec<&str> = self
                .pes()
                .filter(|(id, _)| indegree[id.0] > 0)
                .map(|(_, pe)| pe.name.as_str())
                .collect();
            sink.emit(
                "D4PY004",
                Severity::Error,
                None,
                None,
                format!("workflow contains a cycle through: {}", names.join(", ")),
                Some("remove the back-edge; workflows must be acyclic"),
            );
        }
    }

    /// D4PY005: every PE must be reachable from a true stream producer.
    fn rule_reachability(&self, sink: &mut Sink) {
        let mut reachable = vec![false; self.pe_count()];
        let mut stack: Vec<PeId> = self
            .pes()
            .filter(|(_, pe)| pe.kind() == PeKind::Source)
            .map(|(id, _)| id)
            .collect();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id.0], true) {
                continue;
            }
            stack.extend(self.successors(id));
        }
        for (id, pe) in self.pes() {
            // Port-less PEs already report D4PY002; repeating "unreachable"
            // for them is noise.
            if !reachable[id.0] && pe.kind() != PeKind::Isolated {
                sink.emit(
                    "D4PY005",
                    Severity::Error,
                    Some(id),
                    None,
                    format!("PE '{}' is not reachable from any source", pe.name),
                    Some("connect it downstream of a source, or remove it"),
                );
            }
        }
    }

    /// D4PY006: an input port with nothing feeding it never fires.
    fn rule_dangling_inputs(&self, sink: &mut Sink) {
        for (id, pe) in self.pes() {
            for port in pe.inputs() {
                let fed = self.incoming(id).any(|(_, c)| c.to_port == port.name);
                if !fed {
                    sink.emit(
                        "D4PY006",
                        Severity::Error,
                        Some(id),
                        Some(&port.name),
                        format!(
                            "input port '{}' of PE '{}' has no incoming connection",
                            port.name, pe.name
                        ),
                        Some("connect a producer, or remove the port"),
                    );
                }
            }
        }
    }

    /// D4PY008: `connect()` validates ports at insertion time, but
    /// `pe_mut` can rename or drop ports afterwards — re-check every
    /// connection endpoint against the current declarations.
    fn rule_stale_port_refs(&self, sink: &mut Sink) {
        for c in self.connections() {
            if let Some(from) = self.pe(c.from_pe) {
                if from.port(&c.from_port, PortDirection::Output).is_none() {
                    sink.emit(
                        "D4PY008",
                        Severity::Error,
                        Some(c.from_pe),
                        Some(&c.from_port),
                        format!(
                            "connection references missing output port '{}' on PE '{}'",
                            c.from_port, from.name
                        ),
                        Some("the port was removed or renamed after the connection was made"),
                    );
                }
            }
            if let Some(to) = self.pe(c.to_pe) {
                if to.port(&c.to_port, PortDirection::Input).is_none() {
                    sink.emit(
                        "D4PY008",
                        Severity::Error,
                        Some(c.to_pe),
                        Some(&c.to_port),
                        format!(
                            "connection references missing input port '{}' on PE '{}'",
                            c.to_port, to.name
                        ),
                        Some("the port was removed or renamed after the connection was made"),
                    );
                }
            }
        }
    }

    /// D4PY101: the paper's core contract — a stateful PE with parallel
    /// instances needs keyed routing, or its state partitions by whatever
    /// instance happened to receive each item.
    fn rule_stateful_shuffle(&self, sink: &mut Sink) {
        for (id, pe) in self.pes() {
            let instances = pe.instances.unwrap_or(1);
            if !pe.stateful || instances < 2 {
                continue;
            }
            for (_, c) in self.incoming(id) {
                if c.grouping == Grouping::Shuffle {
                    sink.emit(
                        "D4PY101",
                        Severity::Error,
                        Some(id),
                        Some(&c.to_port),
                        format!(
                            "stateful PE '{}' runs {} instances but input port '{}' \
                             is shuffle-routed",
                            pe.name, instances, c.to_port
                        ),
                        Some(
                            "use a group-by or global grouping so state partitioning \
                             is deterministic",
                        ),
                    );
                }
            }
        }
    }

    /// D4PY102: staging fuses shuffle links into single stages; a
    /// declared-stateful PE downstream inside such a stage inherits the
    /// stage entry's routing. If no entry grouping is keyed, fusion has
    /// silently destroyed the PE's key partitioning.
    fn rule_fusion_legality(&self, sink: &mut Sink) {
        let clustering = staging(self);
        for cluster in &clustering.clusters {
            if cluster.len() < 2 {
                continue;
            }
            let keyed_entry = self.connections().iter().any(|c| {
                !cluster.contains(&c.from_pe)
                    && cluster.contains(&c.to_pe)
                    && c.grouping.requires_affinity()
            });
            if keyed_entry {
                continue;
            }
            // cluster[0] is the stage head (clusters are in topological
            // order and staged chains are linear); its own incoming edge
            // is unchanged by fusion, so only downstream members report.
            for &member in &cluster[1..] {
                let Some(pe) = self.pe(member) else { continue };
                if pe.stateful {
                    sink.emit(
                        "D4PY102",
                        Severity::Error,
                        Some(member),
                        None,
                        format!(
                            "stateful PE '{}' is fused into a stage whose entry \
                             grouping is not keyed",
                            pe.name
                        ),
                        Some(
                            "keep the stateful PE as its own stage or feed the fused \
                             stage through a keyed grouping",
                        ),
                    );
                }
            }
        }
    }

    /// D4PY103: autoscaling re-routes queued items when instances come and
    /// go; a stateful PE survives that only under keyed routing.
    fn rule_autoscale_stateful(&self, sink: &mut Sink) {
        for (id, pe) in self.pes() {
            if !pe.stateful {
                continue;
            }
            let keyed = self
                .incoming(id)
                .any(|(_, c)| c.grouping.requires_affinity());
            if !keyed {
                sink.emit(
                    "D4PY103",
                    Severity::Error,
                    Some(id),
                    None,
                    format!(
                        "autoscaling over stateful PE '{}' without a keyed input grouping",
                        pe.name
                    ),
                    Some(
                        "route its input with group_by(...)/global, or disable \
                         autoscaling for this workflow",
                    ),
                );
            }
        }
    }

    /// D4PY104: a group-by key the producing port does not declare routes
    /// every item by a missing field (one bucket). Only checked when the
    /// producer declares fields — an empty declaration means "unknown".
    fn rule_group_by_fields(&self, sink: &mut Sink) {
        for c in self.connections() {
            let Grouping::GroupBy(keys) = &c.grouping else {
                continue;
            };
            let Some(from) = self.pe(c.from_pe) else {
                continue;
            };
            let Some(port) = from.port(&c.from_port, PortDirection::Output) else {
                continue;
            };
            if port.fields.is_empty() {
                continue;
            }
            for key in keys {
                if !port.fields.contains(key) {
                    sink.emit(
                        "D4PY104",
                        Severity::Error,
                        Some(c.to_pe),
                        Some(&c.to_port),
                        format!(
                            "group-by key '{}' is not declared by upstream port '{}.{}'",
                            key, from.name, c.from_port
                        ),
                        Some(
                            "declare the field with with_output_fields(...) on the \
                             producer, or fix the grouping key",
                        ),
                    );
                }
            }
        }
    }

    /// D4PY201: branches merging into an order-sensitive stateful sink
    /// arrive in nondeterministic relative order.
    fn rule_fan_in_stateful_sink(&self, sink: &mut Sink) {
        for (id, pe) in self.pes() {
            if self.outgoing(id).next().is_some() {
                continue; // not a graph sink
            }
            let order_sensitive = pe.stateful
                || self
                    .incoming(id)
                    .any(|(_, c)| c.grouping == Grouping::Global);
            let preds = self.predecessors(id);
            if order_sensitive && preds.len() >= 2 {
                sink.emit(
                    "D4PY201",
                    Severity::Warning,
                    Some(id),
                    None,
                    format!(
                        "stateful sink '{}' merges {} upstream branches; arrival \
                         order across branches is nondeterministic",
                        pe.name,
                        preds.len()
                    ),
                    Some("make the sink order-insensitive or merge through a keyed aggregator"),
                );
            }
        }
    }

    /// D4PY202: a declared output port nothing consumes — usually a
    /// renamed connection or a forgotten branch.
    fn rule_dead_outputs(&self, sink: &mut Sink) {
        for (id, pe) in self.pes() {
            for port in pe.outputs() {
                if self.outgoing_from_port(id, &port.name).next().is_none() {
                    sink.emit(
                        "D4PY202",
                        Severity::Warning,
                        Some(id),
                        Some(&port.name),
                        format!(
                            "output port '{}' of PE '{}' is never connected",
                            port.name, pe.name
                        ),
                        Some("connect a consumer, or remove the port"),
                    );
                }
            }
        }
    }

    /// D4PY301: more explicitly requested instances than workers is legal
    /// (instances time-share), but worth knowing when sizing a run.
    fn rule_oversubscription(&self, sink: &mut Sink, workers: usize) {
        let requested: usize = self.pes().filter_map(|(_, pe)| pe.instances).sum();
        if workers > 0 && requested > workers {
            sink.emit(
                "D4PY301",
                Severity::Info,
                None,
                None,
                format!(
                    "explicit instance requests total {requested} but only \
                     {workers} worker(s) are configured"
                ),
                Some("instances beyond the worker count time-share workers"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PeSpec;

    fn linear() -> WorkflowGraph {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out"));
        let b = g.add_pe(PeSpec::sink("b", "in"));
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        g
    }

    #[test]
    fn clean_graph_has_no_findings() {
        let d = linear().analyze(&AnalysisContext::full());
        assert!(d.findings.is_empty(), "{}", d.render());
        assert!(!d.has_errors());
        assert_eq!(d.waived, 0);
    }

    #[test]
    fn render_contains_code_and_site() {
        let mut g = linear();
        g.add_pe(PeSpec::new("island", vec![]));
        let d = g.analyze(&AnalysisContext::full());
        let text = d.render();
        assert!(text.contains("error[D4PY002]"), "{text}");
        assert!(text.contains("PE 'island'"), "{text}");
        assert!(text.contains("1 error(s)"), "{text}");
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut g = WorkflowGraph::new("q\"uote");
        g.add_pe(PeSpec::new("island", vec![]));
        let d = g.analyze(&AnalysisContext::full());
        let json = d.to_json();
        assert!(json.contains("\"workflow\":\"q\\\"uote\""), "{json}");
        assert!(json.contains("\"code\":\"D4PY002\""), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
    }

    #[test]
    fn waiver_suppresses_and_counts() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out").allow("D4PY202"));
        let b = g.add_pe(PeSpec::sink("b", "in").with_port(crate::port::PortDecl::output("debug")));
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        // a.out is connected; b.debug is dead but... b doesn't waive it.
        let d = g.analyze(&AnalysisContext::full());
        assert_eq!(d.count(Severity::Warning), 1, "{}", d.render());
        // Waive on the offending PE instead.
        let mut g = WorkflowGraph::new("t");
        let a = g.add_pe(PeSpec::source("a", "out"));
        let b = g.add_pe(
            PeSpec::sink("b", "in")
                .with_port(crate::port::PortDecl::output("debug"))
                .allow("D4PY202"),
        );
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        let d = g.analyze(&AnalysisContext::full());
        assert!(d.findings.is_empty(), "{}", d.render());
        assert_eq!(d.waived, 1);
    }

    #[test]
    fn context_gates_fusion_and_autoscaling_rules() {
        // source → t1 → stateful t2 → sink, all shuffle: staging fuses
        // {t1, t2} with an unkeyed entry (D4PY102), and autoscaling over
        // stateful t2 without keyed input is D4PY103.
        let mut g = WorkflowGraph::new("t");
        let s = g.add_pe(PeSpec::source("s", "out"));
        let t1 = g.add_pe(PeSpec::transform("t1", "in", "out"));
        let t2 = g.add_pe(PeSpec::transform("t2", "in", "out").stateful());
        let k = g.add_pe(PeSpec::sink("k", "in"));
        g.connect(s, "out", t1, "in", Grouping::Shuffle).unwrap();
        g.connect(t1, "out", t2, "in", Grouping::Shuffle).unwrap();
        g.connect(t2, "out", k, "in", Grouping::Shuffle).unwrap();

        let full = g.analyze(&AnalysisContext::full());
        let codes: Vec<&str> = full.findings.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"D4PY102"), "{codes:?}");
        assert!(codes.contains(&"D4PY103"), "{codes:?}");

        let pre = g.analyze(&AnalysisContext::preflight(4, false));
        assert!(pre.findings.is_empty(), "{}", pre.render());
    }
}
