//! # d4py-graph — abstract workflow graphs for dispel4py-rs
//!
//! This crate implements the *abstract workflow* layer of dispel4py: users
//! compose processing elements (PEs) into a directed acyclic graph whose
//! edges carry a [`Grouping`] that governs how data is routed between PE
//! *instances*. The abstract workflow is independent of any enactment engine
//! ("mapping"); concrete deployment decisions — how many instances each PE
//! gets, which worker executes which instance — live in [`partition`] and in
//! the mapping crates built on top.
//!
//! The crate also ships the two *static* optimizations the paper builds on
//! (naive assignment and staging, see [`optimize`]) and a DOT exporter for
//! visualising workflows ([`dot`]).
//!
//! ```
//! use d4py_graph::{WorkflowGraph, PeSpec, Grouping};
//!
//! let mut g = WorkflowGraph::new("example");
//! let src = g.add_pe(PeSpec::source("read", "output"));
//! let work = g.add_pe(PeSpec::transform("work", "input", "output"));
//! let sink = g.add_pe(PeSpec::sink("write", "input"));
//! g.connect(src, "output", work, "input", Grouping::Shuffle).unwrap();
//! g.connect(work, "output", sink, "input", Grouping::Shuffle).unwrap();
//! g.validate().unwrap();
//! assert_eq!(g.topological_order().unwrap().len(), 3);
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod builder;
pub mod dot;
pub mod graph;
pub mod grouping;
pub mod node;
pub mod optimize;
pub mod partition;
pub mod port;
pub mod topo;
pub mod validate;

pub use analyze::{AnalysisContext, Diagnostic, Diagnostics, Severity};
pub use builder::PipelineBuilder;
pub use graph::{Connection, ConnectionId, WorkflowGraph};
pub use grouping::Grouping;
pub use node::{PeId, PeKind, PeSpec};
pub use partition::{InstanceAllocation, InstanceId, PartitionPlan};
pub use port::{PortDecl, PortDirection};
pub use validate::GraphError;
