//! Static instance allocation (abstract → concrete workflow).
//!
//! The static `multi` mapping pre-assigns PE instances to processes. The
//! paper's Figure 1 describes the native allocation rule: the source PE is
//! exclusively assigned one process, and each remaining PE receives
//! ⌊(P − 1) / (N − 1)⌋ instances, where P is the process count and N the PE
//! count — possibly leaving processes idle (the inefficiency that motivates
//! the auto-scaling work). PEs may also pin an explicit instance count (the
//! sentiment workflow pins `happy State` to 4 and `top 3 happiest` to 2);
//! pinned PEs take their processes off the top before the remainder is
//! divided.

use crate::graph::WorkflowGraph;
use crate::node::PeId;

/// A concrete instance of a PE: the pair (PE id, instance index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId {
    /// The PE this instance executes.
    pub pe: PeId,
    /// Index within the PE's instance set, `0..instances(pe)`.
    pub index: usize,
}

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.pe, self.index)
    }
}

/// How one PE's instances map onto processes.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceAllocation {
    /// The PE being allocated.
    pub pe: PeId,
    /// Number of instances created for the PE.
    pub instances: usize,
    /// Process index for each instance (`processes[i]` hosts instance `i`).
    pub processes: Vec<usize>,
}

/// A full static deployment plan: every PE's instances assigned to processes.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    /// Total processes the plan was built for.
    pub num_processes: usize,
    /// Per-PE allocations, in PE-id order.
    pub allocations: Vec<InstanceAllocation>,
}

/// Errors from static partitioning.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// Fewer processes than the plan's minimum (one per instance).
    NotEnoughProcesses {
        /// Processes required (sum of instance counts).
        required: usize,
        /// Processes available.
        available: usize,
    },
    /// The graph is empty.
    EmptyGraph,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NotEnoughProcesses {
                required,
                available,
            } => write!(
                f,
                "static mapping needs at least {required} processes, got {available}"
            ),
            PartitionError::EmptyGraph => write!(f, "cannot partition an empty workflow"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl PartitionPlan {
    /// Instance count for a PE.
    pub fn instances_of(&self, pe: PeId) -> usize {
        self.allocations.get(pe.0).map(|a| a.instances).unwrap_or(0)
    }

    /// Process hosting a particular instance.
    pub fn process_of(&self, inst: InstanceId) -> Option<usize> {
        self.allocations
            .get(inst.pe.0)?
            .processes
            .get(inst.index)
            .copied()
    }

    /// All instances in the plan, in (pe, index) order.
    pub fn instances(&self) -> Vec<InstanceId> {
        self.allocations
            .iter()
            .flat_map(|a| (0..a.instances).map(move |i| InstanceId { pe: a.pe, index: i }))
            .collect()
    }

    /// Total number of instances across all PEs.
    pub fn total_instances(&self) -> usize {
        self.allocations.iter().map(|a| a.instances).sum()
    }

    /// Number of processes actually used (distinct process indices).
    pub fn processes_used(&self) -> usize {
        let mut used: Vec<usize> = self
            .allocations
            .iter()
            .flat_map(|a| a.processes.iter().copied())
            .collect();
        used.sort_unstable();
        used.dedup();
        used.len()
    }

    /// Number of processes left idle by the plan.
    pub fn idle_processes(&self) -> usize {
        self.num_processes.saturating_sub(self.processes_used())
    }
}

/// The minimum process count the static mapping accepts for `graph`:
/// one process per instance, where unpinned PEs need at least one instance.
///
/// The paper notes this constraint explicitly: the seismic workflow's 9 PEs
/// force `multi` to start at 12 processes in their sweep, and the sentiment
/// workflow's pinned instances (4 + 2 + 8 singletons) force a minimum of 14.
pub fn minimum_processes(graph: &WorkflowGraph) -> usize {
    graph.pes().map(|(_, pe)| pe.instances.unwrap_or(1)).sum()
}

/// Builds the native static allocation for `num_processes` processes.
///
/// Rules, mirroring dispel4py's Multiprocessing mapping:
/// 1. PEs with an explicit `instances` request get exactly that many, each on
///    its own process.
/// 2. The first unpinned source PE gets exactly 1 instance.
/// 3. Remaining processes are divided evenly (floor) among the remaining
///    unpinned PEs; any remainder stays idle (Figure 1's two unused cores).
pub fn partition(
    graph: &WorkflowGraph,
    num_processes: usize,
) -> Result<PartitionPlan, PartitionError> {
    if graph.pe_count() == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    let required = minimum_processes(graph);
    if num_processes < required {
        return Err(PartitionError::NotEnoughProcesses {
            required,
            available: num_processes,
        });
    }

    // Pass 1: decide instance counts. Source PEs are always single-instance
    // unless explicitly pinned: giving a source several instances would
    // replay the stream once per instance.
    let mut counts = vec![0usize; graph.pe_count()];
    let mut pinned_total = 0usize;
    let mut fixed_single = 0usize; // unpinned sources fixed at 1
    let mut flexible: Vec<PeId> = Vec::new();
    for (id, pe) in graph.pes() {
        if let Some(n) = pe.instances {
            counts[id.0] = n;
            pinned_total += n;
        } else if pe.kind() == crate::node::PeKind::Source {
            counts[id.0] = 1;
            fixed_single += 1;
        } else {
            flexible.push(id);
        }
    }
    if !flexible.is_empty() {
        let pool = num_processes - pinned_total - fixed_single;
        let share = (pool / flexible.len()).max(1);
        for id in &flexible {
            counts[id.0] = share;
        }
    }

    // Pass 2: assign processes in topological-ish (id) order.
    let mut next_proc = 0usize;
    let mut allocations = Vec::with_capacity(graph.pe_count());
    for id in graph.pe_ids() {
        let n = counts[id.0];
        let processes: Vec<usize> = (0..n)
            .map(|_| {
                let p = next_proc;
                next_proc += 1;
                p
            })
            .collect();
        allocations.push(InstanceAllocation {
            pe: id,
            instances: n,
            processes,
        });
    }

    Ok(PartitionPlan {
        num_processes,
        allocations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::Grouping;
    use crate::node::PeSpec;

    /// The Figure 1 example: 4 PEs (1 source + 3 others) on 12 cores →
    /// source gets 1, others get ⌊11/3⌋ = 3 each, 2 cores idle.
    fn figure1_graph() -> WorkflowGraph {
        let mut g = WorkflowGraph::new("fig1");
        let s = g.add_pe(PeSpec::source("src", "out"));
        let a = g.add_pe(PeSpec::transform("a", "in", "out"));
        let b = g.add_pe(PeSpec::transform("b", "in", "out"));
        let k = g.add_pe(PeSpec::sink("k", "in"));
        g.connect(s, "out", a, "in", Grouping::Shuffle).unwrap();
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        g.connect(b, "out", k, "in", Grouping::Shuffle).unwrap();
        g
    }

    #[test]
    fn figure1_allocation_matches_paper() {
        let g = figure1_graph();
        let plan = partition(&g, 12).unwrap();
        assert_eq!(plan.instances_of(PeId(0)), 1, "source gets one process");
        for pe in 1..4 {
            assert_eq!(plan.instances_of(PeId(pe)), 3, "⌊(12-1)/3⌋ = 3");
        }
        assert_eq!(plan.total_instances(), 10);
        assert_eq!(
            plan.idle_processes(),
            2,
            "two cores left idle as in Figure 1"
        );
    }

    #[test]
    fn minimum_is_one_per_pe_without_pins() {
        let g = figure1_graph();
        assert_eq!(minimum_processes(&g), 4);
        assert!(partition(&g, 3).is_err());
        partition(&g, 4).unwrap();
    }

    #[test]
    fn pinned_instances_respected() {
        let mut g = WorkflowGraph::new("t");
        let s = g.add_pe(PeSpec::source("s", "out"));
        let grp = g.add_pe(
            PeSpec::transform("grp", "in", "out")
                .stateful()
                .with_instances(4),
        );
        let top = g.add_pe(PeSpec::sink("top", "in").stateful().with_instances(2));
        g.connect(s, "out", grp, "in", Grouping::group_by("k"))
            .unwrap();
        g.connect(grp, "out", top, "in", Grouping::Global).unwrap();
        assert_eq!(minimum_processes(&g), 7);
        let plan = partition(&g, 8).unwrap();
        assert_eq!(plan.instances_of(grp), 4);
        assert_eq!(plan.instances_of(top), 2);
        assert_eq!(plan.instances_of(s), 1);
    }

    #[test]
    fn each_instance_gets_unique_process() {
        let g = figure1_graph();
        let plan = partition(&g, 12).unwrap();
        let mut procs: Vec<usize> = plan
            .instances()
            .iter()
            .map(|&i| plan.process_of(i).unwrap())
            .collect();
        procs.sort_unstable();
        let before = procs.len();
        procs.dedup();
        assert_eq!(before, procs.len(), "no two instances share a process");
    }

    #[test]
    fn exact_minimum_leaves_nothing_idle() {
        let g = figure1_graph();
        let plan = partition(&g, 4).unwrap();
        assert_eq!(plan.total_instances(), 4);
        assert_eq!(plan.idle_processes(), 0);
    }

    #[test]
    fn empty_graph_rejected() {
        let g = WorkflowGraph::new("t");
        assert_eq!(partition(&g, 4).unwrap_err(), PartitionError::EmptyGraph);
    }

    #[test]
    fn instances_listing_is_dense() {
        let g = figure1_graph();
        let plan = partition(&g, 12).unwrap();
        let insts = plan.instances();
        assert_eq!(insts.len(), plan.total_instances());
        assert_eq!(
            insts[0],
            InstanceId {
                pe: PeId(0),
                index: 0
            }
        );
    }
}
