//! Port declarations for processing elements.
//!
//! Every PE declares a set of named input ports and output ports. A
//! [`Connection`](crate::Connection) links one output port to one input port;
//! a single output port may feed many input ports (fan-out) and a single
//! input port may be fed by many output ports (fan-in).

/// Direction of a port relative to its owning PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Data flows into the PE through this port.
    Input,
    /// Data flows out of the PE through this port.
    Output,
}

/// A named port on a processing element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortDecl {
    /// Port name, unique per direction within a PE.
    pub name: String,
    /// Whether this is an input or output port.
    pub direction: PortDirection,
    /// Data fields the items on this port are declared to carry.
    ///
    /// Empty means "unknown" (the default): static analysis then cannot
    /// check `Grouping::GroupBy` keys against this port. A non-empty list
    /// is a contract — the analyzer's D4PY104 rule rejects group-by keys
    /// the producing port does not declare.
    pub fields: Vec<String>,
}

impl PortDecl {
    /// Creates an input port declaration.
    pub fn input(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            direction: PortDirection::Input,
            fields: Vec::new(),
        }
    }

    /// Creates an output port declaration.
    pub fn output(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            direction: PortDirection::Output,
            fields: Vec::new(),
        }
    }

    /// Declares the data fields items on this port carry (builder style).
    pub fn with_fields<I, S>(mut self, fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.fields = fields.into_iter().map(Into::into).collect();
        self
    }

    /// Returns true if this is an input port.
    pub fn is_input(&self) -> bool {
        self.direction == PortDirection::Input
    }

    /// Returns true if this is an output port.
    pub fn is_output(&self) -> bool {
        self.direction == PortDirection::Output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_constructor_sets_direction() {
        let p = PortDecl::input("in");
        assert_eq!(p.name, "in");
        assert!(p.is_input());
        assert!(!p.is_output());
    }

    #[test]
    fn output_constructor_sets_direction() {
        let p = PortDecl::output("out");
        assert_eq!(p.name, "out");
        assert!(p.is_output());
        assert!(!p.is_input());
    }

    #[test]
    fn ports_with_same_name_different_direction_are_distinct() {
        let a = PortDecl::input("x");
        let b = PortDecl::output("x");
        assert_ne!(a, b);
    }

    #[test]
    fn fields_default_to_unknown() {
        assert!(PortDecl::output("out").fields.is_empty());
        let p = PortDecl::output("out").with_fields(["key", "weight"]);
        assert_eq!(p.fields, vec!["key".to_string(), "weight".to_string()]);
    }
}
