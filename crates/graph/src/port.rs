//! Port declarations for processing elements.
//!
//! Every PE declares a set of named input ports and output ports. A
//! [`Connection`](crate::Connection) links one output port to one input port;
//! a single output port may feed many input ports (fan-out) and a single
//! input port may be fed by many output ports (fan-in).

/// Direction of a port relative to its owning PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Data flows into the PE through this port.
    Input,
    /// Data flows out of the PE through this port.
    Output,
}

/// A named port on a processing element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortDecl {
    /// Port name, unique per direction within a PE.
    pub name: String,
    /// Whether this is an input or output port.
    pub direction: PortDirection,
}

impl PortDecl {
    /// Creates an input port declaration.
    pub fn input(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            direction: PortDirection::Input,
        }
    }

    /// Creates an output port declaration.
    pub fn output(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            direction: PortDirection::Output,
        }
    }

    /// Returns true if this is an input port.
    pub fn is_input(&self) -> bool {
        self.direction == PortDirection::Input
    }

    /// Returns true if this is an output port.
    pub fn is_output(&self) -> bool {
        self.direction == PortDirection::Output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_constructor_sets_direction() {
        let p = PortDecl::input("in");
        assert_eq!(p.name, "in");
        assert!(p.is_input());
        assert!(!p.is_output());
    }

    #[test]
    fn output_constructor_sets_direction() {
        let p = PortDecl::output("out");
        assert_eq!(p.name, "out");
        assert!(p.is_output());
        assert!(!p.is_input());
    }

    #[test]
    fn ports_with_same_name_different_direction_are_distinct() {
        let a = PortDecl::input("x");
        let b = PortDecl::output("x");
        assert_ne!(a, b);
    }
}
