//! PE node specifications.
//!
//! A [`PeSpec`] is the *declaration* of a processing element inside an
//! abstract workflow: its name, ports, statefulness, and an optional
//! requested instance count. The executable behaviour (the `process`
//! function) lives in `d4py-core`'s `ProcessingElement` trait; the graph
//! layer only needs the shape.

use crate::port::{PortDecl, PortDirection};

/// Identifier of a PE within a [`WorkflowGraph`](crate::WorkflowGraph).
///
/// Assigned densely in insertion order, so it doubles as an index into the
/// graph's node list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeId(pub usize);

impl PeId {
    /// Index form of the id.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for PeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// Coarse role of a PE, derived from its port shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeKind {
    /// No input ports: generates the stream (a "producer" in dispel4py).
    Source,
    /// Both input and output ports.
    Transform,
    /// No output ports: terminates the stream.
    Sink,
    /// No ports at all (invalid in a validated graph).
    Isolated,
}

/// Declaration of a processing element in an abstract workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct PeSpec {
    /// Human-readable unique name within the workflow.
    pub name: String,
    /// Declared ports (inputs and outputs).
    pub ports: Vec<PortDecl>,
    /// Whether the PE retains information between inputs (§2.1 "stateful").
    /// Stateful PEs are pinned to dedicated workers by the hybrid mapping.
    pub stateful: bool,
    /// Requested number of parallel instances, if the user constrains it
    /// (e.g. `happy State` uses 4 instances in the sentiment workflow).
    /// `None` lets the partitioner decide.
    pub instances: Option<usize>,
    /// Diagnostic rule codes waived for this PE (`#[allow]`-style; see
    /// [`crate::analyze`]). A waived code suppresses PE-attributed findings
    /// of that rule; graph-level findings cannot be waived.
    pub waivers: Vec<String>,
}

impl PeSpec {
    /// Creates a spec with explicit ports.
    pub fn new(name: impl Into<String>, ports: Vec<PortDecl>) -> Self {
        Self {
            name: name.into(),
            ports,
            stateful: false,
            instances: None,
            waivers: Vec::new(),
        }
    }

    /// A source PE with a single output port.
    pub fn source(name: impl Into<String>, output: impl Into<String>) -> Self {
        Self::new(name, vec![PortDecl::output(output)])
    }

    /// A transform PE with one input and one output port.
    pub fn transform(
        name: impl Into<String>,
        input: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        Self::new(name, vec![PortDecl::input(input), PortDecl::output(output)])
    }

    /// A sink PE with a single input port.
    pub fn sink(name: impl Into<String>, input: impl Into<String>) -> Self {
        Self::new(name, vec![PortDecl::input(input)])
    }

    /// Marks the PE stateful (builder style).
    pub fn stateful(mut self) -> Self {
        self.stateful = true;
        self
    }

    /// Requests an explicit instance count (builder style).
    pub fn with_instances(mut self, n: usize) -> Self {
        self.instances = Some(n);
        self
    }

    /// Adds a port (builder style).
    pub fn with_port(mut self, port: PortDecl) -> Self {
        self.ports.push(port);
        self
    }

    /// Declares the data fields carried by the named output port (builder
    /// style). No-op if the port does not exist — [`crate::analyze`] then
    /// has no field contract to check against.
    pub fn with_output_fields<I, S>(mut self, port: &str, fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        if let Some(p) = self
            .ports
            .iter_mut()
            .find(|p| p.is_output() && p.name == port)
        {
            p.fields = fields.into_iter().map(Into::into).collect();
        }
        self
    }

    /// Waives a diagnostic rule code for this PE (builder style), e.g.
    /// `.allow("D4PY202")` for a deliberately unconnected debug port.
    pub fn allow(mut self, code: impl Into<String>) -> Self {
        self.waivers.push(code.into());
        self
    }

    /// True if the given diagnostic rule code is waived on this PE.
    pub fn waives(&self, code: &str) -> bool {
        self.waivers.iter().any(|c| c == code)
    }

    /// Input ports of the PE, in declaration order.
    pub fn inputs(&self) -> impl Iterator<Item = &PortDecl> {
        self.ports.iter().filter(|p| p.is_input())
    }

    /// Output ports of the PE, in declaration order.
    pub fn outputs(&self) -> impl Iterator<Item = &PortDecl> {
        self.ports.iter().filter(|p| p.is_output())
    }

    /// Looks up a port by name and direction.
    pub fn port(&self, name: &str, direction: PortDirection) -> Option<&PortDecl> {
        self.ports
            .iter()
            .find(|p| p.direction == direction && p.name == name)
    }

    /// Coarse role derived from the port shape.
    pub fn kind(&self) -> PeKind {
        let has_in = self.inputs().next().is_some();
        let has_out = self.outputs().next().is_some();
        match (has_in, has_out) {
            (false, true) => PeKind::Source,
            (true, true) => PeKind::Transform,
            (true, false) => PeKind::Sink,
            (false, false) => PeKind::Isolated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_kind() {
        assert_eq!(PeSpec::source("s", "out").kind(), PeKind::Source);
    }

    #[test]
    fn transform_kind() {
        assert_eq!(
            PeSpec::transform("t", "in", "out").kind(),
            PeKind::Transform
        );
    }

    #[test]
    fn sink_kind() {
        assert_eq!(PeSpec::sink("k", "in").kind(), PeKind::Sink);
    }

    #[test]
    fn isolated_kind() {
        assert_eq!(PeSpec::new("i", vec![]).kind(), PeKind::Isolated);
    }

    #[test]
    fn builder_flags() {
        let pe = PeSpec::transform("t", "in", "out")
            .stateful()
            .with_instances(4);
        assert!(pe.stateful);
        assert_eq!(pe.instances, Some(4));
    }

    #[test]
    fn port_lookup_respects_direction() {
        let pe = PeSpec::transform("t", "x", "x");
        assert!(pe.port("x", PortDirection::Input).is_some());
        assert!(pe.port("x", PortDirection::Output).is_some());
        assert!(pe.port("y", PortDirection::Input).is_none());
    }

    #[test]
    fn waivers_and_output_fields() {
        let pe = PeSpec::transform("t", "in", "out")
            .with_output_fields("out", ["key"])
            .allow("D4PY202");
        assert!(pe.waives("D4PY202"));
        assert!(!pe.waives("D4PY101"));
        let out = pe.port("out", PortDirection::Output).unwrap();
        assert_eq!(out.fields, vec!["key".to_string()]);
        // Unknown port: silently no contract.
        let pe = PeSpec::transform("t", "in", "out").with_output_fields("nope", ["k"]);
        assert!(pe
            .port("out", PortDirection::Output)
            .unwrap()
            .fields
            .is_empty());
    }

    #[test]
    fn multi_port_pe() {
        let pe = PeSpec::source("s", "a")
            .with_port(PortDecl::output("b"))
            .with_port(PortDecl::input("c"));
        assert_eq!(pe.outputs().count(), 2);
        assert_eq!(pe.inputs().count(), 1);
        assert_eq!(pe.kind(), PeKind::Transform);
    }
}
