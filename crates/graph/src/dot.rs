//! Graphviz DOT export for abstract workflows.
//!
//! Useful for documenting workflows (the paper's Figures 5–7 are exactly
//! these renderings). Stateful PEs render as double octagons; grouping
//! annotations label the edges.

use crate::analyze::{Diagnostics, Severity};
use crate::graph::WorkflowGraph;
use crate::grouping::Grouping;
use std::fmt::Write as _;

fn grouping_label(g: &Grouping) -> String {
    match g {
        Grouping::Shuffle => String::new(),
        Grouping::GroupBy(fields) => format!("group-by {}", fields.join(",")),
        Grouping::Global => "global".to_string(),
        Grouping::OneToAll => "one-to-all".to_string(),
    }
}

impl WorkflowGraph {
    /// Renders the workflow as a Graphviz DOT digraph.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=LR;");
        for (id, pe) in self.pes() {
            let shape = if self.is_effectively_stateful(id) {
                "doubleoctagon"
            } else {
                "box"
            };
            let extra = match pe.instances {
                Some(n) => format!("\\n×{n}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}{}\", shape={}];",
                id.0, pe.name, extra, shape
            );
        }
        for c in self.connections() {
            let label = grouping_label(&c.grouping);
            if label.is_empty() {
                let _ = writeln!(out, "  n{} -> n{};", c.from_pe.0, c.to_pe.0);
            } else {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [label=\"{}\"];",
                    c.from_pe.0, c.to_pe.0, label
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the workflow as DOT with diagnosed PEs visually flagged:
    /// error-bearing PEs get a red border, warning-bearing an orange one,
    /// info-bearing a blue one (worst finding wins). The first diagnostic
    /// code is appended to the node label so a failing `repro check` graph
    /// can be debugged at a glance.
    pub fn to_dot_diagnosed(&self, diags: &Diagnostics) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=LR;");
        for (id, pe) in self.pes() {
            let shape = if self.is_effectively_stateful(id) {
                "doubleoctagon"
            } else {
                "box"
            };
            let extra = match pe.instances {
                Some(n) => format!("\\n×{n}"),
                None => String::new(),
            };
            let worst = diags
                .findings
                .iter()
                .filter(|d| d.pe.as_deref() == Some(pe.name.as_str()))
                .min_by_key(|d| d.severity);
            let (color, badge) = match worst {
                Some(d) => {
                    let color = match d.severity {
                        Severity::Error => "red",
                        Severity::Warning => "orange",
                        Severity::Info => "blue",
                    };
                    (color, format!("\\n[{}]", d.code))
                }
                None => ("", String::new()),
            };
            let style = if color.is_empty() {
                String::new()
            } else {
                format!(", color={color}, penwidth=2")
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}{}{}\", shape={}{}];",
                id.0, pe.name, extra, badge, shape, style
            );
        }
        for c in self.connections() {
            let label = grouping_label(&c.grouping);
            if label.is_empty() {
                let _ = writeln!(out, "  n{} -> n{};", c.from_pe.0, c.to_pe.0);
            } else {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [label=\"{}\"];",
                    c.from_pe.0, c.to_pe.0, label
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PeSpec;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = WorkflowGraph::new("wf");
        let a = g.add_pe(PeSpec::source("reader", "out"));
        let b = g.add_pe(PeSpec::sink("writer", "in").stateful().with_instances(4));
        g.connect(a, "out", b, "in", Grouping::group_by("state"))
            .unwrap();
        let dot = g.to_dot();
        assert!(dot.contains("digraph \"wf\""));
        assert!(dot.contains("reader"));
        assert!(dot.contains("writer"));
        assert!(
            dot.contains("doubleoctagon"),
            "stateful PE should stand out"
        );
        assert!(dot.contains("group-by state"));
        assert!(dot.contains("×4"));
        assert!(dot.contains("n0 -> n1"));
    }

    #[test]
    fn diagnosed_dot_colors_offending_pes() {
        use crate::analyze::AnalysisContext;
        // Stateful 4-instance sink fed by Shuffle: D4PY101 on 'writer'.
        let mut g = WorkflowGraph::new("wf");
        let a = g.add_pe(PeSpec::source("reader", "out"));
        let b = g.add_pe(PeSpec::sink("writer", "in").stateful().with_instances(4));
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        let diags = g.analyze(&AnalysisContext::full());
        assert!(diags.has_errors());
        let dot = g.to_dot_diagnosed(&diags);
        assert!(dot.contains("color=red, penwidth=2"), "{dot}");
        assert!(dot.contains("[D4PY101]"), "{dot}");
        // The clean source keeps its default border.
        assert!(dot.contains("n0 [label=\"reader\", shape=box];"), "{dot}");
    }

    #[test]
    fn shuffle_edges_are_unlabelled() {
        let mut g = WorkflowGraph::new("wf");
        let a = g.add_pe(PeSpec::source("a", "out"));
        let b = g.add_pe(PeSpec::sink("b", "in"));
        g.connect(a, "out", b, "in", Grouping::Shuffle).unwrap();
        let dot = g.to_dot();
        assert!(dot.contains("n0 -> n1;"));
        assert!(!dot.contains("label=\"\""));
    }
}
