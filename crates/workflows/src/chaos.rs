//! Synthetic stateful group-by workload for the chaos matrix.
//!
//! `gen → enrich → count (group-by key, 4 instances) → tally (global)`
//!
//! Unlike the paper's three workflows, this one is built *for* fault
//! injection: its ground truth is analytic ([`expected_counts`]), its
//! source can replay any sub-range of the stream ([`build_range`]) so a
//! crashed run can resume from the last checkpoint boundary, and its
//! stateful aggregator externalizes state through the PR-3 snapshot
//! format. Key choice honours the configured [`TrafficShape`], so the
//! heavy-tailed skew cells concentrate load on few hot keys.
//!
//! Invariant checked by the chaos cells: after any survivable fault (or a
//! crash + warm-start recovery), the tally output must equal
//! [`expected_counts`] exactly — any lost or duplicated group-by state
//! shows up as a count mismatch.

use crate::config::WorkloadConfig;
use d4py_core::executable::Executable;
use d4py_core::pe::{Context, FnSource, ProcessingElement};
use d4py_core::value::Value;
use d4py_graph::{Grouping, PeSpec, WorkflowGraph};
use d4py_sync::rng::Pcg32;
use d4py_sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Records per 1X of workload.
pub const RECORDS_PER_X: u32 = 240;
/// Distinct group-by keys.
pub const N_KEYS: usize = 64;
/// Instances of the `count` group-by aggregator.
pub const COUNT_INSTANCES: usize = 4;

/// The full record stream for `cfg`: `(key, val)` pairs, deterministic in
/// `cfg.seed` and `cfg.shape` (skew changes key choice, pacing does not
/// change data).
pub fn records(cfg: &WorkloadConfig) -> Vec<(String, i64)> {
    let n = cfg.scale * RECORDS_PER_X;
    let mut rng = Pcg32::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let key = cfg.shape.key_index(&mut rng, N_KEYS);
        // Small deterministic payload derived from the same stream.
        let val = (key as i64 % 7) + 1;
        out.push((format!("k{key:02}"), val));
    }
    out
}

/// Analytic ground truth: per key, `(count, sum-of-enriched-values)`
/// after the enrich stage (`weight = 2·val + 1`).
pub fn expected_counts(cfg: &WorkloadConfig) -> BTreeMap<String, (i64, i64)> {
    let mut expect: BTreeMap<String, (i64, i64)> = BTreeMap::new();
    for (key, val) in records(cfg) {
        let e = expect.entry(key).or_insert((0, 0));
        e.0 += 1;
        e.1 += 2 * val + 1;
    }
    expect
}

/// Group-by aggregator with externalized state: per-key `(count, sum)`,
/// snapshotted in the PR-3 frame as a `{key: [count, sum]}` map.
struct KeyAggregate {
    counts: BTreeMap<String, (i64, i64)>,
}

impl ProcessingElement for KeyAggregate {
    fn process(&mut self, _port: &str, v: Value, _ctx: &mut dyn Context) {
        let key = v
            .get("key")
            .and_then(|k| k.as_str())
            .unwrap_or_default()
            .to_string();
        let w = v.get("weight").and_then(|w| w.as_int()).unwrap_or(0);
        let e = self.counts.entry(key).or_insert((0, 0));
        e.0 += 1;
        e.1 += w;
    }

    fn on_done(&mut self, ctx: &mut dyn Context) {
        for (key, (count, sum)) in &self.counts {
            ctx.emit(
                "output",
                Value::map([
                    ("key", Value::Str(key.clone())),
                    ("count", Value::Int(*count)),
                    ("sum", Value::Int(*sum)),
                ]),
            );
        }
    }

    fn snapshot(&self) -> Option<Value> {
        let map: BTreeMap<String, Value> = self
            .counts
            .iter()
            .map(|(k, (c, s))| (k.clone(), Value::List(vec![Value::Int(*c), Value::Int(*s)])))
            .collect();
        Some(Value::Map(map))
    }

    fn restore(&mut self, state: Value) {
        let Value::Map(map) = state else { return };
        self.counts.clear();
        for (k, v) in map {
            if let Some(items) = v.as_list() {
                if let (Some(c), Some(s)) = (
                    items.first().and_then(|x| x.as_int()),
                    items.get(1).and_then(|x| x.as_int()),
                ) {
                    self.counts.insert(k, (c, s));
                }
            }
        }
    }
}

/// Global tally sink: cold each run (no snapshot) — after a recovery run
/// it receives the *complete* per-key totals from `count`'s flush, so the
/// final rows must equal [`expected_counts`] exactly.
struct Tally {
    rows: BTreeMap<String, (i64, i64)>,
    /// Keys that arrived more than once — duplicated group-by state.
    duplicates: u64,
    results: Arc<Mutex<Vec<Value>>>,
}

impl ProcessingElement for Tally {
    fn process(&mut self, _port: &str, v: Value, _ctx: &mut dyn Context) {
        let key = v
            .get("key")
            .and_then(|k| k.as_str())
            .unwrap_or_default()
            .to_string();
        let count = v.get("count").and_then(|c| c.as_int()).unwrap_or(0);
        let sum = v.get("sum").and_then(|s| s.as_int()).unwrap_or(0);
        if self.rows.insert(key, (count, sum)).is_some() {
            self.duplicates += 1;
        }
    }

    fn on_done(&mut self, _ctx: &mut dyn Context) {
        let mut out = self.results.lock();
        for (key, (count, sum)) in &self.rows {
            out.push(Value::map([
                ("key", Value::Str(key.clone())),
                ("count", Value::Int(*count)),
                ("sum", Value::Int(*sum)),
                ("dup", Value::Int(self.duplicates as i64)),
            ]));
        }
    }
}

/// Builds the workload over the full record stream.
pub fn build(cfg: &WorkloadConfig) -> (Executable, Arc<Mutex<Vec<Value>>>) {
    let n = (cfg.scale * RECORDS_PER_X) as usize;
    build_range(cfg, 0, n)
}

/// Builds the workload over records `[lo, hi)` of the stream.
///
/// This is the replay hook crash recovery needs: a checkpoint run covers
/// `[0, k)`, a crashed-then-recovered run replays `[k, n)` on top of the
/// warm-started snapshots, and the final tally must match an
/// uninterrupted `[0, n)` run.
pub fn build_range(
    cfg: &WorkloadConfig,
    lo: usize,
    hi: usize,
) -> (Executable, Arc<Mutex<Vec<Value>>>) {
    let mut g = WorkflowGraph::new("chaos_group_by");
    let gen = g.add_pe(PeSpec::source("gen", "output"));
    let enrich = g.add_pe(
        // Field contract checked by the analyzer's D4PY104 rule: the
        // downstream group-by key must be one of these.
        PeSpec::transform("enrich", "input", "output")
            .with_instances(2)
            .with_output_fields("output", ["key", "weight"]),
    );
    let count = g.add_pe(
        PeSpec::transform("count", "input", "output")
            .stateful()
            .with_instances(COUNT_INSTANCES),
    );
    let tally = g.add_pe(PeSpec::sink("tally", "input").stateful());

    g.connect(gen, "output", enrich, "input", Grouping::Shuffle)
        .expect("ports declared on the PeSpecs above");
    g.connect(enrich, "output", count, "input", Grouping::group_by("key"))
        .expect("ports declared on the PeSpecs above");
    g.connect(count, "output", tally, "input", Grouping::Global)
        .expect("ports declared on the PeSpecs above");

    let results = Arc::new(Mutex::new(Vec::new()));
    let mut exe = Executable::new(g).expect("chaos graph is valid");

    let stream: Arc<Vec<(String, i64)>> = Arc::new(records(cfg));
    let c = cfg.clone();
    exe.register(gen, move || {
        let stream = stream.clone();
        let c = c.clone();
        Box::new(FnSource(move |ctx: &mut dyn Context| {
            let hi = hi.min(stream.len());
            for i in lo..hi {
                let gap = c.arrival_gap(i as u64);
                if gap > Duration::ZERO {
                    // sleep: traffic-shape pacing — the configured
                    // inter-arrival gap before this item, index-derived.
                    std::thread::sleep(gap);
                }
                let (key, val) = &stream[i];
                ctx.emit(
                    "output",
                    Value::map([("key", Value::Str(key.clone())), ("val", Value::Int(*val))]),
                );
            }
        }))
    });
    exe.register(enrich, || {
        Box::new(d4py_core::pe::FnTransform(
            |_port: &str, v: Value, ctx: &mut dyn Context| {
                let key = v
                    .get("key")
                    .and_then(|k| k.as_str())
                    .unwrap_or_default()
                    .to_string();
                let val = v.get("val").and_then(|x| x.as_int()).unwrap_or(0);
                ctx.emit(
                    "output",
                    Value::map([
                        ("key", Value::Str(key)),
                        ("weight", Value::Int(2 * val + 1)),
                    ]),
                );
            },
        ))
    });
    exe.register(count, || {
        Box::new(KeyAggregate {
            counts: BTreeMap::new(),
        })
    });
    let res = results.clone();
    exe.register(tally, move || {
        Box::new(Tally {
            rows: BTreeMap::new(),
            duplicates: 0,
            results: res.clone(),
        })
    });

    (exe.seal().expect("all chaos PEs registered"), results)
}

/// The `count` instance the group-by router assigns `key` to (the same
/// stable hash the engine routes with).
pub fn count_instance_for(key: &str) -> usize {
    let probe = Value::map([("key", Value::Str(key.to_string()))]);
    let fields = ["key".to_string()];
    (probe.group_key(&fields).routing_hash() % COUNT_INSTANCES as u64) as usize
}

/// The `count` instance receiving the most records of `[lo, hi)`, with its
/// record share. Crash cells target this instance: any `after_tasks`
/// below the share is guaranteed to fire, deterministically, under every
/// traffic shape.
pub fn busiest_count_instance(cfg: &WorkloadConfig, lo: usize, hi: usize) -> (usize, u64) {
    let mut share = [0u64; COUNT_INSTANCES];
    let stream = records(cfg);
    let hi = hi.min(stream.len());
    for (key, _) in &stream[lo.min(hi)..hi] {
        share[count_instance_for(key)] += 1;
    }
    let busiest = (0..COUNT_INSTANCES)
        .max_by_key(|&i| share[i])
        .expect("COUNT_INSTANCES is non-zero");
    (busiest, share[busiest])
}

/// Checks tally rows against [`expected_counts`]: returns the number of
/// violated per-key invariants (missing, extra, wrong count/sum, or
/// duplicated state), 0 for a perfect run.
pub fn violations(cfg: &WorkloadConfig, rows: &[Value]) -> u64 {
    let expect = expected_counts(cfg);
    let mut bad = 0u64;
    let mut seen: BTreeMap<String, (i64, i64)> = BTreeMap::new();
    for row in rows {
        let key = row
            .get("key")
            .and_then(|k| k.as_str())
            .unwrap_or_default()
            .to_string();
        let count = row.get("count").and_then(|c| c.as_int()).unwrap_or(-1);
        let sum = row.get("sum").and_then(|s| s.as_int()).unwrap_or(-1);
        bad += row.get("dup").and_then(|d| d.as_int()).unwrap_or(0).max(0) as u64;
        if seen.insert(key, (count, sum)).is_some() {
            bad += 1;
        }
    }
    for (key, (count, sum)) in &expect {
        match seen.get(key) {
            Some(&(c, s)) if c == *count && s == *sum => {}
            _ => bad += 1,
        }
    }
    for key in seen.keys() {
        if !expect.contains_key(key) {
            bad += 1;
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficShape;
    use d4py_core::mapping::Mapping;
    use d4py_core::mappings::{HybridMulti, Simple};
    use d4py_core::options::ExecutionOptions;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig::standard().with_time_scale(0.0)
    }

    #[test]
    fn simple_run_matches_analytic_oracle() {
        let (exe, results) = build(&cfg());
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        let rows = results.lock();
        assert!(!rows.is_empty());
        assert_eq!(violations(&cfg(), &rows), 0);
    }

    #[test]
    fn hybrid_run_matches_analytic_oracle() {
        let (exe, results) = build(&cfg());
        HybridMulti
            .execute(&exe, &ExecutionOptions::new(8))
            .unwrap();
        assert_eq!(violations(&cfg(), &results.lock()), 0);
    }

    #[test]
    fn skewed_shape_concentrates_keys_and_still_balances_counts() {
        let skew = cfg().with_shape(TrafficShape::Skewed { exponent: 3.0 });
        let (exe, results) = build(&skew);
        HybridMulti
            .execute(&exe, &ExecutionOptions::new(8))
            .unwrap();
        let rows = results.lock();
        assert_eq!(violations(&skew, &rows), 0);
        // The skewed stream really is skewed: the hottest key dominates.
        let max = rows
            .iter()
            .map(|r| r.get("count").unwrap().as_int().unwrap())
            .max()
            .unwrap();
        let total: i64 = rows
            .iter()
            .map(|r| r.get("count").unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, (RECORDS_PER_X) as i64);
        assert!(
            max * 8 > total,
            "hottest key {max} of {total} is not heavy-tailed"
        );
    }

    #[test]
    fn split_ranges_cover_the_full_stream() {
        // [0,k) and [k,n) together process every record exactly once: run
        // both against a shared oracle by merging their tallies.
        let c = cfg();
        let n = (RECORDS_PER_X) as usize;
        let k = n / 2;
        let merged = {
            let mut m: BTreeMap<String, (i64, i64)> = BTreeMap::new();
            for (lo, hi) in [(0, k), (k, n)] {
                let (exe, results) = build_range(&c, lo, hi);
                Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
                for row in results.lock().iter() {
                    let key = row.get("key").unwrap().as_str().unwrap().to_string();
                    let e = m.entry(key).or_insert((0, 0));
                    e.0 += row.get("count").unwrap().as_int().unwrap();
                    e.1 += row.get("sum").unwrap().as_int().unwrap();
                }
            }
            m
        };
        assert_eq!(merged, expected_counts(&c));
    }

    #[test]
    fn busiest_instance_has_the_largest_share() {
        let c = cfg();
        let n = RECORDS_PER_X as usize;
        let (busiest, share) = busiest_count_instance(&c, 0, n);
        assert!(busiest < COUNT_INSTANCES);
        assert!(share > 0, "some instance must receive records");
        // Its share really is the maximum over all instances.
        for i in 0..COUNT_INSTANCES {
            let got: u64 = records(&c)[..n]
                .iter()
                .filter(|(k, _)| count_instance_for(k) == i)
                .count() as u64;
            assert!(got <= share);
        }
    }

    #[test]
    fn violations_detects_corruption() {
        let (exe, results) = build(&cfg());
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        let mut rows = results.lock().clone();
        assert_eq!(violations(&cfg(), &rows), 0);
        // Tamper with one count: exactly that key's invariant breaks.
        if let Value::Map(m) = &mut rows[0] {
            m.insert("count".into(), Value::Int(9999));
        }
        assert_eq!(violations(&cfg(), &rows), 1);
        // Drop a key entirely.
        rows.remove(1);
        assert_eq!(violations(&cfg(), &rows), 2);
    }
}
