//! Internal Extinction of Galaxies (§4.1): catalogue, synthetic VO service,
//! extinction physics, and the 4-PE workflow builder.

pub mod catalog;
pub mod extinction;
pub mod votable;
pub mod workflow;

pub use workflow::{build, DOWNLOAD_BASE, GALAXIES_PER_X};
