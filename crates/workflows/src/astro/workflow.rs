//! The Internal Extinction of Galaxies workflow (§4.1, Figure 5).
//!
//! Four stateless PEs: `read RaDec` → `getVO Table` → `filter Columns` →
//! `internal Extinction`. The stream length scales with the workload
//! multiplier (1X = 100 galaxies); the heavy variant adds beta(2, 5) delays
//! inside the two middle PEs, exactly as the paper does.

use crate::config::WorkloadConfig;
use crate::{astro::catalog, astro::extinction, astro::votable};
use d4py_core::executable::Executable;
use d4py_core::pe::{Context, FnSource, ProcessingElement};
use d4py_core::value::Value;
use d4py_core::workload::BetaSampler;
use d4py_graph::{Grouping, PeSpec, WorkflowGraph};
use d4py_sync::rng::StdRng;
use d4py_sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Galaxies per 1X of workload.
pub const GALAXIES_PER_X: u32 = 100;
/// Base service latency of one VOTable download.
pub const DOWNLOAD_BASE: Duration = Duration::from_millis(8);
/// Base compute time of the column filter.
pub const FILTER_COMPUTE: Duration = Duration::from_millis(2);
/// Base compute time of the extinction computation.
pub const EXTINCTION_COMPUTE: Duration = Duration::from_millis(1);

/// Distinguishes RNG streams across PE instances within one process.
static INSTANCE_SALT: AtomicU64 = AtomicU64::new(0);

fn instance_rng(seed: u64) -> StdRng {
    // relaxed: uniqueness-only RNG salt — no other memory depends on its
    // ordering.
    StdRng::seed_from_u64(seed ^ INSTANCE_SALT.fetch_add(0x9E37_79B9, Ordering::Relaxed))
}

/// Heavy-variant delay helper shared by the middle PEs.
struct HeavyDelay {
    sampler: BetaSampler,
    rng: StdRng,
    max: Duration,
    enabled: bool,
}

impl HeavyDelay {
    fn new(cfg: &WorkloadConfig) -> Self {
        Self {
            sampler: BetaSampler::paper(),
            rng: instance_rng(cfg.seed),
            max: cfg.scaled(cfg.heavy_max),
            enabled: cfg.heavy,
        }
    }

    fn apply(&mut self) {
        if self.enabled {
            let d = self.sampler.sample_duration(&mut self.rng, self.max);
            if !d.is_zero() {
                // sleep: simulated heavy-tail straggler delay from the
                // workload model; zero under the test configuration.
                std::thread::sleep(d);
            }
        }
    }
}

/// `getVO Table`: simulated VO-service download (latency-bound).
struct GetVoTable {
    cfg: WorkloadConfig,
    heavy: HeavyDelay,
}

impl ProcessingElement for GetVoTable {
    fn process(&mut self, _port: &str, galaxy: Value, ctx: &mut dyn Context) {
        let ra = galaxy.get("ra").and_then(Value::as_float).unwrap_or(0.0);
        let dec = galaxy.get("dec").and_then(Value::as_float).unwrap_or(0.0);
        // Network download: blocks without occupying a simulated core.
        let latency = votable::service_latency(ra, dec, self.cfg.scaled(DOWNLOAD_BASE));
        if !latency.is_zero() {
            // sleep: simulated VO-service download latency (latency-bound,
            // no simulated core held); zero under the test configuration.
            std::thread::sleep(latency);
        }
        self.heavy.apply();
        let table = votable::query(ra, dec);
        let rows = Value::List(
            table
                .rows
                .iter()
                .map(|r| {
                    Value::map([
                        ("t", Value::Float(r.morph_type)),
                        ("logr25", Value::Float(r.logr25)),
                        ("mag", Value::Float(r.magnitude)),
                        ("vel", Value::Float(r.velocity)),
                    ])
                })
                .collect(),
        );
        ctx.emit(
            "output",
            Value::map([
                ("id", galaxy.get("id").cloned().unwrap_or(Value::Null)),
                ("rows", rows),
            ]),
        );
    }
}

/// `filter Columns`: keeps only the columns extinction needs.
struct FilterColumns {
    cfg: WorkloadConfig,
    heavy: HeavyDelay,
}

impl ProcessingElement for FilterColumns {
    fn process(&mut self, _port: &str, table: Value, ctx: &mut dyn Context) {
        self.cfg.limiter.compute(self.cfg.scaled(FILTER_COMPUTE));
        self.heavy.apply();
        let filtered = Value::List(
            table
                .get("rows")
                .and_then(Value::as_list)
                .unwrap_or(&[])
                .iter()
                .map(|row| {
                    Value::map([
                        ("t", row.get("t").cloned().unwrap_or(Value::Float(0.0))),
                        (
                            "logr25",
                            row.get("logr25").cloned().unwrap_or(Value::Float(0.0)),
                        ),
                    ])
                })
                .collect(),
        );
        ctx.emit(
            "output",
            Value::map([
                ("id", table.get("id").cloned().unwrap_or(Value::Null)),
                ("rows", filtered),
            ]),
        );
    }
}

/// `internal Extinction`: the final computation; results go to the shared
/// collector handle.
struct InternalExtinction {
    cfg: WorkloadConfig,
    results: Arc<Mutex<Vec<Value>>>,
}

impl ProcessingElement for InternalExtinction {
    fn process(&mut self, _port: &str, table: Value, _ctx: &mut dyn Context) {
        self.cfg
            .limiter
            .compute(self.cfg.scaled(EXTINCTION_COMPUTE));
        let rows: Vec<(f64, f64)> = table
            .get("rows")
            .and_then(Value::as_list)
            .unwrap_or(&[])
            .iter()
            .map(|r| {
                (
                    r.get("t").and_then(Value::as_float).unwrap_or(0.0),
                    r.get("logr25").and_then(Value::as_float).unwrap_or(0.0),
                )
            })
            .collect();
        if let Some(mean) = extinction::mean_extinction(&rows) {
            self.results.lock().push(Value::map([
                ("id", table.get("id").cloned().unwrap_or(Value::Null)),
                ("extinction", Value::Float(mean)),
            ]));
        }
    }
}

/// Builds the workflow. Returns the executable and the shared handle the
/// final PE appends `{id, extinction}` results to.
pub fn build(cfg: &WorkloadConfig) -> (Executable, Arc<Mutex<Vec<Value>>>) {
    let mut g = WorkflowGraph::new("internal_extinction_of_galaxies");
    let read = g.add_pe(PeSpec::source("readRaDec", "output"));
    let getvo = g.add_pe(PeSpec::transform("getVOTable", "input", "output"));
    let filter = g.add_pe(PeSpec::transform("filterColumns", "input", "output"));
    let intext = g.add_pe(PeSpec::sink("internalExtinction", "input"));
    g.connect(read, "output", getvo, "input", Grouping::Shuffle)
        .expect("ports declared on the PeSpecs above");
    g.connect(getvo, "output", filter, "input", Grouping::Shuffle)
        .expect("ports declared on the PeSpecs above");
    g.connect(filter, "output", intext, "input", Grouping::Shuffle)
        .expect("ports declared on the PeSpecs above");

    let results = Arc::new(Mutex::new(Vec::new()));
    let mut exe = Executable::new(g).expect("astro graph is valid");

    let n = cfg.scale * GALAXIES_PER_X;
    let seed = cfg.seed;
    let shaped = cfg.clone();
    exe.register(read, move || {
        let shaped = shaped.clone();
        Box::new(FnSource(move |ctx: &mut dyn Context| {
            for (i, gal) in catalog::generate(n, seed).into_iter().enumerate() {
                let gap = shaped.arrival_gap(i as u64);
                if gap > std::time::Duration::ZERO {
                    // sleep: traffic-shape pacing — the configured
                    // inter-arrival gap before this galaxy, index-derived.
                    std::thread::sleep(gap);
                }
                ctx.emit(
                    "output",
                    Value::map([
                        ("id", Value::Int(gal.id as i64)),
                        ("ra", Value::Float(gal.ra)),
                        ("dec", Value::Float(gal.dec)),
                    ]),
                );
            }
        }))
    });
    let cfg_vo = cfg.clone();
    exe.register(getvo, move || {
        Box::new(GetVoTable {
            cfg: cfg_vo.clone(),
            heavy: HeavyDelay::new(&cfg_vo),
        })
    });
    let cfg_f = cfg.clone();
    exe.register(filter, move || {
        Box::new(FilterColumns {
            cfg: cfg_f.clone(),
            heavy: HeavyDelay::new(&cfg_f),
        })
    });
    let cfg_e = cfg.clone();
    let res = results.clone();
    exe.register(intext, move || {
        Box::new(InternalExtinction {
            cfg: cfg_e.clone(),
            results: res.clone(),
        })
    });

    (exe.seal().expect("all astro PEs registered"), results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d4py_core::mapping::Mapping;
    use d4py_core::mappings::{DynMulti, Multi, Simple};
    use d4py_core::options::ExecutionOptions;

    fn fast_cfg() -> WorkloadConfig {
        WorkloadConfig::standard().with_time_scale(0.01)
    }

    #[test]
    fn simple_run_produces_one_result_per_galaxy() {
        let (exe, results) = build(&fast_cfg());
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        assert_eq!(results.lock().len(), 100);
    }

    #[test]
    fn results_identical_across_mappings() {
        let sorted = |results: &Arc<Mutex<Vec<Value>>>| {
            let mut v: Vec<(i64, f64)> = results
                .lock()
                .iter()
                .map(|r| {
                    (
                        r.get("id").unwrap().as_int().unwrap(),
                        r.get("extinction").unwrap().as_float().unwrap(),
                    )
                })
                .collect();
            v.sort_by_key(|a| a.0);
            v
        };
        let (exe, r1) = build(&fast_cfg());
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        let (exe, r2) = build(&fast_cfg());
        DynMulti.execute(&exe, &ExecutionOptions::new(4)).unwrap();
        let (exe, r3) = build(&fast_cfg());
        Multi.execute(&exe, &ExecutionOptions::new(4)).unwrap();
        assert_eq!(sorted(&r1), sorted(&r2));
        assert_eq!(sorted(&r1), sorted(&r3));
    }

    #[test]
    fn scale_multiplies_stream_length() {
        let (exe, results) = build(&fast_cfg().with_scale(3));
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        assert_eq!(results.lock().len(), 300);
    }

    #[test]
    fn extinctions_are_physical() {
        let (exe, results) = build(&fast_cfg());
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        for r in results.lock().iter() {
            let a = r.get("extinction").unwrap().as_float().unwrap();
            assert!((0.0..=1.5).contains(&a), "extinction {a} out of range");
        }
    }

    #[test]
    fn heavy_variant_takes_longer() {
        let base = {
            let (exe, _) = build(&fast_cfg());
            Simple
                .execute(&exe, &ExecutionOptions::new(1))
                .unwrap()
                .runtime
        };
        let heavy = {
            let (exe, _) = build(&fast_cfg().heavy());
            Simple
                .execute(&exe, &ExecutionOptions::new(1))
                .unwrap()
                .runtime
        };
        assert!(
            heavy > base,
            "heavy {heavy:?} must exceed standard {base:?}"
        );
    }
}
