//! Synthetic galaxy catalogue (stands in for the paper's coordinate file).
//!
//! The real workflow reads (RA, Dec) coordinates for N galaxies from an
//! input file. We generate a deterministic catalogue from a seed: uniform
//! right ascension in [0°, 360°), declination with the correct
//! sphere-uniform cos-weighting in [-90°, 90°].

use d4py_sync::rng::Rng;
use d4py_sync::rng::StdRng;

/// One catalogue row.
#[derive(Debug, Clone, PartialEq)]
pub struct Galaxy {
    /// Catalogue index.
    pub id: u32,
    /// Right ascension, degrees in [0, 360).
    pub ra: f64,
    /// Declination, degrees in [-90, 90].
    pub dec: f64,
}

/// Generates `n` galaxies deterministically from `seed`.
pub fn generate(n: u32, seed: u64) -> Vec<Galaxy> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            let ra = rng.gen::<f64>() * 360.0;
            // Uniform on the sphere: dec = asin(2u - 1).
            let dec = (2.0 * rng.gen::<f64>() - 1.0).asin().to_degrees();
            Galaxy { id, ra, dec }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_determinism() {
        let a = generate(100, 7);
        let b = generate(100, 7);
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
        assert_ne!(a, generate(100, 8));
    }

    #[test]
    fn coordinates_in_range() {
        for g in generate(1000, 1) {
            assert!((0.0..360.0).contains(&g.ra), "ra {}", g.ra);
            assert!((-90.0..=90.0).contains(&g.dec), "dec {}", g.dec);
        }
    }

    #[test]
    fn declination_is_sphere_uniform() {
        // Half the sphere's area lies within |dec| < 30°.
        let galaxies = generate(20_000, 3);
        let within = galaxies.iter().filter(|g| g.dec.abs() < 30.0).count();
        let frac = within as f64 / galaxies.len() as f64;
        assert!((frac - 0.5).abs() < 0.03, "fraction within 30°: {frac}");
    }

    #[test]
    fn ids_are_sequential() {
        let galaxies = generate(5, 0);
        let ids: Vec<u32> = galaxies.iter().map(|g| g.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
