//! Synthetic VOTable service (stands in for the VizieR/HyperLEDA download).
//!
//! The real `getVOTable` PE downloads a VOTable for each galaxy from a VO
//! service — an I/O-latency-bound step. The substitute derives a
//! deterministic result table from the coordinates (so reruns and different
//! mappings agree) and models the service latency explicitly.

use d4py_sync::rng::Rng;
use d4py_sync::rng::StdRng;
use std::time::Duration;

/// One row of the (synthetic) HyperLEDA response for a galaxy.
#[derive(Debug, Clone, PartialEq)]
pub struct VoRow {
    /// Morphological type code `t` in [-5, 10] (elliptical → irregular).
    pub morph_type: f64,
    /// log10 of the apparent axis ratio, `logr25` in [0, 1].
    pub logr25: f64,
    /// Apparent magnitude (carried along; filtered out downstream).
    pub magnitude: f64,
    /// Heliocentric radial velocity km/s (carried along; filtered out).
    pub velocity: f64,
}

/// The per-galaxy service response.
#[derive(Debug, Clone, PartialEq)]
pub struct VoTable {
    /// Rows matched near the queried coordinates (1–3 typically).
    pub rows: Vec<VoRow>,
}

/// Deterministic synthetic service: the response depends only on (ra, dec).
pub fn query(ra: f64, dec: f64) -> VoTable {
    // Derive a stable seed from the coordinates.
    let seed = (ra.to_bits() ^ dec.to_bits().rotate_left(21)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 1 + (rng.gen::<f64>() * 2.5) as usize; // 1..=3 rows
    let rows = (0..n)
        .map(|_| VoRow {
            morph_type: rng.gen_range(-5.0..10.0),
            logr25: rng.gen::<f64>(),
            magnitude: rng.gen_range(8.0..18.0),
            velocity: rng.gen_range(-500.0..12_000.0),
        })
        .collect();
    VoTable { rows }
}

/// The modelled service round-trip latency for one query: a base network
/// cost plus a size-dependent component, deterministic per galaxy.
pub fn service_latency(ra: f64, dec: f64, base: Duration) -> Duration {
    let seed = (ra.to_bits().rotate_left(7) ^ dec.to_bits()).wrapping_mul(0xD134_2543_DE82_EF95);
    let mut rng = StdRng::seed_from_u64(seed);
    // 1.0×–2.5× the base cost: service jitter.
    base.mul_f64(1.0 + 1.5 * rng.gen::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_is_deterministic() {
        let a = query(123.4, -45.6);
        let b = query(123.4, -45.6);
        assert_eq!(a, b);
        assert_ne!(a, query(123.5, -45.6));
    }

    #[test]
    fn rows_within_documented_ranges() {
        for i in 0..200 {
            let t = query(i as f64 * 1.7, (i as f64 * 0.3) - 30.0);
            assert!(!t.rows.is_empty() && t.rows.len() <= 3);
            for row in &t.rows {
                assert!((-5.0..10.0).contains(&row.morph_type));
                assert!((0.0..1.0).contains(&row.logr25));
            }
        }
    }

    #[test]
    fn latency_scales_with_base_and_is_bounded() {
        let base = Duration::from_millis(10);
        let lat = service_latency(10.0, 20.0, base);
        assert!(lat >= base && lat <= base.mul_f64(2.5));
        assert_eq!(lat, service_latency(10.0, 20.0, base), "deterministic");
    }
}
