//! The internal-extinction computation (the workflow's final PE).
//!
//! Internal extinction corrects a galaxy's observed luminosity for
//! absorption by its own dust, which depends on the disc's inclination
//! (via the axis ratio `logr25`) and the morphological type `t`. We use the
//! standard HyperLEDA-style form `A_int = γ(t) · logr25`, with the
//! type-dependent coefficient γ peaking for intermediate spirals and
//! vanishing for ellipticals (t ≤ 0), which is the behaviour the real
//! workflow's table encodes.

/// The type-dependent extinction coefficient γ(t).
///
/// Zero for ellipticals/lenticulars (t ≤ 0), rising to ≈1.5 for Sb–Sc
/// spirals (t ≈ 3–5), falling off toward irregulars.
pub fn gamma(morph_type: f64) -> f64 {
    if morph_type <= 0.0 {
        0.0
    } else {
        (1.5 - 0.03 * (morph_type - 5.0).powi(2)).max(0.0)
    }
}

/// Internal extinction in magnitudes for one galaxy row.
pub fn internal_extinction(morph_type: f64, logr25: f64) -> f64 {
    gamma(morph_type) * logr25.max(0.0)
}

/// Mean internal extinction over a table's rows (the per-galaxy result the
/// workflow reports). `None` when the table is empty.
pub fn mean_extinction(rows: &[(f64, f64)]) -> Option<f64> {
    if rows.is_empty() {
        return None;
    }
    let sum: f64 = rows.iter().map(|&(t, lr)| internal_extinction(t, lr)).sum();
    Some(sum / rows.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ellipticals_have_no_internal_extinction() {
        assert_eq!(gamma(-5.0), 0.0);
        assert_eq!(gamma(0.0), 0.0);
        assert_eq!(internal_extinction(-3.0, 0.8), 0.0);
    }

    #[test]
    fn gamma_peaks_at_intermediate_spirals() {
        assert!(gamma(5.0) > gamma(1.0));
        assert!(gamma(5.0) > gamma(9.5));
        assert!((gamma(5.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn extinction_grows_with_inclination() {
        // Larger logr25 (more edge-on) → more dust along the line of sight.
        assert!(internal_extinction(4.0, 0.9) > internal_extinction(4.0, 0.1));
    }

    #[test]
    fn extinction_is_nonnegative() {
        for t in [-5.0, 0.0, 2.5, 5.0, 9.9] {
            for lr in [0.0, 0.3, 1.0] {
                assert!(internal_extinction(t, lr) >= 0.0);
            }
        }
    }

    #[test]
    fn mean_extinction_averages() {
        let rows = vec![(5.0, 1.0), (5.0, 0.0)];
        assert!((mean_extinction(&rows).unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(mean_extinction(&[]), None);
    }

    #[test]
    fn negative_logr25_clamped() {
        assert_eq!(internal_extinction(5.0, -0.2), 0.0);
    }
}
