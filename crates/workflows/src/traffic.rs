//! Traffic shapes for chaos scenarios.
//!
//! Production traffic is not the steady stream the paper's experiments
//! feed each workflow; it is bursty, diurnal, and key-skewed. A
//! [`TrafficShape`] turns a workload's source PE from "emit everything
//! back-to-back" into one of those arrival patterns — fully
//! deterministically: pacing depends only on the item *index* and the
//! configured periods, key skew only on the workload's seeded PCG32, never
//! on wall-clock time.
//!
//! [`TrafficShape::Steady`] is the identity shape (zero inter-arrival gap,
//! uniform keys), so every existing workload build is bit-identical to
//! before this module existed.

use d4py_sync::rng::{Pcg32, Rng};
use std::time::Duration;

/// The arrival pattern a workload source emits under.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum TrafficShape {
    /// Back-to-back emission, uniform keys — the paper's (and the
    /// default) behaviour.
    #[default]
    Steady,
    /// On/off bursts: emit `period` items back-to-back, then pause for
    /// `pause` before the next burst.
    Bursty {
        /// Items per burst.
        period: u64,
        /// Idle gap between bursts.
        pause: Duration,
    },
    /// A slow sinusoidal ramp: the inter-arrival gap swings between 0 and
    /// 2×`base_gap` over `period` items, modelling a diurnal load curve.
    Diurnal {
        /// Items per full sine cycle.
        period: u64,
        /// Mean inter-arrival gap.
        base_gap: Duration,
    },
    /// Heavy-tailed key skew for stateful group-bys: arrival pacing stays
    /// steady but key choice follows a power law, concentrating traffic on
    /// few hot keys. `exponent` > 1 sharpens the skew.
    Skewed {
        /// Power-law exponent (1.0 = uniform; 3.0 = strongly skewed).
        exponent: f64,
    },
}

impl TrafficShape {
    /// Short identifier used in scenario cell ids and tables.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficShape::Steady => "steady",
            TrafficShape::Bursty { .. } => "bursty",
            TrafficShape::Diurnal { .. } => "diurnal",
            TrafficShape::Skewed { .. } => "skew",
        }
    }

    /// The pause a source inserts *before* emitting item `i`.
    ///
    /// Depends only on `i` and the shape parameters — never on wall-clock
    /// time — so a run is reproducible at any machine speed.
    pub fn gap(&self, i: u64) -> Duration {
        match *self {
            TrafficShape::Steady | TrafficShape::Skewed { .. } => Duration::ZERO,
            TrafficShape::Bursty { period, pause } => {
                if i > 0 && period > 0 && i.is_multiple_of(period) {
                    pause
                } else {
                    Duration::ZERO
                }
            }
            TrafficShape::Diurnal { period, base_gap } => {
                if period == 0 {
                    return Duration::ZERO;
                }
                let phase = (i % period) as f64 / period as f64;
                let factor = 1.0 + (2.0 * std::f64::consts::PI * phase).sin();
                base_gap.mul_f64(factor.max(0.0))
            }
        }
    }

    /// Picks a group-by key index in `0..n_keys` from `rng`.
    ///
    /// Uniform for every shape except [`Skewed`](TrafficShape::Skewed),
    /// where `floor(n · u^exponent)` yields a power-law concentration on
    /// low-numbered keys.
    pub fn key_index(&self, rng: &mut Pcg32, n_keys: usize) -> usize {
        if n_keys == 0 {
            return 0;
        }
        match *self {
            TrafficShape::Skewed { exponent } => {
                let u: f64 = rng.gen();
                let idx = (n_keys as f64 * u.powf(exponent.max(0.0))) as usize;
                idx.min(n_keys - 1)
            }
            _ => rng.gen_range(0..n_keys),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_is_the_identity_shape() {
        let s = TrafficShape::Steady;
        for i in 0..100 {
            assert_eq!(s.gap(i), Duration::ZERO);
        }
        assert_eq!(TrafficShape::default(), TrafficShape::Steady);
    }

    #[test]
    fn bursty_pauses_at_period_boundaries() {
        let s = TrafficShape::Bursty {
            period: 10,
            pause: Duration::from_millis(5),
        };
        assert_eq!(s.gap(0), Duration::ZERO);
        assert_eq!(s.gap(9), Duration::ZERO);
        assert_eq!(s.gap(10), Duration::from_millis(5));
        assert_eq!(s.gap(11), Duration::ZERO);
        assert_eq!(s.gap(20), Duration::from_millis(5));
    }

    #[test]
    fn diurnal_swings_between_zero_and_twice_base() {
        let s = TrafficShape::Diurnal {
            period: 100,
            base_gap: Duration::from_micros(100),
        };
        let gaps: Vec<Duration> = (0..100).map(|i| s.gap(i)).collect();
        let max = gaps.iter().max().unwrap();
        let min = gaps.iter().min().unwrap();
        assert!(*max > Duration::from_micros(180), "peak too low: {max:?}");
        assert_eq!(*min, Duration::ZERO);
        // Deterministic: same index, same gap.
        assert_eq!(s.gap(25), s.gap(125));
    }

    #[test]
    fn skew_concentrates_on_hot_keys() {
        let shape = TrafficShape::Skewed { exponent: 3.0 };
        let uniform = TrafficShape::Steady;
        let mut rng = Pcg32::seed_from_u64(7);
        let n = 64usize;
        let mut hot_skew = 0u32;
        for _ in 0..2000 {
            if shape.key_index(&mut rng, n) < n / 8 {
                hot_skew += 1;
            }
        }
        let mut rng = Pcg32::seed_from_u64(7);
        let mut hot_uniform = 0u32;
        for _ in 0..2000 {
            if uniform.key_index(&mut rng, n) < n / 8 {
                hot_uniform += 1;
            }
        }
        // Under exponent 3, P(key < n/8) = (1/8)^(1/3) = 0.5; uniform is 1/8.
        assert!(
            hot_skew > hot_uniform * 2,
            "skew {hot_skew} vs uniform {hot_uniform}"
        );
        // Indices stay in range.
        let mut rng = Pcg32::seed_from_u64(9);
        for _ in 0..500 {
            assert!(shape.key_index(&mut rng, n) < n);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TrafficShape::Steady.label(), "steady");
        assert_eq!(
            TrafficShape::Bursty {
                period: 1,
                pause: Duration::ZERO
            }
            .label(),
            "bursty"
        );
        assert_eq!(
            TrafficShape::Diurnal {
                period: 1,
                base_gap: Duration::ZERO
            }
            .label(),
            "diurnal"
        );
        assert_eq!(TrafficShape::Skewed { exponent: 2.0 }.label(), "skew");
    }
}
