//! The Seismic Cross-Correlation phase-1 workflow (§4.2, Figure 6).
//!
//! Nine interconnected PEs: `readStations` reads (generates) the raw
//! waveforms; seven intermediate PEs transform them in memory — detrend,
//! demean, band-pass, decimate, whiten, RMS-normalise, amplitude spectrum —
//! and the final PE writes results to disk (real file I/O), reproducing the
//! paper's "more imbalanced workloads among PEs" character: the middle PEs
//! are compute-only with heterogeneous costs, the sink is I/O-bound.

use crate::config::WorkloadConfig;
use crate::seismic::dsp;
use crate::seismic::waveform::{self, SAMPLE_RATE};
use d4py_core::executable::Executable;
use d4py_core::pe::{Context, FnSource, ProcessingElement};
use d4py_core::value::Value;
use d4py_graph::{Grouping, PeId, PeSpec, WorkflowGraph};
use d4py_sync::Mutex;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stations per 1X of workload (the paper fixes 50 stations).
pub const STATIONS_PER_X: u32 = 50;

/// Base modelled compute time per PE, index-aligned with the pipeline
/// order below (read has none; write models disk latency instead).
const STAGE_COMPUTE_MS: [u64; 7] = [1, 1, 3, 1, 4, 1, 2];
/// Base disk latency of the write PE.
const WRITE_LATENCY: Duration = Duration::from_millis(6);

fn trace_to_value(station: &str, samples: &[f64]) -> Value {
    Value::map([
        ("station", Value::Str(station.to_string())),
        (
            "samples",
            Value::List(samples.iter().map(|&s| Value::Float(s)).collect()),
        ),
    ])
}

fn value_to_trace(v: &Value) -> (String, Vec<f64>) {
    let station = v
        .get("station")
        .and_then(Value::as_str)
        .unwrap_or("UNKNOWN")
        .to_string();
    let samples = v
        .get("samples")
        .and_then(Value::as_list)
        .unwrap_or(&[])
        .iter()
        .filter_map(Value::as_float)
        .collect();
    (station, samples)
}

/// A generic trace-transform PE: modelled service time + a real DSP kernel.
struct TraceStage {
    cfg: WorkloadConfig,
    compute: Duration,
    kernel: fn(&mut Vec<f64>),
}

impl ProcessingElement for TraceStage {
    fn process(&mut self, _port: &str, v: Value, ctx: &mut dyn Context) {
        let (station, mut samples) = value_to_trace(&v);
        self.cfg.limiter.with_core(|| {
            (self.kernel)(&mut samples);
            // sleep: simulated per-stage compute cost from the paper's
            // workload model; scaled to zero in the fast test config.
            std::thread::sleep(self.cfg.scaled(self.compute));
        });
        ctx.emit("output", trace_to_value(&station, &samples));
    }
}

/// The disk-writing sink: real file I/O plus modelled device latency.
struct WriteOutput {
    cfg: WorkloadConfig,
    path: std::path::PathBuf,
    file: Option<std::fs::File>,
    written: Arc<Mutex<Vec<String>>>,
}

impl ProcessingElement for WriteOutput {
    fn process(&mut self, _port: &str, v: Value, _ctx: &mut dyn Context) {
        let (station, samples) = value_to_trace(&v);
        // sleep: modelled device write latency (no simulated core held);
        // scaled to zero in the fast test configuration.
        std::thread::sleep(self.cfg.scaled(WRITE_LATENCY));
        let file = self.file.get_or_insert_with(|| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
                .expect("open seismic output file")
        });
        let mut line = String::with_capacity(samples.len() * 12 + 16);
        line.push_str(&station);
        for s in &samples {
            line.push(' ');
            line.push_str(&format!("{s:.5}"));
        }
        line.push('\n');
        file.write_all(line.as_bytes())
            .expect("write seismic output");
        self.written.lock().push(station);
    }
}

impl Drop for WriteOutput {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

static FILE_SALT: AtomicU64 = AtomicU64::new(0);

/// Builds the 9-PE workflow. Returns the executable and a handle listing
/// the station codes the sink wrote, in completion order.
pub fn build(cfg: &WorkloadConfig) -> (Executable, Arc<Mutex<Vec<String>>>) {
    let mut g = WorkflowGraph::new("seismic_cross_correlation_phase1");
    let read = g.add_pe(PeSpec::source("readStations", "output"));
    let stages = [
        "detrend",
        "demean",
        "bandpass",
        "decimate",
        "whiten",
        "normalize",
        "spectrum",
    ];
    let mut prev = read;
    let mut stage_ids: Vec<PeId> = Vec::new();
    for name in stages {
        let pe = g.add_pe(PeSpec::transform(name, "input", "output"));
        g.connect(prev, "output", pe, "input", Grouping::Shuffle)
            .expect("ports declared on the PeSpecs above");
        stage_ids.push(pe);
        prev = pe;
    }
    let write = g.add_pe(PeSpec::sink("writeData", "input"));
    g.connect(prev, "output", write, "input", Grouping::Shuffle)
        .expect("ports declared on the PeSpecs above");

    let written = Arc::new(Mutex::new(Vec::new()));
    let mut exe = Executable::new(g).expect("seismic graph is valid");

    let n = cfg.scale * STATIONS_PER_X;
    let seed = cfg.seed;
    let shaped = cfg.clone();
    exe.register(read, move || {
        let shaped = shaped.clone();
        Box::new(FnSource(move |ctx: &mut dyn Context| {
            for (i, trace) in waveform::generate(n, seed).into_iter().enumerate() {
                let gap = shaped.arrival_gap(i as u64);
                if gap > std::time::Duration::ZERO {
                    // sleep: traffic-shape pacing — the configured
                    // inter-arrival gap before this trace, index-derived.
                    std::thread::sleep(gap);
                }
                ctx.emit("output", trace_to_value(&trace.station, &trace.samples));
            }
        }))
    });

    let kernels: [fn(&mut Vec<f64>); 7] = [
        |s| dsp::detrend(s),
        |s| dsp::demean(s),
        |s| dsp::bandpass(s, SAMPLE_RATE, 0.3, 3.0),
        |s| *s = dsp::decimate(s, 2),
        |s| *s = dsp::whiten(s, 1e-6),
        |s| dsp::normalize_rms(s),
        |s| *s = dsp::amplitude_spectrum(s),
    ];
    for ((pe, kernel), ms) in stage_ids.iter().zip(kernels).zip(STAGE_COMPUTE_MS) {
        let cfg = cfg.clone();
        exe.register(*pe, move || {
            Box::new(TraceStage {
                cfg: cfg.clone(),
                compute: Duration::from_millis(ms),
                kernel,
            })
        });
    }

    let cfg_w = cfg.clone();
    let handle = written.clone();
    exe.register(write, move || {
        // relaxed: uniqueness-only filename salt — no other memory depends
        // on its ordering.
        let salt = FILE_SALT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("d4py_seismic_{}_{salt}.txt", std::process::id()));
        Box::new(WriteOutput {
            cfg: cfg_w.clone(),
            path,
            file: None,
            written: handle.clone(),
        })
    });

    (exe.seal().expect("all seismic PEs registered"), written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d4py_core::mapping::Mapping;
    use d4py_core::mappings::{DynMulti, Simple};
    use d4py_core::options::ExecutionOptions;

    fn fast_cfg() -> WorkloadConfig {
        // 1X = 50 stations; shrink service times hard for unit tests.
        WorkloadConfig::standard().with_time_scale(0.01)
    }

    #[test]
    fn nine_pes_as_in_the_paper() {
        let (exe, _) = build(&fast_cfg());
        assert_eq!(exe.graph().pe_count(), 9);
        assert_eq!(d4py_graph::partition::minimum_processes(exe.graph()), 9);
    }

    #[test]
    fn simple_run_writes_every_station() {
        let (exe, written) = build(&fast_cfg());
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        let mut stations = written.lock().clone();
        stations.sort();
        assert_eq!(stations.len(), 50);
        assert_eq!(stations[0], "ST000");
        assert_eq!(stations[49], "ST049");
    }

    #[test]
    fn dynamic_run_matches_simple() {
        let (exe, w1) = build(&fast_cfg());
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        let (exe, w2) = build(&fast_cfg());
        DynMulti.execute(&exe, &ExecutionOptions::new(6)).unwrap();
        let mut a = w1.lock().clone();
        let mut b = w2.lock().clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn pipeline_output_is_a_spectrum() {
        // End to end, one trace: the final samples must be a half-length
        // non-negative spectrum.
        use crate::seismic::waveform::{station_trace, TRACE_LEN};
        let t = station_trace(0, 42);
        let mut s = t.samples.clone();
        dsp::detrend(&mut s);
        dsp::demean(&mut s);
        dsp::bandpass(&mut s, SAMPLE_RATE, 0.3, 3.0);
        let mut s = dsp::decimate(&s, 2);
        s = dsp::whiten(&s, 1e-6);
        dsp::normalize_rms(&mut s);
        let spec = dsp::amplitude_spectrum(&s);
        assert_eq!(spec.len(), TRACE_LEN / 4); // 512 → decimate 2 → 256 → half
        assert!(spec.iter().all(|v| *v >= 0.0));
    }
}
