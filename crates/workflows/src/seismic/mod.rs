//! Seismic Cross-Correlation phase 1 (§4.2): synthetic waveforms, DSP
//! kernels, and the 9-PE workflow builder.

pub mod dsp;
pub mod phase2;
pub mod waveform;
pub mod workflow;

pub use workflow::{build, STATIONS_PER_X};
