//! Synthetic seismic waveforms (stands in for FDSN station data).
//!
//! Each station produces a fixed-length trace: a slow tidal drift (linear
//! trend + DC offset), a couple of sinusoidal microseism bands, white noise,
//! and occasionally an "event" spike train — enough structure that every
//! stage of the phase-1 pipeline (detrend, demean, bandpass, whiten, …)
//! has real work to do and testable effect.

use d4py_sync::rng::Rng;
use d4py_sync::rng::StdRng;

/// Samples per trace (after the paper's pre-decimation stage lengths).
pub const TRACE_LEN: usize = 512;
/// Nominal sampling rate in Hz.
pub const SAMPLE_RATE: f64 = 20.0;

/// One station's raw trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Station code, e.g. "ST017".
    pub station: String,
    /// Raw samples.
    pub samples: Vec<f64>,
}

/// Generates `n` station traces deterministically from `seed`.
pub fn generate(n: u32, seed: u64) -> Vec<Trace> {
    (0..n).map(|i| station_trace(i, seed)).collect()
}

/// One deterministic station trace.
pub fn station_trace(index: u32, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(index as u64 * 0x1234_5678_9ABC));
    let offset = rng.gen_range(-50.0..50.0);
    let drift = rng.gen_range(-0.05..0.05);
    let f1 = rng.gen_range(0.1..0.3); // primary microseism, Hz
    let f2 = rng.gen_range(0.5..1.5); // secondary band
    let a1 = rng.gen_range(1.0..5.0);
    let a2 = rng.gen_range(0.5..2.0);
    let noise = rng.gen_range(0.2..1.0);
    let has_event = rng.gen::<f64>() < 0.3;
    let event_at = rng.gen_range(0..TRACE_LEN);

    let samples = (0..TRACE_LEN)
        .map(|k| {
            let t = k as f64 / SAMPLE_RATE;
            let mut x = offset
                + drift * k as f64
                + a1 * (2.0 * std::f64::consts::PI * f1 * t).sin()
                + a2 * (2.0 * std::f64::consts::PI * f2 * t).sin()
                + noise * (rng.gen::<f64>() * 2.0 - 1.0);
            if has_event && (event_at..event_at + 8).contains(&k) {
                x += 20.0 * (-((k - event_at) as f64) / 3.0).exp();
            }
            x
        })
        .collect();
    Trace {
        station: format!("ST{index:03}"),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_count() {
        let a = generate(10, 5);
        assert_eq!(a.len(), 10);
        assert_eq!(a, generate(10, 5));
        assert_ne!(a, generate(10, 6));
    }

    #[test]
    fn traces_have_expected_length_and_names() {
        let traces = generate(3, 1);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.samples.len(), TRACE_LEN);
            assert_eq!(t.station, format!("ST{i:03}"));
        }
    }

    #[test]
    fn traces_carry_dc_offset_and_structure() {
        // At least some stations must have a non-trivial mean (DC offset) —
        // otherwise demean would be a no-op and the pipeline untestable.
        let traces = generate(20, 2);
        let with_offset = traces
            .iter()
            .filter(|t| {
                let mean: f64 = t.samples.iter().sum::<f64>() / t.samples.len() as f64;
                mean.abs() > 1.0
            })
            .count();
        assert!(with_offset > 10, "only {with_offset}/20 have a DC offset");
    }

    #[test]
    fn different_stations_differ() {
        let a = station_trace(0, 1);
        let b = station_trace(1, 1);
        assert_ne!(a.samples, b.samples);
    }
}
