//! Seismic Cross-Correlation **phase 2**: the stateful correlation stage.
//!
//! The paper's §4.2 describes the full workflow in two phases and evaluates
//! only the stateless phase 1, because "the second phase has a *grouping*
//! mechanism" plain dynamic scheduling cannot run. This module implements
//! that second phase as a stateful workflow — exactly the class of
//! application the hybrid mapping exists for — closing the loop the paper
//! leaves open:
//!
//! ```text
//! readPreprocessed ──▶ pairBuilder (stateful, global) ──▶ xcorr ──▶ topPairs (stateful, global)
//! ```
//!
//! `pairBuilder` keeps every trace seen so far and, on each arrival, emits
//! one pair task per previously seen station (streaming pair generation:
//! n stations → n(n−1)/2 correlations). `xcorr` is stateless and
//! embarrassingly parallel — the hybrid mapping's stateless pool absorbs
//! it. `topPairs` ranks pairs by |r| and reports the strongest couplings.

use crate::config::WorkloadConfig;
use crate::seismic::dsp;
use crate::seismic::waveform::{self, SAMPLE_RATE};
use d4py_core::executable::Executable;
use d4py_core::pe::{Context, FnSource, ProcessingElement};
use d4py_core::value::Value;
use d4py_graph::{Grouping, PeSpec, WorkflowGraph};
use d4py_sync::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Stations per 1X for phase 2 (pairs grow quadratically, so fewer than
/// phase 1's 50).
pub const STATIONS_PER_X: u32 = 16;
/// Correlation search window in samples.
pub const MAX_LAG: usize = 16;
/// Modelled compute time per correlation.
pub const XCORR_COMPUTE: Duration = Duration::from_millis(3);
/// How many top pairs the reducer reports.
pub const TOP_PAIRS: usize = 10;

fn trace_value(station: &str, samples: &[f64]) -> Value {
    Value::map([
        ("station", Value::Str(station.to_string())),
        (
            "samples",
            Value::List(samples.iter().map(|&s| Value::Float(s)).collect()),
        ),
    ])
}

fn samples_of(v: &Value) -> Vec<f64> {
    v.get("samples")
        .and_then(Value::as_list)
        .unwrap_or(&[])
        .iter()
        .filter_map(Value::as_float)
        .collect()
}

/// Runs the phase-1 pipeline on a raw trace (the "read pre-processed data"
/// input of phase 2).
pub fn preprocess(samples: &[f64]) -> Vec<f64> {
    let mut s = samples.to_vec();
    dsp::detrend(&mut s);
    dsp::demean(&mut s);
    dsp::bandpass(&mut s, SAMPLE_RATE, 0.3, 3.0);
    let mut s = dsp::decimate(&s, 4);
    s = dsp::whiten(&s, 1e-6);
    dsp::normalize_rms(&mut s);
    s
}

/// `pairBuilder`: stateful pair generator under global grouping.
struct PairBuilder {
    seen: Vec<(String, Vec<f64>)>,
}

impl ProcessingElement for PairBuilder {
    fn process(&mut self, _port: &str, v: Value, ctx: &mut dyn Context) {
        let station = v
            .get("station")
            .and_then(Value::as_str)
            .unwrap_or("UNKNOWN")
            .to_string();
        let samples = samples_of(&v);
        for (other, other_samples) in &self.seen {
            ctx.emit(
                "output",
                Value::map([
                    ("a", trace_value(other, other_samples)),
                    ("b", trace_value(&station, &samples)),
                ]),
            );
        }
        self.seen.push((station, samples));
    }

    /// Externalizes the seen-trace set so a later session pairs its new
    /// stations against this one's (incremental pair generation).
    fn snapshot(&self) -> Option<Value> {
        Some(Value::List(
            self.seen
                .iter()
                .map(|(station, samples)| trace_value(station, samples))
                .collect(),
        ))
    }

    fn restore(&mut self, state: Value) {
        let Value::List(traces) = state else { return };
        for trace in traces {
            let station = trace
                .get("station")
                .and_then(Value::as_str)
                .unwrap_or("UNKNOWN")
                .to_string();
            self.seen.push((station, samples_of(&trace)));
        }
    }
}

/// `xcorr`: stateless per-pair correlation.
struct XCorr {
    cfg: WorkloadConfig,
}

impl ProcessingElement for XCorr {
    fn process(&mut self, _port: &str, pair: Value, ctx: &mut dyn Context) {
        let a = pair.get("a").cloned().unwrap_or(Value::Null);
        let b = pair.get("b").cloned().unwrap_or(Value::Null);
        let sa = samples_of(&a);
        let sb = samples_of(&b);
        let (lag, r) = self.cfg.limiter.with_core(|| {
            // sleep: simulated xcorr compute cost from the paper's workload
            // model; scaled to zero in the fast test configuration.
            std::thread::sleep(self.cfg.scaled(XCORR_COMPUTE));
            dsp::cross_correlation_max_lag(&sa, &sb, MAX_LAG)
        });
        ctx.emit(
            "output",
            Value::map([
                (
                    "pair",
                    Value::Str(format!(
                        "{}×{}",
                        a.get("station").and_then(Value::as_str).unwrap_or("?"),
                        b.get("station").and_then(Value::as_str).unwrap_or("?"),
                    )),
                ),
                ("lag", Value::Int(lag)),
                ("r", Value::Float(r)),
            ]),
        );
    }
}

/// `topPairs`: stateful reducer — keeps the strongest correlations.
struct TopPairs {
    rows: Vec<(String, i64, f64)>,
    results: Arc<Mutex<Vec<Value>>>,
}

impl ProcessingElement for TopPairs {
    fn process(&mut self, _port: &str, v: Value, _ctx: &mut dyn Context) {
        self.rows.push((
            v.get("pair")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            v.get("lag").and_then(Value::as_int).unwrap_or(0),
            v.get("r").and_then(Value::as_float).unwrap_or(0.0),
        ));
    }

    fn on_done(&mut self, _ctx: &mut dyn Context) {
        self.rows.sort_by(|x, y| {
            y.2.abs()
                .partial_cmp(&x.2.abs())
                .expect("correlation coefficients are finite")
                .then(x.0.cmp(&y.0))
        });
        let mut out = self.results.lock();
        for (pair, lag, r) in self.rows.iter().take(TOP_PAIRS) {
            out.push(Value::map([
                ("pair", Value::Str(pair.clone())),
                ("lag", Value::Int(*lag)),
                ("r", Value::Float(*r)),
            ]));
        }
    }

    /// Externalizes every scored pair so a warm-started session ranks old
    /// and new correlations together.
    fn snapshot(&self) -> Option<Value> {
        Some(Value::List(
            self.rows
                .iter()
                .map(|(pair, lag, r)| {
                    Value::map([
                        ("pair", Value::Str(pair.clone())),
                        ("lag", Value::Int(*lag)),
                        ("r", Value::Float(*r)),
                    ])
                })
                .collect(),
        ))
    }

    fn restore(&mut self, state: Value) {
        let Value::List(rows) = state else { return };
        for row in rows {
            self.rows.push((
                row.get("pair")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                row.get("lag").and_then(Value::as_int).unwrap_or(0),
                row.get("r").and_then(Value::as_float).unwrap_or(0.0),
            ));
        }
    }
}

/// Builds the phase-2 workflow. Returns the executable, the handle the
/// reducer writes the top pairs into, and the number of pairs expected.
pub fn build(cfg: &WorkloadConfig) -> (Executable, Arc<Mutex<Vec<Value>>>, usize) {
    let n = cfg.scale * STATIONS_PER_X;
    let expected_pairs = (n as usize * (n as usize - 1)) / 2;

    let mut g = WorkflowGraph::new("seismic_cross_correlation_phase2");
    let read = g.add_pe(PeSpec::source("readPreprocessed", "output"));
    let pairs = g.add_pe(PeSpec::transform("pairBuilder", "input", "output").stateful());
    let xcorr = g.add_pe(PeSpec::transform("xcorr", "input", "output"));
    let top = g.add_pe(PeSpec::sink("topPairs", "input").stateful());
    g.connect(read, "output", pairs, "input", Grouping::Global)
        .expect("ports declared on the PeSpecs above");
    g.connect(pairs, "output", xcorr, "input", Grouping::Shuffle)
        .expect("ports declared on the PeSpecs above");
    g.connect(xcorr, "output", top, "input", Grouping::Global)
        .expect("ports declared on the PeSpecs above");

    let results = Arc::new(Mutex::new(Vec::new()));
    let mut exe = Executable::new(g).expect("phase2 graph is valid");
    let seed = cfg.seed;
    exe.register(read, move || {
        Box::new(FnSource(move |ctx: &mut dyn Context| {
            for trace in waveform::generate(n, seed) {
                let processed = preprocess(&trace.samples);
                ctx.emit("output", trace_value(&trace.station, &processed));
            }
        }))
    });
    exe.register(pairs, || Box::new(PairBuilder { seen: Vec::new() }));
    let c = cfg.clone();
    exe.register(xcorr, move || Box::new(XCorr { cfg: c.clone() }));
    let res = results.clone();
    exe.register(top, move || {
        Box::new(TopPairs {
            rows: Vec::new(),
            results: res.clone(),
        })
    });

    (
        exe.seal().expect("all phase2 PEs registered"),
        results,
        expected_pairs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use d4py_core::mapping::Mapping;
    use d4py_core::mappings::{HybridMulti, Simple};
    use d4py_core::options::ExecutionOptions;

    fn fast_cfg() -> WorkloadConfig {
        WorkloadConfig::standard().with_time_scale(0.0)
    }

    #[test]
    fn pair_count_is_n_choose_2() {
        let (_, _, expected) = build(&fast_cfg());
        assert_eq!(expected, 16 * 15 / 2);
    }

    #[test]
    fn simple_run_reports_top_pairs() {
        let (exe, results, _) = build(&fast_cfg());
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        let got = results.lock();
        assert_eq!(got.len(), TOP_PAIRS);
        // Sorted by |r| descending.
        let rs: Vec<f64> = got
            .iter()
            .map(|v| v.get("r").unwrap().as_float().unwrap().abs())
            .collect();
        assert!(rs.windows(2).all(|w| w[0] >= w[1]), "{rs:?}");
        // Correlations are valid coefficients.
        assert!(rs.iter().all(|r| (0.0..=1.0 + 1e-9).contains(r)));
    }

    #[test]
    fn hybrid_matches_simple() {
        let (exe, r1, _) = build(&fast_cfg());
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        let (exe, r2, _) = build(&fast_cfg());
        HybridMulti
            .execute(&exe, &ExecutionOptions::new(4))
            .expect("ports declared on the PeSpecs above");
        let pairs = |h: &Arc<Mutex<Vec<Value>>>| {
            h.lock()
                .iter()
                .map(|v| v.get("pair").unwrap().as_str().unwrap().to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(pairs(&r1), pairs(&r2));
    }

    #[test]
    fn dynamic_mapping_rejects_phase2() {
        use d4py_core::mappings::DynMulti;
        let (exe, _, _) = build(&fast_cfg());
        // The paper's point: plain dynamic scheduling cannot run phase 2.
        assert!(DynMulti.execute(&exe, &ExecutionOptions::new(4)).is_err());
    }

    #[test]
    fn warm_start_pairs_new_stations_against_previous_session() {
        use d4py_core::mappings::hybrid::{run_hybrid_with_state, ChannelQueueFactory};
        use d4py_core::state::MemoryStateStore;

        let store = MemoryStateStore::new();
        let opts = ExecutionOptions::new(4);

        // Session 1: 16 stations → C(16,2) pairs, state externalized.
        let (exe, _, pairs1) = build(&fast_cfg());
        let r1 = run_hybrid_with_state(
            &exe,
            &opts,
            &ChannelQueueFactory,
            "hybrid_multi",
            Some(store.clone()),
        )
        .expect("ports declared on the PeSpecs above");
        assert_eq!(r1.tasks_executed, 1 + 16 + 2 * pairs1 as u64);
        assert!(r1.warnings.is_empty(), "{:?}", r1.warnings);

        // Session 2: 16 *different* stations, warm-started. pairBuilder
        // restores the 16 previous traces, so each new station pairs with
        // 16 old + previously-arrived new ones: C(32,2) − C(16,2) fresh
        // pairs this session.
        let (exe, _, _) = build(&fast_cfg().with_seed(99));
        let r2 = run_hybrid_with_state(
            &exe,
            &opts,
            &ChannelQueueFactory,
            "hybrid_multi",
            Some(store),
        )
        .expect("ports declared on the PeSpecs above");
        let fresh_pairs = (32 * 31) / 2 - pairs1 as u64;
        assert_eq!(r2.tasks_executed, 1 + 16 + 2 * fresh_pairs);
    }

    #[test]
    fn hybrid_processes_every_pair() {
        let (exe, _, expected) = build(&fast_cfg());
        let report = HybridMulti
            .execute(&exe, &ExecutionOptions::new(4))
            .expect("ports declared on the PeSpecs above");
        // kickoff + 16 traces into pairBuilder + pairs into xcorr + pairs
        // into topPairs.
        let expected_tasks = 1 + 16 + 2 * expected as u64;
        assert_eq!(report.tasks_executed, expected_tasks);
    }
}
