//! Signal-processing kernels for the seismic phase-1 pipeline.
//!
//! Real implementations (not stubs): least-squares detrend, demean, a
//! single-pole band-pass, decimation with a pre-averaging anti-alias step,
//! naive-DFT spectral whitening, RMS normalisation, and an amplitude
//! spectrum — the per-PE operations of the Seismic Cross-Correlation
//! pre-processing phase.

use std::f64::consts::PI;

/// Removes the least-squares straight line from `x` in place.
pub fn detrend(x: &mut [f64]) {
    let n = x.len();
    if n < 2 {
        return;
    }
    let nf = n as f64;
    let t_mean = (nf - 1.0) / 2.0;
    let x_mean = x.iter().sum::<f64>() / nf;
    let mut num = 0.0;
    let mut den = 0.0;
    for (k, &v) in x.iter().enumerate() {
        let dt = k as f64 - t_mean;
        num += dt * (v - x_mean);
        den += dt * dt;
    }
    let slope = if den == 0.0 { 0.0 } else { num / den };
    let intercept = x_mean - slope * t_mean;
    for (k, v) in x.iter_mut().enumerate() {
        *v -= intercept + slope * k as f64;
    }
}

/// Subtracts the mean in place.
pub fn demean(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

/// Single-pole recursive band-pass: a high-pass at `low_hz` cascaded with a
/// low-pass at `high_hz`. Good enough for the pipeline's "remove drift and
/// high-frequency noise" role, cheap, and fully testable.
pub fn bandpass(x: &mut [f64], sample_rate: f64, low_hz: f64, high_hz: f64) {
    if x.is_empty() {
        return;
    }
    let dt = 1.0 / sample_rate;
    // High-pass.
    let rc_h = 1.0 / (2.0 * PI * low_hz);
    let alpha_h = rc_h / (rc_h + dt);
    let mut prev_in = x[0];
    let mut prev_out = 0.0;
    for v in x.iter_mut() {
        let cur = *v;
        let out = alpha_h * (prev_out + cur - prev_in);
        prev_in = cur;
        prev_out = out;
        *v = out;
    }
    // Low-pass.
    let rc_l = 1.0 / (2.0 * PI * high_hz);
    let alpha_l = dt / (rc_l + dt);
    let mut acc = x[0];
    for v in x.iter_mut() {
        acc += alpha_l * (*v - acc);
        *v = acc;
    }
}

/// Decimates by `factor` with block averaging (anti-alias).
pub fn decimate(x: &[f64], factor: usize) -> Vec<f64> {
    if factor <= 1 {
        return x.to_vec();
    }
    x.chunks(factor)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Naive DFT: returns (re, im) for bins `0..n` of a real signal. O(n²) but
/// our traces are short; it is genuine compute, which is the point.
pub fn dft(x: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = x.len();
    let mut re = vec![0.0; n];
    let mut im = vec![0.0; n];
    for (k, (rk, ik)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
        let w = -2.0 * PI * k as f64 / n as f64;
        for (t, &v) in x.iter().enumerate() {
            let phase = w * t as f64;
            *rk += v * phase.cos();
            *ik += v * phase.sin();
        }
    }
    (re, im)
}

/// Inverse of [`dft`] for real output.
pub fn idft(re: &[f64], im: &[f64]) -> Vec<f64> {
    let n = re.len();
    let mut out = vec![0.0; n];
    for (t, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for k in 0..n {
            let phase = 2.0 * PI * k as f64 * t as f64 / n as f64;
            acc += re[k] * phase.cos() - im[k] * phase.sin();
        }
        *o = acc / n as f64;
    }
    out
}

/// Spectral whitening: flattens the amplitude spectrum to unit magnitude
/// (bins below `floor` are zeroed to avoid noise blow-up), then transforms
/// back. The standard step before ambient-noise cross-correlation.
pub fn whiten(x: &[f64], floor: f64) -> Vec<f64> {
    let (mut re, mut im) = dft(x);
    for (r, i) in re.iter_mut().zip(im.iter_mut()) {
        let mag = (*r * *r + *i * *i).sqrt();
        if mag > floor {
            *r /= mag;
            *i /= mag;
        } else {
            *r = 0.0;
            *i = 0.0;
        }
    }
    idft(&re, &im)
}

/// RMS of a signal.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Normalises to unit RMS in place (no-op on silent traces).
pub fn normalize_rms(x: &mut [f64]) {
    let r = rms(x);
    if r > 0.0 {
        for v in x.iter_mut() {
            *v /= r;
        }
    }
}

/// Amplitude spectrum (first n/2 bins).
pub fn amplitude_spectrum(x: &[f64]) -> Vec<f64> {
    let (re, im) = dft(x);
    re.iter()
        .zip(im.iter())
        .take(x.len() / 2)
        .map(|(r, i)| (r * r + i * i).sqrt())
        .collect()
}

/// Normalised cross-correlation at each lag in `-max_lag..=max_lag`;
/// returns `(best_lag, best_r)` by absolute correlation — the phase-2
/// measurement (inter-station travel-time estimation uses the lag of the
/// correlation peak).
pub fn cross_correlation_max_lag(a: &[f64], b: &[f64], max_lag: usize) -> (i64, f64) {
    assert_eq!(a.len(), b.len(), "traces must be equal length");
    let n = a.len();
    let (ra, rb) = (rms(a), rms(b));
    if ra == 0.0 || rb == 0.0 || n == 0 {
        return (0, 0.0);
    }
    let norm = n as f64 * ra * rb;
    let mut best = (0i64, 0.0f64);
    let max_lag = max_lag.min(n.saturating_sub(1)) as i64;
    for lag in -max_lag..=max_lag {
        let mut dot = 0.0;
        for i in 0..n as i64 {
            let j = i + lag;
            if (0..n as i64).contains(&j) {
                dot += a[i as usize] * b[j as usize];
            }
        }
        let r = dot / norm;
        if r.abs() > best.1.abs() {
            best = (lag, r);
        }
    }
    best
}

/// Normalised cross-correlation of two equal-length signals at zero lag —
/// the phase-2 computation, exposed for the example binaries.
pub fn cross_correlation_zero_lag(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "traces must be equal length");
    let (ra, rb) = (rms(a), rms(b));
    if ra == 0.0 || rb == 0.0 {
        return 0.0;
    }
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    dot / (a.len() as f64 * ra * rb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn detrend_removes_line() {
        let mut x: Vec<f64> = (0..100).map(|k| 3.0 + 0.5 * k as f64).collect();
        detrend(&mut x);
        assert!(x.iter().all(|v| v.abs() < 1e-9), "pure line must vanish");
    }

    #[test]
    fn detrend_preserves_oscillation() {
        let mut x: Vec<f64> = (0..128)
            .map(|k| (k as f64 * 0.3).sin() + 10.0 + 0.2 * k as f64)
            .collect();
        detrend(&mut x);
        assert!(rms(&x) > 0.5, "the sinusoid must survive detrending");
        // And the residual trend is tiny: compare first/last quarters' means.
        let q = x.len() / 4;
        let head: f64 = x[..q].iter().sum::<f64>() / q as f64;
        let tail: f64 = x[x.len() - q..].iter().sum::<f64>() / q as f64;
        assert!(approx(head, tail, 0.5), "head {head} vs tail {tail}");
    }

    #[test]
    fn demean_zeroes_mean() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        demean(&mut x);
        assert!(approx(x.iter().sum::<f64>(), 0.0, 1e-12));
    }

    #[test]
    fn bandpass_kills_dc_and_high_freq() {
        let n = 512;
        let fs = 20.0;
        // DC + in-band 1 Hz + out-of-band 9 Hz.
        let mut x: Vec<f64> = (0..n)
            .map(|k| {
                let t = k as f64 / fs;
                5.0 + (2.0 * PI * 1.0 * t).sin() + (2.0 * PI * 9.0 * t).sin()
            })
            .collect();
        let before_dc = x.iter().sum::<f64>() / n as f64;
        bandpass(&mut x, fs, 0.3, 3.0);
        let after_dc = x[n / 2..].iter().sum::<f64>() / (n / 2) as f64;
        assert!(
            after_dc.abs() < before_dc.abs() / 5.0,
            "DC must be attenuated"
        );
        // In-band energy survives.
        assert!(rms(&x[n / 4..]) > 0.2, "in-band signal must survive");
    }

    #[test]
    fn decimate_shrinks_and_averages() {
        let x = vec![1.0, 3.0, 5.0, 7.0];
        assert_eq!(decimate(&x, 2), vec![2.0, 6.0]);
        assert_eq!(decimate(&x, 1), x);
        assert_eq!(decimate(&x, 3), vec![3.0, 7.0]); // ragged tail averaged
    }

    #[test]
    fn dft_roundtrip() {
        let x: Vec<f64> = (0..64).map(|k| (k as f64 * 0.37).sin() + 0.3).collect();
        let (re, im) = dft(&x);
        let back = idft(&re, &im);
        for (a, b) in x.iter().zip(back.iter()) {
            assert!(approx(*a, *b, 1e-9), "{a} vs {b}");
        }
    }

    #[test]
    fn dft_finds_pure_tone() {
        let n = 64;
        let x: Vec<f64> = (0..n)
            .map(|k| (2.0 * PI * 4.0 * k as f64 / n as f64).sin())
            .collect();
        let spec = amplitude_spectrum(&x);
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 4, "tone at bin 4");
    }

    #[test]
    fn whiten_flattens_spectrum() {
        let n = 64;
        let x: Vec<f64> = (0..n)
            .map(|k| {
                5.0 * (2.0 * PI * 3.0 * k as f64 / n as f64).sin()
                    + 0.5 * (2.0 * PI * 9.0 * k as f64 / n as f64).sin()
            })
            .collect();
        let w = whiten(&x, 1e-6);
        let spec = amplitude_spectrum(&w);
        // The two tones had 10:1 amplitude; after whitening they are ≈1:1.
        let ratio = spec[3] / spec[9];
        assert!((0.5..2.0).contains(&ratio), "whitened ratio {ratio}");
    }

    #[test]
    fn normalize_rms_gives_unit_rms() {
        let mut x: Vec<f64> = (0..100).map(|k| (k as f64 * 0.2).sin() * 7.0).collect();
        normalize_rms(&mut x);
        assert!(approx(rms(&x), 1.0, 1e-9));
        let mut silent = vec![0.0; 8];
        normalize_rms(&mut silent);
        assert_eq!(silent, vec![0.0; 8]);
    }

    #[test]
    fn max_lag_correlation_finds_the_shift() {
        // b is a delayed copy of a: the peak must sit at that lag.
        let n = 128;
        let a: Vec<f64> = (0..n).map(|k| (k as f64 * 0.23).sin()).collect();
        let shift = 5usize;
        let mut b = vec![0.0; n];
        b[..n - shift].copy_from_slice(&a[shift..]);
        let (lag, r) = cross_correlation_max_lag(&b, &a, 10);
        assert_eq!(lag, shift as i64, "peak lag");
        assert!(r > 0.8, "strong correlation at the peak, got {r}");
    }

    #[test]
    fn max_lag_zero_lag_matches_direct_formula() {
        let a: Vec<f64> = (0..64).map(|k| (k as f64 * 0.31).sin()).collect();
        let b: Vec<f64> = (0..64).map(|k| (k as f64 * 0.31 + 0.4).sin()).collect();
        let (_, r_any) = cross_correlation_max_lag(&a, &b, 0);
        let r_zero = cross_correlation_zero_lag(&a, &b);
        assert!(approx(r_any, r_zero, 1e-12));
    }

    #[test]
    fn max_lag_handles_silence() {
        assert_eq!(cross_correlation_max_lag(&[0.0; 8], &[0.0; 8], 3), (0, 0.0));
    }

    #[test]
    fn cross_correlation_of_identical_signals_is_one() {
        let x: Vec<f64> = (0..128).map(|k| (k as f64 * 0.3).sin()).collect();
        assert!(approx(cross_correlation_zero_lag(&x, &x), 1.0, 1e-9));
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!(approx(cross_correlation_zero_lag(&x, &neg), -1.0, 1e-9));
    }

    #[test]
    fn edge_cases_do_not_panic() {
        let mut empty: Vec<f64> = vec![];
        detrend(&mut empty);
        demean(&mut empty);
        bandpass(&mut empty, 20.0, 0.1, 1.0);
        assert_eq!(rms(&empty), 0.0);
        let mut one = vec![5.0];
        detrend(&mut one);
        assert_eq!(one, vec![5.0]);
    }
}
