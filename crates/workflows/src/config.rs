//! Workload configuration shared by the three use-case workflows.

use crate::traffic::TrafficShape;
use d4py_core::platform::CoreLimiter;
use std::sync::Arc;
use std::time::Duration;

/// Parameters controlling a workflow build.
#[derive(Clone)]
pub struct WorkloadConfig {
    /// Stream-length multiplier: the paper's 1X/3X/5X/10X knob
    /// (1X = 100 galaxies for the astro workflow).
    pub scale: u32,
    /// The "heavy" variant: adds beta(2, 5)-distributed delays of up to
    /// [`heavy_max`](Self::heavy_max) inside the middle PEs (§4.1).
    pub heavy: bool,
    /// Upper bound of the heavy delay (the paper uses 1 s).
    pub heavy_max: Duration,
    /// Multiplier applied to *every* service time, so experiments can be
    /// shrunk to bench-friendly durations while preserving all ratios.
    pub time_scale: f64,
    /// PRNG seed for data generation and delay sampling.
    pub seed: u64,
    /// Simulated-core limiter compute-bound work runs under.
    pub limiter: Arc<CoreLimiter>,
    /// Arrival pattern the source emits under (see [`crate::traffic`]).
    /// [`TrafficShape::Steady`] reproduces the paper's back-to-back stream.
    pub shape: TrafficShape,
}

impl WorkloadConfig {
    /// A 1X standard workload with no platform cap.
    pub fn standard() -> Self {
        Self {
            scale: 1,
            heavy: false,
            heavy_max: Duration::from_secs(1),
            time_scale: 1.0,
            seed: 42,
            limiter: CoreLimiter::unlimited(),
            shape: TrafficShape::Steady,
        }
    }

    /// Sets the stream-length multiplier (builder style).
    pub fn with_scale(mut self, scale: u32) -> Self {
        self.scale = scale.max(1);
        self
    }

    /// Switches on the heavy variant (builder style).
    pub fn heavy(mut self) -> Self {
        self.heavy = true;
        self
    }

    /// Shrinks/stretches every service time (builder style).
    pub fn with_time_scale(mut self, ts: f64) -> Self {
        self.time_scale = ts;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Shares a core limiter (builder style).
    pub fn with_limiter(mut self, limiter: Arc<CoreLimiter>) -> Self {
        self.limiter = limiter;
        self
    }

    /// Sets the traffic shape (builder style).
    pub fn with_shape(mut self, shape: TrafficShape) -> Self {
        self.shape = shape;
        self
    }

    /// The inter-arrival pause before source item `i`, shrunk by
    /// [`time_scale`](Self::time_scale) like every other service time.
    pub fn arrival_gap(&self, i: u64) -> Duration {
        self.scaled(self.shape.gap(i))
    }

    /// Scales a base service time by [`time_scale`](Self::time_scale).
    pub fn scaled(&self, base: Duration) -> Duration {
        base.mul_f64(self.time_scale)
    }
}

impl std::fmt::Debug for WorkloadConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadConfig")
            .field("scale", &self.scale)
            .field("heavy", &self.heavy)
            .field("time_scale", &self.time_scale)
            .field("seed", &self.seed)
            .field("cores", &self.limiter.cores())
            .field("shape", &self.shape)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = WorkloadConfig::standard()
            .with_scale(5)
            .heavy()
            .with_time_scale(0.1)
            .with_seed(7);
        assert_eq!(cfg.scale, 5);
        assert!(cfg.heavy);
        assert_eq!(cfg.time_scale, 0.1);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn scale_floor_is_one() {
        assert_eq!(WorkloadConfig::standard().with_scale(0).scale, 1);
    }

    #[test]
    fn scaled_applies_time_scale() {
        let cfg = WorkloadConfig::standard().with_time_scale(0.5);
        assert_eq!(
            cfg.scaled(Duration::from_millis(10)),
            Duration::from_millis(5)
        );
    }

    #[test]
    fn arrival_gap_scales_with_time_scale() {
        let cfg =
            WorkloadConfig::standard()
                .with_time_scale(0.5)
                .with_shape(TrafficShape::Bursty {
                    period: 4,
                    pause: Duration::from_millis(8),
                });
        assert_eq!(cfg.arrival_gap(3), Duration::ZERO);
        assert_eq!(cfg.arrival_gap(4), Duration::from_millis(4));
        // Default shape is steady: no pacing anywhere.
        assert_eq!(WorkloadConfig::standard().arrival_gap(4), Duration::ZERO);
    }
}
