//! The Sentiment Analyses for News Articles workflow (§4.3, Figure 7).
//!
//! Two sentiment pathways — AFINN on the raw text, SWN3 on a tokenized
//! stream — converge into a state extractor, a group-by-`state` stateful
//! aggregator (`happy State`, 4 instances), and a globally-grouped
//! `top 3 happiest` reducer. Stateless instance pinning (2 each for the
//! sentiment PEs) reproduces the paper's constraint that the static `multi`
//! mapping needs at least 14 processes for this workflow.

use crate::config::WorkloadConfig;
use crate::sentiment::corpus;
use crate::sentiment::pes::{
    FindState, HappyState, SentimentAfinn, SentimentSwn3, TokenizeWd, TopThree,
};
use d4py_core::executable::Executable;
use d4py_core::pe::{Context, FnSource};
use d4py_core::value::Value;
use d4py_graph::{Grouping, PeSpec, WorkflowGraph};
use d4py_sync::Mutex;
use std::sync::Arc;

/// Articles per 1X of workload.
pub const ARTICLES_PER_X: u32 = 100;
/// Instances of `happy State` (paper: 4).
pub const HAPPY_STATE_INSTANCES: usize = 4;
/// Instances of `top 3 happiest` (paper: 2; global grouping uses one).
pub const TOP3_INSTANCES: usize = 2;

/// Builds the workflow. Returns the executable and the handle the `top 3
/// happiest` reducer writes `{rank, state, mean, count}` rows into.
pub fn build(cfg: &WorkloadConfig) -> (Executable, Arc<Mutex<Vec<Value>>>) {
    let n = (cfg.scale * ARTICLES_PER_X) as usize;
    build_range(cfg, 0, n)
}

/// [`build`] over articles `[lo, hi)` of the stream — the replay hook for
/// crash-recovery scenarios: a checkpoint run covers `[0, k)`, the
/// recovery run replays `[k, n)` over the warm-started `happyState`
/// snapshots, and the final top-3 must match an uninterrupted run.
pub fn build_range(
    cfg: &WorkloadConfig,
    lo: usize,
    hi: usize,
) -> (Executable, Arc<Mutex<Vec<Value>>>) {
    let mut g = WorkflowGraph::new("sentiment_analysis_news_articles");
    let read = g.add_pe(PeSpec::source("readArticles", "output"));
    let afinn = g.add_pe(PeSpec::transform("sentimentAFINN", "input", "output").with_instances(2));
    let tok = g.add_pe(PeSpec::transform("tokenizeWD", "input", "output").with_instances(2));
    let swn3 = g.add_pe(PeSpec::transform("sentimentSWN3", "input", "output").with_instances(2));
    let find = g.add_pe(
        // Field contract checked by the analyzer's D4PY104 rule: the
        // downstream group-by key must be one of these.
        PeSpec::transform("findState", "input", "output")
            .with_output_fields("output", ["state", "score"]),
    );
    let happy = g.add_pe(
        PeSpec::transform("happyState", "input", "output")
            .stateful()
            .with_instances(HAPPY_STATE_INSTANCES),
    );
    let top3 = g.add_pe(
        PeSpec::sink("top3Happiest", "input")
            .stateful()
            .with_instances(TOP3_INSTANCES),
    );

    g.connect(read, "output", afinn, "input", Grouping::Shuffle)
        .expect("ports declared on the PeSpecs above");
    g.connect(read, "output", tok, "input", Grouping::Shuffle)
        .expect("ports declared on the PeSpecs above");
    g.connect(tok, "output", swn3, "input", Grouping::Shuffle)
        .expect("ports declared on the PeSpecs above");
    g.connect(afinn, "output", find, "input", Grouping::Shuffle)
        .expect("ports declared on the PeSpecs above");
    g.connect(swn3, "output", find, "input", Grouping::Shuffle)
        .expect("ports declared on the PeSpecs above");
    g.connect(find, "output", happy, "input", Grouping::group_by("state"))
        .expect("ports declared on the PeSpecs above");
    g.connect(happy, "output", top3, "input", Grouping::Global)
        .expect("ports declared on the PeSpecs above");

    let results = Arc::new(Mutex::new(Vec::new()));
    let mut exe = Executable::new(g).expect("sentiment graph is valid");

    let n = cfg.scale * ARTICLES_PER_X;
    let seed = cfg.seed;
    let c = cfg.clone();
    exe.register(read, move || {
        let c = c.clone();
        Box::new(FnSource(move |ctx: &mut dyn Context| {
            let hi = hi.min(n as usize);
            for (i, a) in corpus::generate(n, seed)
                .into_iter()
                .enumerate()
                .skip(lo)
                .take(hi.saturating_sub(lo))
            {
                let gap = c.arrival_gap(i as u64);
                if gap > std::time::Duration::ZERO {
                    // sleep: traffic-shape pacing — the configured
                    // inter-arrival gap before this article, index-derived.
                    std::thread::sleep(gap);
                }
                ctx.emit(
                    "output",
                    Value::map([
                        ("id", Value::Int(a.id as i64)),
                        ("state", Value::Str(a.state)),
                        ("text", Value::Str(a.text)),
                    ]),
                );
            }
        }))
    });
    let c = cfg.clone();
    exe.register(afinn, move || Box::new(SentimentAfinn { cfg: c.clone() }));
    let c = cfg.clone();
    exe.register(tok, move || Box::new(TokenizeWd { cfg: c.clone() }));
    let c = cfg.clone();
    exe.register(swn3, move || Box::new(SentimentSwn3 { cfg: c.clone() }));
    let c = cfg.clone();
    exe.register(find, move || Box::new(FindState { cfg: c.clone() }));
    exe.register(happy, || Box::new(HappyState::new()));
    let res = results.clone();
    exe.register(top3, move || Box::new(TopThree::new(res.clone())));

    (exe.seal().expect("all sentiment PEs registered"), results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d4py_core::mapping::Mapping;
    use d4py_core::mappings::{HybridMulti, Multi, Simple};
    use d4py_core::options::ExecutionOptions;
    use d4py_graph::partition::minimum_processes;

    fn fast_cfg() -> WorkloadConfig {
        WorkloadConfig::standard().with_time_scale(0.0)
    }

    #[test]
    fn multi_minimum_is_fourteen_as_in_the_paper() {
        let (exe, _) = build(&fast_cfg());
        assert_eq!(minimum_processes(exe.graph()), 14);
    }

    #[test]
    fn stateful_slots_are_six() {
        let (exe, _) = build(&fast_cfg());
        let g = exe.graph();
        let slots: usize = g
            .stateful_pes()
            .iter()
            .map(|&pe| g.pe(pe).and_then(|s| s.instances).unwrap_or(1))
            .sum();
        assert_eq!(slots, HAPPY_STATE_INSTANCES + TOP3_INSTANCES);
    }

    #[test]
    fn simple_run_emits_top_three() {
        let (exe, results) = build(&fast_cfg());
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        let got = results.lock();
        assert_eq!(got.len(), 3);
        let ranks: Vec<i64> = got
            .iter()
            .map(|v| v.get("rank").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(ranks, vec![1, 2, 3]);
        // Means must be strictly ordered.
        let means: Vec<f64> = got
            .iter()
            .map(|v| v.get("mean").unwrap().as_float().unwrap())
            .collect();
        assert!(means[0] >= means[1] && means[1] >= means[2]);
    }

    #[test]
    fn multi_and_simple_and_hybrid_agree() {
        let run = |mapping: &dyn Mapping, workers: usize| {
            let (exe, results) = build(&fast_cfg().with_scale(2));
            mapping
                .execute(&exe, &ExecutionOptions::new(workers))
                .expect("ports declared on the PeSpecs above");
            let got = results.lock();
            got.iter()
                .map(|v| v.get("state").unwrap().as_str().unwrap().to_string())
                .collect::<Vec<_>>()
        };
        let simple = run(&Simple, 1);
        let multi = run(&Multi, 14);
        let hybrid = run(&HybridMulti, 8);
        assert_eq!(simple, multi, "simple vs multi");
        assert_eq!(simple, hybrid, "simple vs hybrid");
    }

    #[test]
    fn top_states_track_mood_bias_ground_truth() {
        let (exe, results) = build(&fast_cfg().with_scale(10)); // 1000 articles
        Simple.execute(&exe, &ExecutionOptions::new(1)).unwrap();
        let got = results.lock();
        let winner = got[0].get("state").unwrap().as_str().unwrap();
        // The workflow's winner must be among the top 5 by construction bias
        // (sampling noise can shuffle close neighbours, not the extremes).
        let expected = corpus::expected_ranking();
        let pos = expected.iter().position(|s| *s == winner).unwrap();
        assert!(pos < 5, "winner {winner} is rank {pos} by mood bias");
    }
}
