//! Sentiment lexica: an AFINN-111 subset and an SWN3-style lexicon.
//!
//! The real workflow scores articles with the AFINN lexicon (integer
//! valence, −5…+5) on one path and SentiWordNet 3 (positive/negative
//! probabilities per synset) on the other. We embed a representative
//! subset of real AFINN-111 entries and a compatible SWN3-style table
//! derived from them — enough vocabulary for the corpus generator to
//! produce articles whose scores meaningfully rank states.

/// AFINN-111 entries (word, valence in −5…+5). Real words and scores.
pub const AFINN: &[(&str, i32)] = &[
    ("abandon", -2),
    ("abuse", -3),
    ("accident", -2),
    ("achievement", 3),
    ("admire", 3),
    ("adorable", 3),
    ("advantage", 2),
    ("agony", -3),
    ("amazing", 4),
    ("anger", -3),
    ("angry", -3),
    ("anxious", -2),
    ("applause", 2),
    ("appreciate", 2),
    ("award", 3),
    ("awesome", 4),
    ("awful", -3),
    ("bad", -3),
    ("bankrupt", -3),
    ("beautiful", 3),
    ("benefit", 2),
    ("best", 3),
    ("betray", -3),
    ("bless", 2),
    ("bliss", 3),
    ("bomb", -1),
    ("boost", 2),
    ("breathtaking", 5),
    ("bright", 1),
    ("brilliant", 4),
    ("broken", -1),
    ("calm", 2),
    ("catastrophe", -3),
    ("celebrate", 3),
    ("champion", 2),
    ("chaos", -2),
    ("charming", 3),
    ("cheerful", 3),
    ("collapse", -2),
    ("comfort", 2),
    ("confident", 2),
    ("crash", -2),
    ("crime", -3),
    ("crisis", -3),
    ("cruel", -3),
    ("cry", -1),
    ("damage", -3),
    ("danger", -2),
    ("dead", -3),
    ("defeat", -2),
    ("delight", 3),
    ("despair", -3),
    ("destroy", -3),
    ("disaster", -2),
    ("dream", 1),
    ("eager", 2),
    ("ecstatic", 4),
    ("elegant", 2),
    ("enjoy", 2),
    ("excellent", 3),
    ("exciting", 3),
    ("fail", -2),
    ("fantastic", 4),
    ("fear", -2),
    ("festive", 2),
    ("fine", 2),
    ("flawless", 4),
    ("fraud", -4),
    ("free", 1),
    ("fun", 4),
    ("generous", 2),
    ("glad", 3),
    ("gloomy", -2),
    ("glorious", 2),
    ("good", 3),
    ("grateful", 3),
    ("great", 3),
    ("grief", -2),
    ("happy", 3),
    ("hate", -3),
    ("haunt", -1),
    ("heartbreaking", -3),
    ("hero", 2),
    ("hope", 2),
    ("hopeless", -2),
    ("hurt", -2),
    ("improve", 2),
    ("innovative", 2),
    ("inspire", 2),
    ("joy", 3),
    ("kill", -3),
    ("kind", 2),
    ("laugh", 1),
    ("lose", -3),
    ("love", 3),
    ("lucky", 3),
    ("miserable", -3),
    ("miss", -2),
    ("murder", -2),
    ("nice", 3),
    ("outstanding", 5),
    ("pain", -2),
    ("panic", -3),
    ("peace", 2),
    ("perfect", 3),
    ("pleasure", 3),
    ("poverty", -1),
    ("praise", 3),
    ("problem", -2),
    ("prosperity", 3),
    ("proud", 2),
    ("rejoice", 4),
    ("sad", -2),
    ("scandal", -3),
    ("scare", -2),
    ("smile", 2),
    ("sorrow", -2),
    ("splendid", 3),
    ("strong", 2),
    ("success", 2),
    ("superb", 5),
    ("terrible", -3),
    ("thrilled", 5),
    ("tragedy", -2),
    ("triumph", 4),
    ("trouble", -2),
    ("ugly", -3),
    ("victory", 3),
    ("violent", -3),
    ("vision", 1),
    ("war", -2),
    ("warm", 1),
    ("welcome", 2),
    ("win", 4),
    ("wonderful", 4),
    ("worry", -3),
    ("worst", -3),
    ("wow", 4),
];

/// AFINN score of one (already lower-cased) token; 0 when absent.
pub fn afinn_word(token: &str) -> i32 {
    AFINN
        .binary_search_by(|(w, _)| w.cmp(&token))
        .map(|i| AFINN[i].1)
        .unwrap_or(0)
}

/// AFINN score of a token stream: the sum of word valences.
pub fn afinn_score<'a>(tokens: impl IntoIterator<Item = &'a str>) -> i64 {
    tokens.into_iter().map(|t| afinn_word(t) as i64).sum()
}

/// SWN3-style (positivity, negativity) in [0, 1] for a token. Derived from
/// the AFINN valence with the SWN convention that both components are
/// non-negative and bounded by 1.
pub fn swn3_word(token: &str) -> (f64, f64) {
    let v = afinn_word(token);
    if v > 0 {
        ((v as f64 / 5.0).min(1.0), 0.0)
    } else if v < 0 {
        (0.0, (-v as f64 / 5.0).min(1.0))
    } else {
        (0.0, 0.0)
    }
}

/// SWN3 document score: mean (positivity − negativity) over *sentiment*
/// tokens; 0 for documents without any.
pub fn swn3_score<'a>(tokens: impl IntoIterator<Item = &'a str>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for t in tokens {
        let (p, neg) = swn3_word(t);
        if p > 0.0 || neg > 0.0 {
            sum += p - neg;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// All positive AFINN words (corpus generator vocabulary).
pub fn positive_words() -> impl Iterator<Item = &'static str> {
    AFINN.iter().filter(|(_, v)| *v > 0).map(|(w, _)| *w)
}

/// All negative AFINN words (corpus generator vocabulary).
pub fn negative_words() -> impl Iterator<Item = &'static str> {
    AFINN.iter().filter(|(_, v)| *v < 0).map(|(w, _)| *w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_is_sorted_for_binary_search() {
        for pair in AFINN.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{} !< {}", pair[0].0, pair[1].0);
        }
    }

    #[test]
    fn known_words_score() {
        assert_eq!(afinn_word("happy"), 3);
        assert_eq!(afinn_word("bad"), -3);
        assert_eq!(afinn_word("outstanding"), 5);
        assert_eq!(afinn_word("zebra"), 0);
    }

    #[test]
    fn document_scores_sum() {
        assert_eq!(afinn_score(["happy", "zebra", "bad"]), 0);
        assert_eq!(afinn_score(["win", "wonderful"]), 8);
    }

    #[test]
    fn swn3_components_bounded() {
        for (w, _) in AFINN {
            let (p, n) = swn3_word(w);
            assert!((0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&n));
            assert!(p == 0.0 || n == 0.0, "a word is positive xor negative here");
        }
    }

    #[test]
    fn swn3_score_direction_matches_afinn() {
        assert!(swn3_score(["happy", "win"]) > 0.0);
        assert!(swn3_score(["awful", "terrible"]) < 0.0);
        assert_eq!(swn3_score(["zebra", "table"]), 0.0);
    }

    #[test]
    fn vocab_iterators_partition() {
        let pos = positive_words().count();
        let neg = negative_words().count();
        assert_eq!(pos + neg, AFINN.len());
        assert!(pos > 30 && neg > 30);
    }
}
