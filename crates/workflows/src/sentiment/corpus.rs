//! Synthetic news-article corpus (stands in for the Kaggle dataset).
//!
//! Articles carry a publication `state` and body text mixing neutral filler
//! with sentiment words. Each state gets a deterministic *mood bias* — the
//! probability that a sentiment word drawn for an article from that state
//! is positive — so aggregate happiness genuinely differs between states
//! and the workflow's "top 3 happiest" answer is meaningful, stable across
//! seeds of the same value, and checkable in tests.

use crate::sentiment::lexicon;
use d4py_sync::rng::Rng;
use d4py_sync::rng::StdRng;

/// The publication locations used by the generator.
pub const STATES: &[&str] = &[
    "Texas",
    "California",
    "NewYork",
    "Florida",
    "Ohio",
    "Washington",
    "Colorado",
    "Georgia",
    "Michigan",
    "Oregon",
    "Arizona",
    "Illinois",
    "Virginia",
    "Nevada",
    "Utah",
    "Maine",
];

const FILLER: &[&str] = &[
    "the",
    "a",
    "of",
    "and",
    "to",
    "in",
    "report",
    "city",
    "council",
    "local",
    "residents",
    "today",
    "officials",
    "company",
    "announced",
    "measure",
    "plan",
    "project",
    "community",
    "state",
    "during",
    "after",
    "before",
    "year",
    "market",
    "school",
    "team",
    "weather",
];

/// One synthetic article.
#[derive(Debug, Clone, PartialEq)]
pub struct Article {
    /// Corpus index.
    pub id: u32,
    /// Publication state (one of [`STATES`]).
    pub state: String,
    /// Body text.
    pub text: String,
}

/// A state's mood bias in [0.15, 0.85]: P(sentiment word is positive).
/// Deterministic per state name, independent of the corpus seed — the
/// "ground truth" tests rank against.
pub fn mood_bias(state: &str) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in state.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    0.15 + 0.7 * ((h >> 11) as f64 / (1u64 << 53) as f64)
}

/// Generates `n` articles deterministically from `seed`.
pub fn generate(n: u32, seed: u64) -> Vec<Article> {
    let mut rng = StdRng::seed_from_u64(seed);
    let positive: Vec<&str> = lexicon::positive_words().collect();
    let negative: Vec<&str> = lexicon::negative_words().collect();
    (0..n)
        .map(|id| {
            let state = STATES[rng.gen_range(0..STATES.len())];
            let bias = mood_bias(state);
            let words = rng.gen_range(30..80);
            let mut text = String::new();
            for w in 0..words {
                if w > 0 {
                    text.push(' ');
                }
                // Roughly every fourth word carries sentiment.
                if rng.gen::<f64>() < 0.25 {
                    let word = if rng.gen::<f64>() < bias {
                        positive[rng.gen_range(0..positive.len())]
                    } else {
                        negative[rng.gen_range(0..negative.len())]
                    };
                    text.push_str(word);
                } else {
                    text.push_str(FILLER[rng.gen_range(0..FILLER.len())]);
                }
            }
            // Sprinkle punctuation the tokenizer must strip.
            text.push('.');
            Article {
                id,
                state: state.to_string(),
                text,
            }
        })
        .collect()
}

/// The states ranked by descending mood bias — the expected "happiest"
/// ordering a large corpus converges to.
pub fn expected_ranking() -> Vec<&'static str> {
    let mut ranked: Vec<&str> = STATES.to_vec();
    ranked.sort_by(|a, b| {
        mood_bias(b)
            .partial_cmp(&mood_bias(a))
            .expect("mood biases are finite")
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        assert_eq!(generate(50, 9), generate(50, 9));
        assert_ne!(generate(50, 9), generate(50, 10));
    }

    #[test]
    fn articles_have_state_and_text() {
        for a in generate(100, 3) {
            assert!(STATES.contains(&a.state.as_str()));
            assert!(a.text.split_whitespace().count() >= 30);
            assert!(a.text.ends_with('.'));
        }
    }

    #[test]
    fn mood_bias_is_stable_and_spread() {
        for s in STATES {
            let b = mood_bias(s);
            assert!((0.15..=0.85).contains(&b), "{s}: {b}");
            assert_eq!(b, mood_bias(s));
        }
        let biases: Vec<f64> = STATES.iter().map(|s| mood_bias(s)).collect();
        let spread = biases.iter().cloned().fold(f64::MIN, f64::max)
            - biases.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.3, "biases too clustered: {spread}");
    }

    #[test]
    fn corpus_sentiment_tracks_mood_bias() {
        // States in the top quartile of bias should out-score states in the
        // bottom quartile on AFINN aggregate.
        use crate::sentiment::pes::tokenize;
        let articles = generate(2000, 7);
        let ranking = expected_ranking();
        let happiest = ranking[0];
        let saddest = ranking[ranking.len() - 1];
        let mean_score = |state: &str| {
            let scored: Vec<i64> = articles
                .iter()
                .filter(|a| a.state == state)
                .map(|a| {
                    let toks = tokenize(&a.text);
                    lexicon::afinn_score(toks.iter().map(String::as_str))
                })
                .collect();
            scored.iter().sum::<i64>() as f64 / scored.len().max(1) as f64
        };
        assert!(
            mean_score(happiest) > mean_score(saddest),
            "{happiest} should out-score {saddest}"
        );
    }

    #[test]
    fn expected_ranking_is_a_permutation() {
        let r = expected_ranking();
        assert_eq!(r.len(), STATES.len());
        for s in STATES {
            assert!(r.contains(s));
        }
    }
}
