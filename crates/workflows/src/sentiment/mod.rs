//! Sentiment Analyses for News Articles (§4.3): lexica, synthetic corpus,
//! the PEs, and the stateful workflow builder.

pub mod corpus;
pub mod lexicon;
pub mod pes;
pub mod workflow;

pub use workflow::{build, ARTICLES_PER_X, HAPPY_STATE_INSTANCES, TOP3_INSTANCES};
