//! The processing elements of the sentiment workflow.

use crate::config::WorkloadConfig;
use crate::sentiment::lexicon;
use d4py_core::pe::{Context, ProcessingElement};
use d4py_core::value::Value;
use d4py_sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Lower-cases and strips everything but letters, splitting on the rest —
/// the `tokenize WD` behaviour.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_ascii_alphabetic())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// `sentiment AFINN`: scores the raw text with the AFINN lexicon.
pub struct SentimentAfinn {
    /// Shared workload parameters.
    pub cfg: WorkloadConfig,
}

/// Base compute time of the AFINN scorer (a flat dictionary lookup).
pub const AFINN_COMPUTE: Duration = Duration::from_millis(1);
/// Base compute time of the tokenizer.
pub const TOKENIZE_COMPUTE: Duration = Duration::from_micros(500);
/// Base compute time of the SWN3 scorer. Heavily dominant: the real
/// workflow resolves every token against SentiWordNet through NLTK's
/// WordNet interface, which is orders of magnitude slower than the AFINN
/// dictionary — the per-PE imbalance that makes the static `multi`
/// allocation inefficient and lets the hybrid mapping's shared stateless
/// pool win (§5.4).
pub const SWN3_COMPUTE: Duration = Duration::from_millis(20);
/// Base compute time of the state extractor.
pub const FINDSTATE_COMPUTE: Duration = Duration::from_micros(250);

impl ProcessingElement for SentimentAfinn {
    fn process(&mut self, _port: &str, article: Value, ctx: &mut dyn Context) {
        let text = article.get("text").and_then(Value::as_str).unwrap_or("");
        let score = self.cfg.limiter.with_core(|| {
            // sleep: simulated AFINN scoring cost from the paper's workload
            // model; scaled to zero in the fast test configuration.
            std::thread::sleep(self.cfg.scaled(AFINN_COMPUTE));
            let tokens = tokenize(text);
            lexicon::afinn_score(tokens.iter().map(String::as_str))
        });
        ctx.emit(
            "output",
            Value::map([
                ("id", article.get("id").cloned().unwrap_or(Value::Null)),
                (
                    "state",
                    article.get("state").cloned().unwrap_or(Value::Null),
                ),
                ("score", Value::Float(score as f64)),
                ("lexicon", Value::Str("afinn".into())),
            ]),
        );
    }
}

/// `tokenize WD`: tokenizes for the SWN3 path.
pub struct TokenizeWd {
    /// Shared workload parameters.
    pub cfg: WorkloadConfig,
}

impl ProcessingElement for TokenizeWd {
    fn process(&mut self, _port: &str, article: Value, ctx: &mut dyn Context) {
        let text = article.get("text").and_then(Value::as_str).unwrap_or("");
        let tokens = self.cfg.limiter.with_core(|| {
            // sleep: simulated tokenizer compute cost from the paper's
            // workload model; scaled to zero in the fast test config.
            std::thread::sleep(self.cfg.scaled(TOKENIZE_COMPUTE));
            tokenize(text)
        });
        ctx.emit(
            "output",
            Value::map([
                ("id", article.get("id").cloned().unwrap_or(Value::Null)),
                (
                    "state",
                    article.get("state").cloned().unwrap_or(Value::Null),
                ),
                (
                    "tokens",
                    Value::List(tokens.into_iter().map(Value::Str).collect()),
                ),
            ]),
        );
    }
}

/// `sentiment SWN3`: scores the token stream with the SWN3-style lexicon.
pub struct SentimentSwn3 {
    /// Shared workload parameters.
    pub cfg: WorkloadConfig,
}

impl ProcessingElement for SentimentSwn3 {
    fn process(&mut self, _port: &str, doc: Value, ctx: &mut dyn Context) {
        let tokens: Vec<&str> = doc
            .get("tokens")
            .and_then(Value::as_list)
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::as_str)
            .collect();
        let score = self.cfg.limiter.with_core(|| {
            // sleep: simulated SentiWordNet scoring cost from the paper's
            // workload model; scaled to zero in the fast test config.
            std::thread::sleep(self.cfg.scaled(SWN3_COMPUTE));
            lexicon::swn3_score(tokens.iter().copied())
        });
        ctx.emit(
            "output",
            Value::map([
                ("id", doc.get("id").cloned().unwrap_or(Value::Null)),
                ("state", doc.get("state").cloned().unwrap_or(Value::Null)),
                // SWN3 scores are per-token means in [-1, 1]; scale them to
                // AFINN-comparable magnitude so the aggregation is fair.
                ("score", Value::Float(score * 10.0)),
                ("lexicon", Value::Str("swn3".into())),
            ]),
        );
    }
}

/// `find State`: normalises the state field (the group-by key).
pub struct FindState {
    /// Shared workload parameters.
    pub cfg: WorkloadConfig,
}

impl ProcessingElement for FindState {
    fn process(&mut self, _port: &str, scored: Value, ctx: &mut dyn Context) {
        self.cfg.limiter.compute(self.cfg.scaled(FINDSTATE_COMPUTE));
        let state = scored
            .get("state")
            .and_then(Value::as_str)
            .unwrap_or("Unknown")
            .trim()
            .to_string();
        ctx.emit(
            "output",
            Value::map([
                ("state", Value::Str(state)),
                (
                    "score",
                    scored.get("score").cloned().unwrap_or(Value::Float(0.0)),
                ),
            ]),
        );
    }
}

/// `happy State` (stateful, group-by `state`, 4 instances): accumulates the
/// total sentiment per state and emits per-state aggregates on completion.
#[derive(Default)]
pub struct HappyState {
    totals: HashMap<String, (f64, u64)>,
}

impl HappyState {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ProcessingElement for HappyState {
    fn process(&mut self, _port: &str, v: Value, _ctx: &mut dyn Context) {
        let state = v
            .get("state")
            .and_then(Value::as_str)
            .unwrap_or("Unknown")
            .to_string();
        let score = v.get("score").and_then(Value::as_float).unwrap_or(0.0);
        let slot = self.totals.entry(state).or_insert((0.0, 0));
        slot.0 += score;
        slot.1 += 1;
    }

    fn on_done(&mut self, ctx: &mut dyn Context) {
        for (state, (total, count)) in &self.totals {
            ctx.emit(
                "output",
                Value::map([
                    ("state", Value::Str(state.clone())),
                    ("total", Value::Float(*total)),
                    ("count", Value::Int(*count as i64)),
                    ("mean", Value::Float(total / (*count as f64).max(1.0))),
                ]),
            );
        }
    }

    fn snapshot(&self) -> Option<Value> {
        Some(Value::Map(
            self.totals
                .iter()
                .map(|(state, (total, count))| {
                    (
                        state.clone(),
                        Value::list([Value::Float(*total), Value::Int(*count as i64)]),
                    )
                })
                .collect(),
        ))
    }

    fn restore(&mut self, state: Value) {
        let Value::Map(m) = state else { return };
        for (key, entry) in m {
            let total = entry.at(0).and_then(Value::as_float).unwrap_or(0.0);
            let count = entry.at(1).and_then(Value::as_int).unwrap_or(0) as u64;
            self.totals.insert(key, (total, count));
        }
    }
}

/// `top 3 happiest` (stateful, global grouping): ranks the per-state
/// aggregates and appends the top three to the shared results handle.
pub struct TopThree {
    aggregates: HashMap<String, (f64, u64)>,
    results: Arc<Mutex<Vec<Value>>>,
}

impl TopThree {
    /// Writes the final ranking into `results`.
    pub fn new(results: Arc<Mutex<Vec<Value>>>) -> Self {
        Self {
            aggregates: HashMap::new(),
            results,
        }
    }
}

impl ProcessingElement for TopThree {
    fn process(&mut self, _port: &str, v: Value, _ctx: &mut dyn Context) {
        let state = v
            .get("state")
            .and_then(Value::as_str)
            .unwrap_or("Unknown")
            .to_string();
        let total = v.get("total").and_then(Value::as_float).unwrap_or(0.0);
        let count = v.get("count").and_then(Value::as_int).unwrap_or(0) as u64;
        // The same state may arrive from several happy-State instances
        // (one per lexicon path routing); merge.
        let slot = self.aggregates.entry(state).or_insert((0.0, 0));
        slot.0 += total;
        slot.1 += count;
    }

    fn on_done(&mut self, _ctx: &mut dyn Context) {
        let mut ranked: Vec<(&String, f64, u64)> = self
            .aggregates
            .iter()
            .map(|(s, (t, c))| (s, t / (*c as f64).max(1.0), *c))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("mean scores are finite")
                .then(a.0.cmp(b.0))
        });
        let mut out = self.results.lock();
        for (rank, (state, mean, count)) in ranked.into_iter().take(3).enumerate() {
            out.push(Value::map([
                ("rank", Value::Int(rank as i64 + 1)),
                ("state", Value::Str(state.clone())),
                ("mean", Value::Float(mean)),
                ("count", Value::Int(count as i64)),
            ]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d4py_core::pe::EmitBuffer;

    #[test]
    fn tokenize_strips_punctuation_and_case() {
        assert_eq!(
            tokenize("Happy, HAPPY day! 42 times."),
            vec!["happy", "happy", "day", "times"]
        );
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn afinn_pe_scores_article() {
        let cfg = WorkloadConfig::standard().with_time_scale(0.0);
        let mut pe = SentimentAfinn { cfg };
        let mut buf = EmitBuffer::new(0, 1);
        pe.process(
            "input",
            Value::map([
                ("id", Value::Int(1)),
                ("state", Value::Str("Texas".into())),
                ("text", Value::Str("a happy win".into())),
            ]),
            &mut buf,
        );
        let out = &buf.drain()[0].1;
        assert_eq!(out.get("score").unwrap().as_float(), Some(7.0)); // 3 + 4
        assert_eq!(out.get("lexicon").unwrap().as_str(), Some("afinn"));
    }

    #[test]
    fn tokenizer_and_swn3_chain() {
        let cfg = WorkloadConfig::standard().with_time_scale(0.0);
        let mut tok = TokenizeWd { cfg: cfg.clone() };
        let mut buf = EmitBuffer::new(0, 1);
        tok.process(
            "input",
            Value::map([
                ("id", Value::Int(1)),
                ("state", Value::Str("Ohio".into())),
                ("text", Value::Str("Terrible, awful day".into())),
            ]),
            &mut buf,
        );
        let tokens_doc = buf.drain().remove(0).1;
        let mut swn = SentimentSwn3 { cfg };
        let mut buf2 = EmitBuffer::new(0, 1);
        swn.process("input", tokens_doc, &mut buf2);
        let out = &buf2.drain()[0].1;
        assert!(out.get("score").unwrap().as_float().unwrap() < 0.0);
    }

    #[test]
    fn happy_state_aggregates_and_flushes() {
        let mut pe = HappyState::new();
        let mut buf = EmitBuffer::new(0, 1);
        for (s, score) in [("Texas", 4.0), ("Texas", 2.0), ("Ohio", -1.0)] {
            pe.process(
                "input",
                Value::map([
                    ("state", Value::Str(s.into())),
                    ("score", Value::Float(score)),
                ]),
                &mut buf,
            );
        }
        assert!(buf.is_empty(), "nothing emitted before completion");
        pe.on_done(&mut buf);
        let emitted = buf.drain();
        assert_eq!(emitted.len(), 2);
        let texas = emitted
            .iter()
            .map(|(_, v)| v)
            .find(|v| v.get("state").unwrap().as_str() == Some("Texas"))
            .unwrap();
        assert_eq!(texas.get("total").unwrap().as_float(), Some(6.0));
        assert_eq!(texas.get("count").unwrap().as_int(), Some(2));
        assert_eq!(texas.get("mean").unwrap().as_float(), Some(3.0));
    }

    #[test]
    fn top_three_ranks_and_truncates() {
        let (results, handle) = {
            let h = Arc::new(Mutex::new(Vec::new()));
            (TopThree::new(h.clone()), h)
        };
        let mut pe = results;
        let mut buf = EmitBuffer::new(0, 1);
        for (s, total, count) in [
            ("A", 10.0, 2i64),
            ("B", 30.0, 2),
            ("C", 2.0, 2),
            ("D", 20.0, 2),
        ] {
            pe.process(
                "input",
                Value::map([
                    ("state", Value::Str(s.into())),
                    ("total", Value::Float(total)),
                    ("count", Value::Int(count)),
                ]),
                &mut buf,
            );
        }
        pe.on_done(&mut buf);
        let out = handle.lock();
        assert_eq!(out.len(), 3);
        let states: Vec<&str> = out
            .iter()
            .map(|v| v.get("state").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(states, vec!["B", "D", "A"]);
        assert_eq!(out[0].get("rank").unwrap().as_int(), Some(1));
    }

    #[test]
    fn top_three_merges_partial_aggregates() {
        let h = Arc::new(Mutex::new(Vec::new()));
        let mut pe = TopThree::new(h.clone());
        let mut buf = EmitBuffer::new(0, 1);
        // The same state from two happy-State partial flushes.
        for _ in 0..2 {
            pe.process(
                "input",
                Value::map([
                    ("state", Value::Str("Texas".into())),
                    ("total", Value::Float(5.0)),
                    ("count", Value::Int(1)),
                ]),
                &mut buf,
            );
        }
        pe.on_done(&mut buf);
        let out = h.lock();
        assert_eq!(out[0].get("count").unwrap().as_int(), Some(2));
        assert_eq!(out[0].get("mean").unwrap().as_float(), Some(5.0));
    }
}
