//! # d4py-workflows — the paper's three evaluation workflows
//!
//! Faithful reconstructions of the §4 use cases, each with synthetic data
//! substitutes documented in DESIGN.md:
//!
//! * [`astro`] — Internal Extinction of Galaxies: 4 stateless PEs, a
//!   latency-bound VO "download", scalable 1X–10X with a heavy (beta-delay)
//!   variant;
//! * [`seismic`] — Seismic Cross-Correlation phase 1: 9 PEs with
//!   heterogeneous per-PE cost and a disk-writing sink;
//! * [`sentiment`] — Sentiment Analyses for News Articles: dual sentiment
//!   pathways feeding a group-by-state stateful aggregation and a global
//!   top-3 reducer.
//!
//! Beyond the paper, [`chaos`] adds a synthetic stateful group-by with an
//! analytic ground truth for fault-injection scenarios, and [`traffic`]
//! shapes every workload's arrival pattern (bursty, diurnal, key-skewed).
//!
//! Each `build` returns an [`Executable`](d4py_core::executable::Executable)
//! plus a shared results handle, so every mapping can be validated against
//! the same ground truth.

#![warn(missing_docs)]

pub mod astro;
pub mod chaos;
pub mod config;
pub mod seismic;
pub mod sentiment;
pub mod traffic;

pub use config::WorkloadConfig;
pub use traffic::TrafficShape;
